//! Runtime/semantic errors of the network model.

use std::fmt;

/// An error raised while executing network semantics. These indicate a
/// malformed model or program (the static checks catch most, but data- and
/// schedule-dependent cases remain), never a probabilistic outcome:
/// probabilistic failures are modelled by `assert`/`observe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticsError {
    /// Division by zero at runtime.
    DivisionByZero,
    /// A product or quotient of two symbolic values (the grammar restricts
    /// symbolic arithmetic to linear forms).
    NonlinearArithmetic,
    /// A statement that needs the head packet ran with an empty input queue.
    EmptyQueue {
        /// Node whose handler got stuck.
        node: usize,
    },
    /// `flip(p)` with `p` outside `[0, 1]`.
    FlipProbabilityOutOfRange(String),
    /// `flip(p)` or `uniformInt` with a symbolic (unbound-parameter) argument.
    RandomnessNeedsConcreteArgs,
    /// `uniformInt(lo, hi)` with non-integer or reversed bounds.
    UniformBoundsInvalid(String),
    /// A packet was forwarded to a port with no link.
    NoLinkOnPort {
        /// Forwarding node.
        node: usize,
        /// The portless port.
        port: u32,
    },
    /// `fwd(e)` where `e` is not a positive machine-size integer.
    PortNotInteger(String),
    /// A handler exceeded the local step limit (likely a diverging `while`).
    LoopLimitExceeded {
        /// Node whose handler diverged.
        node: usize,
        /// The limit that was hit.
        limit: u64,
    },
    /// A symbolic sign decision was requested by an engine that cannot
    /// split on parameters (e.g. the sampling engine with unbound
    /// parameters).
    SymbolicValueInConcreteContext(String),
    /// An explicit trap (used by generated code for unreachable states,
    /// e.g. the PSI backend's `assert(terminated())` and no-link checks).
    Trap(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::DivisionByZero => f.write_str("division by zero"),
            SemanticsError::NonlinearArithmetic => {
                f.write_str("nonlinear arithmetic on symbolic values (only v*e is allowed)")
            }
            SemanticsError::EmptyQueue { node } => {
                write!(
                    f,
                    "node {node}: statement requires a packet but the input queue is empty"
                )
            }
            SemanticsError::FlipProbabilityOutOfRange(p) => {
                write!(f, "flip probability {p} is outside [0, 1]")
            }
            SemanticsError::RandomnessNeedsConcreteArgs => {
                f.write_str("flip/uniformInt arguments must be concrete (bind the parameter)")
            }
            SemanticsError::UniformBoundsInvalid(msg) => {
                write!(f, "invalid uniformInt bounds: {msg}")
            }
            SemanticsError::NoLinkOnPort { node, port } => {
                write!(
                    f,
                    "node {node} forwarded a packet to port {port}, which has no link"
                )
            }
            SemanticsError::PortNotInteger(v) => {
                write!(f, "fwd target {v} is not a valid port number")
            }
            SemanticsError::LoopLimitExceeded { node, limit } => {
                write!(
                    f,
                    "node {node}: handler exceeded {limit} local steps (diverging loop?)"
                )
            }
            SemanticsError::SymbolicValueInConcreteContext(what) => {
                write!(f, "symbolic value reached a concrete-only context: {what}")
            }
            SemanticsError::Trap(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SemanticsError {}
