//! Tokens and source positions for the Bayonet language.

use std::fmt;

/// A half-open byte range in the source, with 1-based line/column of its
/// start for diagnostics.
///
/// Spans are *diagnostic metadata*: two spans always compare equal, so that
/// AST equality (used pervasively for round-trip testing) ignores source
/// positions.
#[derive(Clone, Copy, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl PartialEq for Span {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords of the Bayonet language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // spellings are given by `as_str`
pub enum Keyword {
    Topology,
    Nodes,
    Links,
    PacketFields,
    Parameters,
    Programs,
    QueueCapacity,
    NumSteps,
    Scheduler,
    Init,
    Packet,
    Query,
    Probability,
    Expectation,
    Def,
    State,
    If,
    Else,
    While,
    New,
    Drop,
    Dup,
    Fwd,
    Assert,
    Observe,
    Skip,
    Flip,
    UniformInt,
    And,
    Or,
    Not,
    Pkt,
    Pt,
    Uniform,
    RoundRobin,
    Rotor,
    Weighted,
}

impl Keyword {
    /// Looks up a keyword by its source spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "topology" => Topology,
            "nodes" => Nodes,
            "links" => Links,
            "packet_fields" => PacketFields,
            "parameters" => Parameters,
            "programs" => Programs,
            "queue_capacity" => QueueCapacity,
            "num_steps" => NumSteps,
            "scheduler" => Scheduler,
            "init" => Init,
            "packet" => Packet,
            "query" => Query,
            "probability" => Probability,
            "expectation" => Expectation,
            "def" => Def,
            "state" => State,
            "if" => If,
            "else" => Else,
            "while" => While,
            "new" => New,
            "drop" => Drop,
            "dup" => Dup,
            "fwd" => Fwd,
            "assert" => Assert,
            "observe" => Observe,
            "skip" => Skip,
            "flip" => Flip,
            "uniformInt" => UniformInt,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "pkt" => Pkt,
            "pt" => Pt,
            "uniform" => Uniform,
            "roundrobin" => RoundRobin,
            "rotor" => Rotor,
            "weighted" => Weighted,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Topology => "topology",
            Nodes => "nodes",
            Links => "links",
            PacketFields => "packet_fields",
            Parameters => "parameters",
            Programs => "programs",
            QueueCapacity => "queue_capacity",
            NumSteps => "num_steps",
            Scheduler => "scheduler",
            Init => "init",
            Packet => "packet",
            Query => "query",
            Probability => "probability",
            Expectation => "expectation",
            Def => "def",
            State => "state",
            If => "if",
            Else => "else",
            While => "while",
            New => "new",
            Drop => "drop",
            Dup => "dup",
            Fwd => "fwd",
            Assert => "assert",
            Observe => "observe",
            Skip => "skip",
            Flip => "flip",
            UniformInt => "uniformInt",
            And => "and",
            Or => "or",
            Not => "not",
            Pkt => "pkt",
            Pt => "pt",
            Uniform => "uniform",
            RoundRobin => "roundrobin",
            Rotor => "rotor",
            Weighted => "weighted",
        }
    }
}

/// Lexical tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // punctuation variants are self-describing; see Display
pub enum Tok {
    /// An identifier that is not a keyword.
    Ident(String),
    /// A nonnegative integer literal (arbitrary precision, kept as text).
    Int(String),
    /// A keyword.
    Kw(Keyword),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    At,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    /// `->`
    Arrow,
    /// `<->`
    BiArrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(s) => write!(f, "integer `{s}`"),
            Tok::Kw(k) => write!(f, "`{}`", k.as_str()),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::At => f.write_str("`@`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::BiArrow => f.write_str("`<->`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token together with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where in the source it came from.
    pub span: Span,
}
