//! Property tests for the language front-end: random ASTs survive a
//! pretty-print → re-parse round trip, and random token soup never panics
//! the parser.

use bayonet_lang::ast::*;
use bayonet_lang::{parse, parse_expr, pretty_expr, pretty_program};
use bayonet_num::Rat;
use proptest::prelude::*;

fn ident(name: &str) -> Ident {
    Ident::synthetic(name)
}

/// Strategy for random expressions (handler context).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..20).prop_map(|v| Expr::Num(Rat::int(v), Default::default())),
        Just(Expr::Name(ident("x"))),
        Just(Expr::Name(ident("cnt"))),
        Just(Expr::Field(ident("tag"))),
        Just(Expr::Port(Default::default())),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| { Expr::Binary(op, Box::new(a), Box::new(b)) }),
            inner
                .clone()
                .prop_map(|e| Expr::Not(Box::new(e), Default::default())),
            inner
                .clone()
                .prop_map(|e| Expr::Neg(Box::new(e), Default::default())),
            inner
                .clone()
                .prop_map(|e| Expr::Flip(Box::new(e), Default::default())),
            (inner.clone(), inner).prop_map(|(a, b)| {
                Expr::UniformInt(Box::new(a), Box::new(b), Default::default())
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

/// Strategy for random statement bodies.
fn arb_stmts() -> impl Strategy<Value = Vec<Stmt>> {
    let stmt = arb_expr().prop_flat_map(|e| {
        prop_oneof![
            Just(Stmt::New(Default::default())),
            Just(Stmt::Drop(Default::default())),
            Just(Stmt::Dup(Default::default())),
            Just(Stmt::Skip(Default::default())),
            Just(Stmt::Fwd(e.clone(), Default::default())),
            Just(Stmt::Assign(ident("x"), e.clone())),
            Just(Stmt::FieldAssign(ident("tag"), e.clone())),
            Just(Stmt::Assert(e.clone(), Default::default())),
            Just(Stmt::Observe(e, Default::default())),
        ]
    });
    let stmts = proptest::collection::vec(stmt, 0..4);
    (stmts, arb_expr()).prop_flat_map(|(base, cond)| {
        // Wrap some bodies in if/while for nesting coverage.
        prop_oneof![
            Just(base.clone()),
            Just(vec![Stmt::If(cond.clone(), base.clone(), vec![])]),
            Just(vec![Stmt::If(
                cond.clone(),
                base.clone(),
                vec![Stmt::Skip(Default::default())]
            )]),
            Just(vec![Stmt::While(cond, base)]),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (arb_stmts(), arb_stmts(), proptest::bool::ANY, 0u64..5).prop_map(
        |(body_a, body_b, uniform, cap)| Program {
            packet_fields: vec![ident("tag")],
            parameters: vec![ident("P")],
            topology: Topology {
                nodes: vec![ident("A"), ident("B")],
                links: vec![Link {
                    a: Endpoint {
                        node: ident("A"),
                        port: 1,
                    },
                    b: Endpoint {
                        node: ident("B"),
                        port: 1,
                    },
                }],
            },
            programs: vec![(ident("A"), ident("pa")), (ident("B"), ident("pb"))],
            queue_capacity: Some(cap),
            num_steps: None,
            scheduler: if uniform {
                SchedulerSpec::Uniform
            } else {
                SchedulerSpec::Rotor
            },
            init: vec![InitPacket {
                node: ident("A"),
                port: 1,
                fields: vec![(ident("tag"), Expr::Num(Rat::int(2), Default::default()))],
            }],
            queries: vec![Query::Probability(Expr::Binary(
                BinOp::Lt,
                Box::new(Expr::At(ident("cnt"), ident("B"))),
                Box::new(Expr::Num(Rat::int(3), Default::default())),
            ))],
            defs: vec![
                NodeDef {
                    name: ident("pa"),
                    has_params: true,
                    state: vec![(ident("cnt"), Expr::Num(Rat::zero(), Default::default()))],
                    body: body_a,
                },
                NodeDef {
                    name: ident("pb"),
                    has_params: true,
                    state: vec![(ident("cnt"), Expr::Num(Rat::zero(), Default::default()))],
                    body: body_b,
                },
            ],
        },
    )
}

proptest! {
    /// pretty_expr then parse_expr is the identity on ASTs.
    #[test]
    fn expr_roundtrip(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("un-reparseable: {printed}\n{err}"));
        prop_assert_eq!(e, reparsed, "printed: {}", printed);
    }

    /// pretty_program then parse is the identity on ASTs.
    #[test]
    fn program_roundtrip(p in arb_program()) {
        let printed = pretty_program(&p);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("un-reparseable:\n{printed}\n{err}"));
        prop_assert_eq!(p, reparsed, "printed:\n{}", printed);
    }

    /// The parser never panics on arbitrary input (it errors gracefully).
    #[test]
    fn parser_never_panics(src in "[a-z0-9{}()<>=;,.@+*/ -]{0,200}") {
        let _ = parse(&src);
    }

    /// The lexer never panics on fully arbitrary input.
    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = bayonet_lang::lex(&src);
    }
}
