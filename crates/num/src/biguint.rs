//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] is a tagged small/big representation: values below 2^64 are
//! stored inline as a single machine word ([`Repr::Small`]) and never touch
//! the heap; larger magnitudes fall back to little-endian `u64` limbs
//! ([`Repr::Big`], always at least two limbs with a nonzero top limb). The
//! representation is canonical — a value fits in one limb if and only if it
//! is stored as `Small` — so the derived `Eq`/`Hash` and the hand-written
//! `Ord` agree across representations by construction.
//!
//! All arithmetic is exact; overflow cannot occur. Single-word operands take
//! branch-predictable `u64`/`u128` fast paths; multi-limb operands use
//! schoolbook multiplication and Knuth Algorithm D division, which are more
//! than fast enough for the operand sizes that exact network inference
//! produces (hundreds to a few thousand bits).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// The tagged magnitude.
///
/// Invariant: `Big` holds at least two little-endian limbs and its most
/// significant limb is nonzero. Every value below 2^64 is `Small`, so equal
/// values always share a representation and the derived `Eq`/`Hash` are
/// value-correct.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// An inline single-word value (including zero).
    Small(u64),
    /// Little-endian limbs; `len >= 2`, top limb nonzero.
    Big(Vec<u64>),
}

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use bayonet_num::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    repr: Repr,
}

impl Default for BigUint {
    fn default() -> Self {
        BigUint::zero()
    }
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint {
            repr: Repr::Small(0),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint {
            repr: Repr::Small(1),
        }
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` if `self` is one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Constructs a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => BigUint::zero(),
            1 => BigUint {
                repr: Repr::Small(limbs[0]),
            },
            _ => BigUint {
                repr: Repr::Big(limbs),
            },
        }
    }

    /// A read-only view of the little-endian limbs (empty for zero).
    pub fn limbs(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(0) => &[],
            Repr::Small(v) => std::slice::from_ref(v),
            Repr::Big(limbs) => limbs,
        }
    }

    /// The limb vector, surrendering the small-value optimization.
    fn into_limbs(self) -> Vec<u64> {
        match self.repr {
            Repr::Small(0) => Vec::new(),
            Repr::Small(v) => vec![v],
            Repr::Big(limbs) => limbs,
        }
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bits(&self) -> u64 {
        match &self.repr {
            Repr::Small(v) => 64 - v.leading_zeros() as u64,
            Repr::Big(limbs) => {
                let top = *limbs.last().expect("Big is nonempty");
                (limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64)
            }
        }
    }

    /// Returns bit `i` (little-endian position) of the value.
    pub fn bit(&self, i: u64) -> bool {
        let limbs = self.limbs();
        let limb = (i / 64) as usize;
        if limb >= limbs.len() {
            return false;
        }
        (limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns `true` if the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => v & 1 == 0,
            Repr::Big(limbs) => limbs[0] & 1 == 0,
        }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Big(_) => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as u128),
            Repr::Big(limbs) if limbs.len() == 2 => {
                Some(limbs[0] as u128 | (limbs[1] as u128) << 64)
            }
            Repr::Big(_) => None,
        }
    }

    /// Lossy conversion to `f64` (correct to within rounding of the top
    /// 64 significant bits; returns `f64::INFINITY` when out of range).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits <= 64 {
            return self.to_u64().unwrap_or(0) as f64;
        }
        // Take the top 64 bits and scale by the discarded exponent.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().expect("top 64 bits fit");
        let x = top as f64;
        let exp = shift as i32;
        if exp > f64::MAX_EXP {
            f64::INFINITY
        } else {
            x * 2f64.powi(exp)
        }
    }

    /// `self + other`, in place.
    fn add_assign_ref(&mut self, other: &BigUint) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            let (sum, carry) = a.overflowing_add(*b);
            self.repr = if carry {
                Repr::Big(vec![sum, 1])
            } else {
                Repr::Small(sum)
            };
            return;
        }
        let mut limbs = std::mem::take(self).into_limbs();
        let rhs = other.limbs();
        let mut carry = 0u64;
        for i in 0..rhs.len().max(limbs.len()) {
            if i >= limbs.len() {
                limbs.push(0);
            }
            let b = rhs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        *self = BigUint::from_limbs(limbs);
    }

    /// `self - other`, in place.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: {self} - {other}"
        );
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            self.repr = Repr::Small(a - b);
            return;
        }
        let mut limbs = std::mem::take(self).into_limbs();
        let rhs = other.limbs();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let b = rhs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        *self = BigUint::from_limbs(limbs);
    }

    /// `self - other` if `other <= self`, otherwise `None`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if *self < *other {
            None
        } else {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            Some(out)
        }
    }

    /// Multiplication: an inline `u128` product for single-word operands,
    /// schoolbook for everything else.
    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return BigUint::from(*a as u128 * *b as u128);
        }
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let lhs = self.limbs();
        let rhs = other.limbs();
        let mut out = vec![0u64; lhs.len() + rhs.len()];
        for (i, &a) in lhs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &divisor.repr) {
            return (BigUint::from(a / b), BigUint::from(a % b));
        }
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if let Repr::Small(d) = divisor.repr {
            let (q, r) = self.div_rem_limb(d);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Fast path: divide by a single limb.
    fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        debug_assert!(d != 0);
        if let Repr::Small(v) = self.repr {
            return (BigUint::from(v / d), v % d);
        }
        let limbs = self.limbs();
        let mut q = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Knuth TAOCP Vol. 2 Algorithm D (multi-limb division). The divisor
    /// has at least two limbs here.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs().last().unwrap().leading_zeros();
        let v = divisor << (shift as u64);
        let vl = v.limbs();
        let mut u = (self << (shift as u64)).into_limbs();
        u.push(0); // extra headroom limb
        let n = vl.len();
        let m = u.len() - n - 1;
        let vn1 = vl[n - 1];
        let vn2 = vl[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two limbs of the current remainder.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / vn1 as u128;
            let mut rhat = numer % vn1 as u128;
            while qhat >> 64 != 0 || qhat * vn2 as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract q̂ * v from u[j .. j+n].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vl[i] as u128 + carry;
                carry = p >> 64;
                let t = u[i + j] as i128 - (p as u64) as i128 + borrow;
                u[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            // D5/D6: if we subtracted too much, add back one v.
            if t < 0 {
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = u[i + j] as u128 + vl[i] as u128 + c;
                    u[i + j] = s as u64;
                    c = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(c) as u64;
            }
            q[j] = qhat as u64;
        }

        u.truncate(n);
        let rem = BigUint::from_limbs(u) >> (shift as u64);
        (BigUint::from_limbs(q), rem)
    }

    /// Binary GCD over single words; used whenever both operands have
    /// shrunk (or started) below 2^64, and by the [`crate::Rat`] fast paths.
    pub(crate) fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
        if a == 0 {
            return b;
        }
        if b == 0 {
            return a;
        }
        let common = (a | b).trailing_zeros();
        a >>= a.trailing_zeros();
        loop {
            b >>= b.trailing_zeros();
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b -= a;
            if b == 0 {
                return a << common;
            }
        }
    }

    /// Greatest common divisor (binary GCD; `gcd(0, x) = x`).
    ///
    /// Word-sized operands run an inline `u64` binary GCD; multi-limb
    /// operands use the limb algorithm until the subtract-and-shift loop
    /// brings both sides under 2^64, then finish in words.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &other.repr) {
            return BigUint::from(Self::gcd_u64(*a, *b));
        }
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        while a != b {
            if let (Some(a64), Some(b64)) = (a.to_u64(), b.to_u64()) {
                return BigUint::from(Self::gcd_u64(a64, b64)) << common;
            }
            if a < b {
                std::mem::swap(&mut a, &mut b);
            }
            a.sub_assign_ref(&b);
            if a.is_zero() {
                break;
            }
            let z = a.trailing_zeros();
            a = &a >> z;
        }
        if a.is_zero() {
            &b << common
        } else {
            &a << common
        }
    }

    /// Least common multiple (`lcm(0, x) = 0`).
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.div_rem(&g);
        q.mul_ref(other)
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero");
        let mut count = 0u64;
        for &l in self.limbs() {
            if l == 0 {
                count += 64;
            } else {
                return count + l.trailing_zeros() as u64;
            }
        }
        unreachable!("normalized nonzero BigUint has a nonzero limb")
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut result = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul_ref(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul_ref(&base);
            }
        }
        result
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint {
            repr: Repr::Small(v),
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        if v <= u64::MAX as u128 {
            BigUint::from(v as u64)
        } else {
            BigUint {
                repr: Repr::Big(vec![v as u64, (v >> 64) as u64]),
            }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => match a.len().cmp(&b.len()) {
                Ordering::Equal => {
                    for i in (0..a.len()).rev() {
                        match a[i].cmp(&b[i]) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                }
                ord => ord,
            },
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                let f: fn(&BigUint, &BigUint) -> BigUint = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, |a, b| {
    let mut out = a.clone();
    out.add_assign_ref(b);
    out
});
forward_binop!(Sub, sub, |a, b| {
    let mut out = a.clone();
    out.sub_assign_ref(b);
    out
});
forward_binop!(Mul, mul, |a, b| a.mul_ref(b));

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            *self = BigUint::from(*a as u128 * *b as u128);
        } else {
            *self = self.mul_ref(rhs);
        }
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        if let Repr::Small(v) = self.repr {
            if bits < 64 && v.leading_zeros() as u64 >= bits {
                return BigUint::from(v << bits);
            }
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(self.limbs());
        } else {
            let mut carry = 0u64;
            for &l in self.limbs() {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        &self << bits
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        if let Repr::Small(v) = self.repr {
            return BigUint::from(if bits >= 64 { 0 } else { v >> bits });
        }
        let src_all = self.limbs();
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= src_all.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &src_all[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        &self >> bits
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Repr::Small(v) = self.repr {
            return fmt::Display::fmt(&v, f);
        }
        // Peel off 19 decimal digits at a time (10^19 fits in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let limbs = self.limbs();
        write!(f, "{:x}", limbs.last().unwrap())?;
        for l in limbs.iter().rev().skip(1) {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BigUint`] (or [`BigInt`](crate::BigInt),
/// or [`Rat`](crate::Rat)) from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    msg: String,
}

impl ParseNumError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseNumError { msg: msg.into() }
    }
}

impl fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid number syntax: {}", self.msg)
    }
}

impl std::error::Error for ParseNumError {}

impl FromStr for BigUint {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumError::new("empty string"));
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseNumError::new(format!("unexpected character {c:?}")))?;
            out = out.mul_ref(&ten);
            out.add_assign_ref(&BigUint::from(d as u64));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(&z + &o, o);
        assert_eq!(&o * &z, z);
        assert_eq!(z.bits(), 0);
        assert_eq!(o.bits(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one() - BigUint::from(2u64);
    }

    #[test]
    fn checked_sub_returns_none_on_underflow() {
        assert_eq!(BigUint::one().checked_sub(&BigUint::from(2u64)), None);
        assert_eq!(
            BigUint::from(5u64).checked_sub(&BigUint::from(2u64)),
            Some(BigUint::from(3u64))
        );
    }

    #[test]
    fn small_values_stay_inline() {
        // The canonical-representation invariant: anything below 2^64 is
        // `Small`, and arithmetic that shrinks a `Big` renormalizes.
        let max = BigUint::from(u64::MAX);
        assert_eq!(max.limbs().len(), 1);
        let wrapped = &max + &BigUint::one();
        assert_eq!(wrapped.limbs().len(), 2);
        let back = &wrapped - &BigUint::one();
        assert_eq!(back.limbs().len(), 1);
        assert_eq!(back, max);
    }

    #[test]
    fn from_limbs_normalizes_to_small() {
        let a = BigUint::from_limbs(vec![7, 0, 0]);
        assert_eq!(a, BigUint::from(7u64));
        assert_eq!(a.limbs(), &[7]);
        assert_eq!(BigUint::from_limbs(vec![0, 0]), BigUint::zero());
        assert!(BigUint::from_limbs(Vec::new()).is_zero());
    }

    #[test]
    fn mul_large() {
        let a = big("340282366920938463463374607431768211455"); // 2^128 - 1
        let sq = &a * &a;
        assert_eq!(
            sq.to_string(),
            "115792089237316195423570985008687907852589419931798687112530834793049593217025"
        );
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem(&BigUint::from(97u64));
        assert_eq!((&q * &BigUint::from(97u64)) + &r, a);
        assert!(r < BigUint::from(97u64));
    }

    #[test]
    fn div_rem_multi_limb_divisor() {
        let a = big("123456789012345678901234567890123456789012345678901234567890");
        let b = big("9876543210987654321098765432109876543");
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_knuth_addback_case() {
        // Crafted operands that force the rare D6 "add back" correction.
        let u = BigUint::from_limbs(vec![0, 0, 1 << 63]);
        let v = BigUint::from_limbs(vec![1, 1 << 63]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("987654321987654321987654321");
        for bits in [0u64, 1, 7, 63, 64, 65, 130] {
            assert_eq!(&(&a << bits) >> bits, a);
        }
        let s = BigUint::from(5u64);
        for bits in [0u64, 1, 7, 61, 64, 130] {
            assert_eq!(&(&s << bits) >> bits, s);
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(7u64)),
            BigUint::from(7u64)
        );
        assert_eq!(
            BigUint::from(7u64).gcd(&BigUint::zero()),
            BigUint::from(7u64)
        );
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn gcd_mixed_sizes() {
        // A multi-limb operand whose gcd with a word-sized operand must
        // funnel through the mid-loop u64 fast path.
        let a = BigUint::from(10u64).pow(30);
        let b = BigUint::from(1u64 << 20);
        assert_eq!(a.gcd(&b), BigUint::from(1u64 << 20));
        let p = big("18446744073709551629"); // prime just above 2^64
        assert_eq!(p.gcd(&BigUint::from(97u64)), BigUint::one());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            BigUint::from(4u64).lcm(&BigUint::from(6u64)),
            BigUint::from(12u64)
        );
        assert_eq!(BigUint::zero().lcm(&BigUint::from(5u64)), BigUint::zero());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let three = BigUint::from(3u64);
        assert_eq!(three.pow(0), BigUint::one());
        assert_eq!(three.pow(5), BigUint::from(243u64));
        assert_eq!(
            BigUint::from(10u64).pow(40).to_string(),
            format!("1{}", "0".repeat(40))
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "123456789012345678901234567890123",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
    }

    #[test]
    fn ordering() {
        assert!(big("100") < big("101"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::from(12345u64).to_f64(), 12345.0);
        let a = BigUint::from(10u64).pow(30);
        let rel = (a.to_f64() - 1e30).abs() / 1e30;
        assert!(rel < 1e-12, "relative error {rel}");
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::from(8u64).trailing_zeros(), 3);
        assert_eq!((BigUint::one() << 130u64).trailing_zeros(), 130);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", big("255")), "ff");
        assert_eq!(
            format!("{:x}", BigUint::one() << 64u64),
            "10000000000000000"
        );
    }
}
