//! The TCP server: an event-loop IO core over a fixed worker pool.
//!
//! All socket IO — accept, request parsing, response writing, chunked
//! batch streaming — happens on one nonblocking event-loop thread (see
//! the [`crate::evloop`] module docs); parsed requests are pushed onto a
//! bounded job queue consumed by `threads` workers running the shared
//! [`Service`]. When the queue is full the loop answers `503 Service
//! Unavailable` with a `Retry-After` header itself, so overload sheds
//! load in microseconds instead of stacking latency. Per-connection read
//! and write deadlines bound hostile or broken clients without a thread
//! held hostage per connection.
//!
//! With [`ServerConfig::replicas`] > 1 the process becomes a shard
//! router instead: it forks that many single-replica child servers and
//! proxies requests to them by a consistent hash of the canonical
//! program (see the [`crate::router`] module docs).

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bayonet_exact::ComputePool;
use crossbeam::channel;

use crate::evloop::{loop_shared, EventLoop, Job, LoopConfig, LoopShared};
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, DEFAULT_CACHE_MAX_BYTES};
use crate::router::{spawn_replicas, Replica, RouterCore};
use crate::service::{Service, ServiceOptions, DEFAULT_CACHE_ENTRIES};

/// Default cap on concurrently open client connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 16 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8645`. Port 0 picks an ephemeral port
    /// (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing inference jobs.
    pub threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Bounded queue capacity; requests beyond this get `503`.
    pub queue_capacity: usize,
    /// Per-connection IO deadline: a request must fully arrive within this
    /// long of accept, and a pending response must keep making progress at
    /// this granularity. Not an inference timeout — that is the
    /// per-request `timeout_ms`.
    pub io_timeout: Duration,
    /// Directory for the persistent result cache; `None` (the default)
    /// keeps the cache memory-only. With `replicas > 1` each replica uses
    /// the `shard-<i>` subdirectory.
    pub cache_dir: Option<PathBuf>,
    /// Segment-file size that triggers compaction when persistence is
    /// enabled.
    pub cache_max_bytes: u64,
    /// Number of replica processes. `1` (the default) serves in-process;
    /// more turns this process into a consistent-hash shard router in
    /// front of that many forked single-replica servers.
    pub replicas: usize,
    /// Cap on concurrently open client connections; connections beyond it
    /// are answered `503` immediately.
    pub max_connections: usize,
    /// Binary to execute for replica processes. `None` re-executes the
    /// current binary, which must call [`crate::replica_entry`] first
    /// thing in `main`. Tests point this at a dedicated server binary
    /// because their own `main` belongs to the test harness.
    pub replica_exe: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8645".to_string(),
            threads: 4,
            cache_entries: DEFAULT_CACHE_ENTRIES,
            queue_capacity: 64,
            io_timeout: Duration::from_secs(30),
            cache_dir: None,
            cache_max_bytes: DEFAULT_CACHE_MAX_BYTES,
            replicas: 1,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            replica_exe: None,
        }
    }
}

/// A handle to a running server (or shard router).
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<LoopShared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    replicas: Vec<Replica>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry. For a router this is the router's
    /// own registry (routing counters, connection gauges); each replica
    /// exports its own via its `/metrics`.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Signals shutdown and joins all threads. In-flight requests get a
    /// grace period to finish; idle connections are dropped. A router
    /// also stops its replica fleet.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for replica in self.replicas.drain(..) {
            replica.stop();
        }
    }

    /// Blocks until the event loop exits (i.e. forever, absent
    /// [`ServerHandle::shutdown`] from another thread). Replica processes
    /// outlive the call but not the router process: their stdin watchdogs
    /// fire when it exits.
    pub fn join(mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Starts the server: binds, spawns the worker pool (or replica fleet)
/// and the event loop.
///
/// # Errors
///
/// Fails if the address cannot be bound, a replica fails to start, or if
/// `cache_dir` is set and the persistent cache segment cannot be created
/// or opened (corrupt segment *contents* are skipped and counted, never
/// fatal).
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    // Best effort: a 10k-connection server wants headroom over the
    // default soft fd limit. Failure is fine — the connection cap sheds.
    let _ = bayonet_net::raise_nofile_limit();
    if config.replicas > 1 {
        start_router(config)
    } else {
        start_serve(config)
    }
}

/// Single-replica mode: event loop + worker pool + [`Service`].
fn start_serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // One shared compute pool, sized to the worker count: a large request
    // can borrow threads that would otherwise sit idle in the HTTP pool,
    // and under full load everyone degrades to single-threaded.
    let threads = config.threads.max(1);
    let service = Arc::new(Service::with_options(ServiceOptions {
        cache_entries: config.cache_entries,
        pool: Some(ComputePool::new(threads)),
        persist: config.cache_dir.as_ref().map(|dir| PersistConfig {
            dir: dir.clone(),
            max_bytes: config.cache_max_bytes,
        }),
    })?);
    let metrics = service.metrics();
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::bounded::<Job>(config.queue_capacity);

    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = rx.clone();
        let service = Arc::clone(&service);
        workers.push(std::thread::spawn(move || {
            while let Ok(mut job) = rx.recv() {
                service.metrics().queue_depth_add(-1);
                if job.request.method == "POST" && job.request.path == "/v1/batch" {
                    // Batch results stream back through the loop as chunked
                    // NDJSON; a closed connection fails the writes, which
                    // is what cancels the remaining items.
                    let _ = service.handle_batch(&job.request, &mut job.out);
                } else if job.request.method == "POST" && job.request.path == "/v1/sweep" {
                    // Sweep grid points stream back the same way.
                    let _ = service.handle_sweep(&job.request, &mut job.out);
                } else {
                    let response = service.handle(&job.request);
                    let _ = response.write_to(&mut job.out);
                }
                job.out.finish();
            }
        }));
    }

    let (shared, waker_rx) = loop_shared()?;
    let event_loop = EventLoop::new(
        LoopConfig {
            listener,
            metrics: Arc::clone(&metrics),
            io_timeout: config.io_timeout,
            max_connections: config.max_connections,
            jobs: Some(tx),
            router: None,
            shutdown: Arc::clone(&shutdown),
        },
        Arc::clone(&shared),
        waker_rx,
    )?;
    let loop_thread = std::thread::spawn(move || event_loop.run());
    // The loop owns the job sender; when it exits the channel disconnects
    // and the workers drain out.

    Ok(ServerHandle {
        addr,
        metrics,
        shutdown,
        shared,
        event_loop: Some(loop_thread),
        workers,
        replicas: Vec::new(),
    })
}

/// Router mode: replica fleet + proxying event loop, no local inference.
fn start_router(config: ServerConfig) -> io::Result<ServerHandle> {
    let replicas = spawn_replicas(&config)?;
    let listener = match TcpListener::bind(&config.addr) {
        Ok(listener) => listener,
        Err(e) => {
            for replica in replicas {
                replica.stop();
            }
            return Err(e);
        }
    };
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let router = RouterCore::new(replicas.iter().map(|r| r.addr).collect());

    let (shared, waker_rx) = loop_shared()?;
    let event_loop = EventLoop::new(
        LoopConfig {
            listener,
            metrics: Arc::clone(&metrics),
            io_timeout: config.io_timeout,
            max_connections: config.max_connections,
            jobs: None,
            router: Some(router),
            shutdown: Arc::clone(&shutdown),
        },
        Arc::clone(&shared),
        waker_rx,
    )?;
    let loop_thread = std::thread::spawn(move || event_loop.run());

    Ok(ServerHandle {
        addr,
        metrics,
        shutdown,
        shared,
        event_loop: Some(loop_thread),
        workers: Vec::new(),
        replicas,
    })
}
