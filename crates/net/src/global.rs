//! Global network semantics (paper Figure 7): packet delivery and initial
//! configuration construction. The `(Run, i)` action is executed by the
//! engines through [`run_handler`](crate::handler::run_handler), since it
//! needs their choice drivers.

use crate::compile::Model;
use crate::config::{GlobalConfig, NodeConfig};
use crate::error::SemanticsError;
use crate::handler::build_init_packet;
use crate::queue::PktQueue;
use crate::value::Val;

/// Applies the `(Fwd, i)` action (rule G-Fwd): pops the head `(pkt, pt)` of
/// node `i`'s output queue and enqueues the packet at the input queue of the
/// interface linked to `(i, pt)`. Returns `false` if the destination queue
/// was full and the packet was dropped (congestion).
///
/// # Errors
///
/// Fails if the output queue is empty (the action was not enabled) or the
/// departure port has no link.
pub fn deliver(model: &Model, cfg: &mut GlobalConfig, node: usize) -> Result<bool, SemanticsError> {
    let (pkt, port) = cfg.nodes[node]
        .q_out
        .pop_front()
        .ok_or(SemanticsError::EmptyQueue { node })?;
    let (dst, dst_port) = model
        .link_dest(node, port)
        .ok_or(SemanticsError::NoLinkOnPort { node, port })?;
    Ok(cfg.nodes[dst].q_in.push_back((pkt, dst_port)))
}

/// Builds the initial global configuration from per-node state values
/// (produced by evaluating the state initializers) and the model's init
/// packets.
///
/// # Errors
///
/// Fails if an init packet's field expressions cannot be evaluated.
pub fn initial_config(
    model: &Model,
    states: Vec<Vec<Val>>,
) -> Result<GlobalConfig, SemanticsError> {
    assert_eq!(states.len(), model.num_nodes(), "one state vector per node");
    let mut nodes: Vec<NodeConfig> = states
        .into_iter()
        .map(|state| NodeConfig {
            state,
            q_in: PktQueue::new(model.queue_capacity),
            q_out: PktQueue::new(model.queue_capacity),
            error: false,
        })
        .collect();
    for spec in &model.init_packets {
        let pkt = build_init_packet(model, &spec.fields)?;
        nodes[spec.node].q_in.push_back((pkt, spec.port));
    }
    Ok(GlobalConfig {
        sched_state: 0,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayonet_lang::parse;

    fn model() -> Model {
        crate::compile::compile(
            &parse(
                r#"
                packet_fields { dst }
                topology { nodes { A, B } links { (A, pt1) <-> (B, pt2) } }
                programs { A -> p, B -> p }
                queue_capacity 1;
                init { packet -> (A, pt1) { dst = B }; }
                query probability(1 == 1);
                def p(pkt, pt) { drop; }
                "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn initial_config_injects_packets() {
        let m = model();
        let cfg = initial_config(&m, vec![vec![], vec![]]).unwrap();
        assert_eq!(cfg.nodes[0].q_in.len(), 1);
        let (pkt, port) = cfg.nodes[0].q_in.head().unwrap();
        assert_eq!(*port, 1);
        assert_eq!(*pkt.field(0), Val::int(1)); // dst = B = node id 1
        assert!(cfg.nodes[1].q_in.is_empty());
    }

    #[test]
    fn deliver_crosses_the_link() {
        let m = model();
        let mut cfg = initial_config(&m, vec![vec![], vec![]]).unwrap();
        // Manually move A's packet to its output queue on port 1.
        let entry = cfg.nodes[0].q_in.pop_front().unwrap();
        cfg.nodes[0].q_out.push_back(entry);
        assert!(deliver(&m, &mut cfg, 0).unwrap());
        assert!(cfg.nodes[0].q_out.is_empty());
        // Arrived at B with B's port of the link (pt2).
        let (_, port) = cfg.nodes[1].q_in.head().unwrap();
        assert_eq!(*port, 2);
    }

    #[test]
    fn deliver_drops_on_full_destination() {
        let m = model(); // capacity 1
        let mut cfg = initial_config(&m, vec![vec![], vec![]]).unwrap();
        // Fill B's input queue.
        cfg.nodes[1]
            .q_in
            .push_back((crate::queue::Packet::fresh(1), 2));
        let entry = cfg.nodes[0].q_in.pop_front().unwrap();
        cfg.nodes[0].q_out.push_back(entry);
        // Delivery happens but the packet is dropped: congestion.
        assert!(!deliver(&m, &mut cfg, 0).unwrap());
        assert_eq!(cfg.nodes[1].q_in.len(), 1);
    }

    #[test]
    fn deliver_without_link_errors() {
        let m = model();
        let mut cfg = initial_config(&m, vec![vec![], vec![]]).unwrap();
        cfg.nodes[0]
            .q_out
            .push_back((crate::queue::Packet::fresh(1), 9));
        assert!(matches!(
            deliver(&m, &mut cfg, 0),
            Err(SemanticsError::NoLinkOnPort { node: 0, port: 9 })
        ));
    }
}
