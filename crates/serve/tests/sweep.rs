//! `/v1/sweep` integration suite: request validation (table-driven
//! structured 400s with `error.field` naming the offending key), per-point
//! frames byte-aligned with pointwise `/v1/run` answers, chunked NDJSON
//! streaming, and the metrics proof that a concrete sweep actually reuses
//! its shared exploration prefix instead of re-running every point.

use std::net::SocketAddr;

use bayonet_serve::{parse_json, start, Json, MAX_SWEEP_POINTS};

mod common;
use common::{metric, parse_frames, TINY, TINY_PARAM};

fn sweep(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, _, payload) = common::http(addr, "POST", "/v1/sweep", body);
    let payload = if payload.starts_with(|c: char| c.is_ascii_hexdigit()) && status == 200 {
        common::decode_chunked(&payload)
    } else {
        payload
    };
    (status, payload)
}

/// Raw request body with `source` set to the parameterized tiny program
/// and the given fields spliced in verbatim.
fn body_with(fields: &str) -> String {
    let source = Json::Str(TINY_PARAM.into()).to_string();
    format!("{{\"source\":{source},{fields}}}")
}

#[test]
fn malformed_sweeps_are_structured_400s_naming_the_field() {
    // A grid with one more point than the cap: 4 * 16 * 16 = 1024 is legal,
    // 5 * 16 * 16 = 1280 is not.
    let ints = |n: usize| (1..=n).map(|v| v.to_string()).collect::<Vec<_>>().join(",");
    let oversized = format!(
        "\"sweep\":{{\"A\":[{}],\"B\":[{}],\"C\":[{}]}}",
        ints(5),
        ints(16),
        ints(16)
    );

    #[rustfmt::skip]
    let cases: &[(&str, &str, &str)] = &[
        // (raw fields, expected error.field, expected message fragment)
        ("\"sweep\":{}",
         "sweep", "`sweep` must name at least one parameter"),
        ("\"sweep\":{\"P\":[]}",
         "sweep.P", "`sweep.P` must contain at least one value"),
        (&oversized,
         "sweep", "sweep grid has 1280 points; the maximum is 1024"),
        ("\"sweep\":{\"NOPE\":[1,2]}",
         "sweep.NOPE", "unknown swept parameter `NOPE`"),
        ("\"sweep\":{\"P\":[\"1/2\"]},\"program\":\"x\"",
         "program", "`program` conflicts with `source`; set exactly one"),
        ("\"sweep\":{\"P\":[\"1/2\"]},\"grid\":true",
         "grid", "unknown sweep field `grid`"),
        ("\"sweep\":{\"P\":[\"1/2\"]},\"engine\":\"smc\"",
         "engine", "sweeps are exact-only"),
        ("\"sweep\":{\"P\":[\"1/2\"]},\"bindings\":{\"P\":\"1/3\"}",
         "sweep.P", "parameter `P` is set in both `bindings` and `sweep`"),
        ("\"sweep\":{\"P\":[true]}",
         "sweep.P", "values in `sweep.P` must be integers or rational strings"),
        ("\"sweep\":[1,2]",
         "sweep", "`sweep` must be an object"),
        ("\"threads\":0,\"sweep\":{\"P\":[\"1/2\"]}",
         "threads", "`threads` must be between 1 and 64, got 0"),
    ];
    assert_eq!(MAX_SWEEP_POINTS, 1024, "cases above encode the cap");

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();
    for (fields, want_field, want_message) in cases {
        let (status, body) = sweep(addr, &body_with(fields));
        assert_eq!(status, 400, "case {fields}: got body {body}");
        let doc = parse_json(&body).unwrap_or_else(|e| panic!("case {fields}: {e}: {body}"));
        let error = doc.get("error").expect("error object");
        assert_eq!(
            error.get("field").and_then(Json::as_str),
            Some(*want_field),
            "case {fields}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap();
        assert!(
            message.contains(want_message),
            "case {fields}: message {message:?} missing {want_message:?}"
        );
    }
    // A missing `sweep` object is also named, even with everything else valid.
    let (status, body) = sweep(addr, &common::run_body(TINY_PARAM));
    assert_eq!(status, 400, "{body}");
    let doc = parse_json(&body).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("field"))
            .and_then(Json::as_str),
        Some("sweep")
    );
    handle.shutdown();
}

/// Every sweep frame's answer must match the pointwise `/v1/run` of the
/// same program with that point bound — same piecewise values, same `z`,
/// same rendered text up to the (deliberately omitted) stats bracket.
#[test]
fn sweep_frames_match_pointwise_runs() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let values = ["1/5", "1/3", "1/2", "4/5"];
    let grid = values
        .iter()
        .map(|v| format!("\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    let (status, payload) = sweep(addr, &body_with(&format!("\"sweep\":{{\"P\":[{grid}]}}")));
    assert_eq!(status, 200, "{payload}");
    let frames = parse_frames(&payload);
    assert_eq!(frames.len(), values.len());

    for (i, (value, frame)) in values.iter().zip(&frames).enumerate() {
        assert_eq!(frame.index, i as u64, "frames arrive in grid order");
        assert_eq!(frame.status, 200);
        let body = parse_json(&frame.body).unwrap();
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            body.get("point")
                .and_then(|p| p.get("P"))
                .and_then(Json::as_str),
            Some(*value)
        );

        // The independent pointwise run.
        let run_req = Json::obj(vec![
            ("source", Json::Str(TINY_PARAM.into())),
            (
                "bindings",
                Json::obj(vec![("P", Json::Str((*value).into()))]),
            ),
        ])
        .to_string();
        let (run_status, _, run_payload) = common::http(addr, "POST", "/v1/run", &run_req);
        assert_eq!(run_status, 200, "{run_payload}");
        let run = parse_json(&run_payload).unwrap();

        for key in ["results", "z", "discarded"] {
            assert_eq!(
                body.get(key).map(|v| v.to_string()),
                run.get(key).map(|v| v.to_string()),
                "point {value}: `{key}` diverges from pointwise"
            );
        }
        // Sweep text = run text minus its trailing `[... stats ...]` line.
        let run_text = run.get("text").and_then(Json::as_str).unwrap();
        let stats_line = run_text.lines().last().unwrap();
        assert!(
            stats_line.starts_with('['),
            "unexpected run text: {run_text}"
        );
        let want_text = run_text.strip_suffix(&format!("{stats_line}\n")).unwrap();
        assert_eq!(
            body.get("text").and_then(Json::as_str),
            Some(want_text),
            "point {value}"
        );
    }
    handle.shutdown();
}

/// The metrics proof of prefix reuse (the whole point of the sweep engine):
/// a 16-point concrete sweep over the tiny parameterized program must
/// answer ≥ 15 points from the shared prefix, and its total expansion count
/// must be strictly below 16 independent runs.
#[test]
fn sixteen_point_sweep_reuses_its_prefix() {
    // Server 1: one pointwise run, to price a single exploration.
    let single = start(common::test_config()).expect("start server");
    let run_req = Json::obj(vec![
        ("source", Json::Str(TINY_PARAM.into())),
        ("bindings", Json::obj(vec![("P", Json::Str("1/17".into()))])),
    ])
    .to_string();
    let (status, _, payload) = common::http(single.addr(), "POST", "/v1/run", &run_req);
    assert_eq!(status, 200, "{payload}");
    let single_expansions = metric(
        &common::metrics(single.addr()),
        "bayonet_engine_expansions_total",
    );
    assert!(single_expansions > 0);
    single.shutdown();

    // Server 2 (fresh counters): the 16-point sweep over the same program.
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();
    let grid = (1..=16)
        .map(|k| format!("\"{k}/17\""))
        .collect::<Vec<_>>()
        .join(",");
    let (status, payload) = sweep(addr, &body_with(&format!("\"sweep\":{{\"P\":[{grid}]}}")));
    assert_eq!(status, 200, "{payload}");
    let frames = parse_frames(&payload);
    assert_eq!(frames.len(), 16);
    assert!(frames.iter().all(|f| f.status == 200), "{payload}");

    let text = common::metrics(addr);
    assert_eq!(metric(&text, "bayonet_sweep_points_total"), 16);
    assert_eq!(metric(&text, "bayonet_sweep_point_errors_total"), 0);
    let reused = metric(&text, "bayonet_sweep_prefix_reuse_total");
    assert!(
        reused >= 15,
        "only {reused} points reused the prefix:\n{text}"
    );
    let sweep_expansions = metric(&text, "bayonet_engine_expansions_total");
    assert!(
        sweep_expansions < 16 * single_expansions,
        "sweep did {sweep_expansions} expansions, not less than 16 × {single_expansions} \
         pointwise — no work was shared"
    );
    handle.shutdown();
}

/// A repeated sweep is answered entirely from the per-point result cache:
/// identical frames, no new engine work.
#[test]
fn repeated_sweep_is_served_from_cache() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();
    let body = body_with("\"sweep\":{\"P\":[\"1/4\",\"1/2\",\"3/4\"]}");
    let (status, first) = sweep(addr, &body);
    assert_eq!(status, 200);
    let expansions_before = metric(&common::metrics(addr), "bayonet_engine_expansions_total");
    let (status, second) = sweep(addr, &body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "cached sweep must replay identical frames");
    let text = common::metrics(addr);
    assert_eq!(
        metric(&text, "bayonet_engine_expansions_total"),
        expansions_before,
        "cached sweep must not re-run the engine"
    );
    assert!(text.contains("bayonet_sweep_requests_total{route=\"cached\"} 1"));
    handle.shutdown();
}

/// Parameter-free programs degenerate to a rejected request (there is
/// nothing to sweep), not a crash: the unknown-parameter validation fires.
#[test]
fn sweeping_an_undeclared_parameter_is_rejected() {
    let handle = start(common::test_config()).expect("start server");
    let source = Json::Str(TINY.into()).to_string();
    let body = format!("{{\"source\":{source},\"sweep\":{{\"P\":[1]}}}}");
    let (status, payload) = sweep(handle.addr(), &body);
    assert_eq!(status, 400, "{payload}");
    let doc = parse_json(&payload).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("field"))
            .and_then(Json::as_str),
        Some("sweep.P")
    );
    handle.shutdown();
}
