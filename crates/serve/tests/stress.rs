//! Stress test: one large parallel request sharing the server with a burst
//! of small concurrent requests.
//!
//! Locks down the pool-sharing contract: the big request leases idle
//! workers (visible as steal/lease movement in `/metrics`), the small
//! requests are neither deadlocked nor shed with `503`, and the pool's
//! occupancy returns to zero when the dust settles.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig};

mod common;

/// Gossip on K4: the heaviest curated example — a frontier of thousands of
/// configurations, enough for the work-stealing expander to engage.
const GOSSIP_K4: &str = r#"
    packet_fields { dst }
    topology {
        nodes { S0, S1, S2, S3 }
        links {
            (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
            (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
            (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
        }
    }
    programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
    init { packet -> (S0, pt1); }
    query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
    def seed(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); }
        else { drop; }
    }
    def gossip(pkt, pt) state infected(0) {
        if infected == 0 {
            infected = 1;
            dup;
            fwd(uniformInt(1, 3));
            fwd(uniformInt(1, 3));
        } else { drop; }
    }
"#;

/// A small two-node program, parameterized by the flip weight so each
/// burst request is a distinct cache entry (forcing real engine work).
fn small_program(k: u64) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> send, B -> recv }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def send(pkt, pt) {{ if flip(1/{k}) {{ fwd(1); }} else {{ drop; }} }}
        def recv(pkt, pt) state got(0) {{ got = 1; drop; }}
    "#
    )
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

#[test]
fn big_parallel_request_and_small_burst_coexist() {
    let handle = start(ServerConfig {
        threads: 4,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // The big request asks for 8 workers; the server clamps it to the
    // 4-slot pool and lets it borrow whatever is idle.
    let big = std::thread::spawn(move || {
        let body = Json::obj(vec![
            ("source", Json::Str(GOSSIP_K4.into())),
            ("threads", Json::Num(8.0)),
        ])
        .to_string();
        http(addr, "POST", "/v1/run", &body)
    });

    // A burst of distinct small requests racing the big one.
    let burst: Vec<_> = (0..12)
        .map(|k| {
            std::thread::spawn(move || {
                let body = Json::obj(vec![("source", Json::Str(small_program(k + 2)))]).to_string();
                http(addr, "POST", "/v1/run", &body)
            })
        })
        .collect();

    for (k, client) in burst.into_iter().enumerate() {
        let (status, body) = client.join().expect("small client");
        // Small requests must never be shed or starved by the big one:
        // the queue is deep enough and the pool lease never blocks.
        assert_eq!(status, 200, "small request {k} failed: {body}");
        let doc = bayonet_serve::parse_json(&body).expect("json body");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    let (status, body) = big.join().expect("big client");
    assert_eq!(status, 200, "big request failed: {body}");
    let doc = bayonet_serve::parse_json(&body).expect("json body");
    let text = doc.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("94/27"), "wrong posterior: {text}");

    // The pool saw the action: workers were leased, tasks were stolen, and
    // every slot was returned.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_total"), 4.0);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_busy"), 0.0);
    assert!(
        metric_value(&metrics, "bayonet_pool_leases_total") >= 1.0,
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_pool_steals_total") > 0.0,
        "the big request never engaged the work-stealing expander:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_engine_steals_total") > 0.0,
        "{metrics}"
    );

    handle.shutdown();
}
