//! End-to-end tests of the HTTP server: a real `TcpListener` on an
//! ephemeral port, real sockets, concurrent clients — plus the
//! batch/sequential differential: for every example program, a 10-item
//! `/v1/batch` must be byte-identical per item to 10 individual `/v1/run`
//! calls, with the metrics proving the shared source compiled exactly once.

use std::path::PathBuf;
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig};

mod common;
use common::{http, run_body, GOSSIP_K4, TINY};

#[test]
fn concurrent_clients_all_get_exact_answers() {
    let handle = start(ServerConfig {
        threads: 4,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, _, body) = http(addr, "POST", "/v1/run", &run_body(TINY));
                (status, body)
            })
        })
        .collect();
    for client in clients {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let doc = bayonet_serve::parse_json(&body).expect("json body");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("1/3"), "{text}");
    }
    handle.shutdown();
}

#[test]
fn repeat_requests_hit_the_cache_per_metrics() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let (status, _, first) = http(addr, "POST", "/v1/run", &run_body(TINY));
    assert_eq!(status, 200, "{first}");
    let (status, _, second) = http(addr, "POST", "/v1/run", &run_body(TINY));
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second);

    let (status, head, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {head}"
    );
    // The second run was a cache hit: the engine ran exactly once.
    assert!(metrics.contains("bayonet_cache_hits_total 1"), "{metrics}");
    assert!(
        metrics.contains("bayonet_cache_misses_total 1"),
        "{metrics}"
    );
    // Prometheus text sanity: TYPE lines and nonzero counters.
    assert!(
        metrics.contains("# TYPE bayonet_requests_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains(r#"bayonet_requests_total{endpoint="/v1/run",status="200"} 2"#),
        "{metrics}"
    );
    assert!(
        metrics.contains("bayonet_engine_expansions_total"),
        "{metrics}"
    );
    handle.shutdown();
}

/// A minimal symbolic program: the forwarding decision compares two unbound
/// parameters, so exact inference trichotomizes on sign(C1 - C2) and
/// synthesis picks among the resulting cells.
const SYMBOLIC_COSTS: &str = r#"
    packet_fields { dst }
    parameters { C1, C2 }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) state r1(0), r2(0) {
        r1 = C1;
        r2 = C2;
        if r1 < r2 { fwd(1); } else { drop; }
    }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

#[test]
fn synthesize_moves_feasibility_cache_metrics() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let before = common::metrics(addr);
    assert_eq!(
        common::metric(&before, "bayonet_engine_feasibility_hits_total"),
        0
    );
    assert_eq!(
        common::metric(&before, "bayonet_engine_feasibility_misses_total"),
        0
    );

    let (status, _, body) = http(addr, "POST", "/v1/synthesize", &run_body(SYMBOLIC_COSTS));
    assert_eq!(status, 200, "{body}");
    let doc = bayonet_serve::parse_json(&body).expect("json body");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    // The analysis pays elimination misses; the query-answering and
    // cell-enumeration passes revisit those guards and must hit.
    let after = common::metrics(addr);
    let hits = common::metric(&after, "bayonet_engine_feasibility_hits_total");
    let misses = common::metric(&after, "bayonet_engine_feasibility_misses_total");
    assert!(misses > 0, "expected elimination misses:\n{after}");
    assert!(hits > 0, "expected memoized hits:\n{after}");
    handle.shutdown();
}

#[test]
fn expired_deadline_returns_structured_timeout() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let body = Json::obj(vec![
        ("source", Json::Str(GOSSIP_K4.into())),
        ("timeout_ms", Json::Num(1.0)),
    ])
    .to_string();
    let (status, _, payload) = http(addr, "POST", "/v1/run", &body);
    assert_eq!(status, 504, "{payload}");
    let doc = bayonet_serve::parse_json(&payload).expect("json body");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let error = doc.get("error").unwrap();
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("timeout"));
    assert!(
        error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("interrupted by deadline"),
        "{payload}"
    );
    handle.shutdown();
}

#[test]
fn overloaded_queue_sheds_load_with_503() {
    // One worker and a one-slot queue. Idle connections no longer occupy
    // workers under the event loop, so saturation takes genuinely slow
    // jobs: rejection-sampling runs sized far past what the per-request
    // deadline allows, each pinning the worker until its 504.
    let handle = start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        cache_entries: 0, // identical slow requests must not hit the cache
        io_timeout: Duration::from_secs(30),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    let slow_body = |seed: u64| {
        Json::obj(vec![
            ("source", Json::Str(GOSSIP_K4.into())),
            ("engine", Json::Str("rejection".into())),
            ("particles", Json::Num(2_000_000.0)),
            ("seed", Json::Num(seed as f64)),
            ("timeout_ms", Json::Num(3_000.0)),
        ])
        .to_string()
    };
    // Occupy the worker, then fill the queue's single slot.
    let busy: Vec<_> = (0..2)
        .map(|seed| {
            let body = slow_body(seed);
            let client = std::thread::spawn(move || http(addr, "POST", "/v1/run", &body));
            std::thread::sleep(Duration::from_millis(400));
            client
        })
        .collect();

    // The next request is shed by the event loop the moment it parses:
    // a fully framed 503, not queued latency.
    let (status, head, payload) = http(addr, "POST", "/v1/run", &run_body(TINY));
    assert_eq!(status, 503, "{payload}");
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(payload.contains(r#""kind":"overloaded""#), "{payload}");

    // The slow jobs run to their deadline and answer 504: shed load never
    // cancels accepted work.
    for client in busy {
        let (status, _, payload) = client.join().expect("slow client");
        assert_eq!(status, 504, "{payload}");
    }
    handle.shutdown();
}

/// Every curated example program, read from `examples/bay/`.
fn example_programs() -> Vec<(String, String)> {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // repo root
    dir.push("examples/bay");
    let mut programs: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension().is_some_and(|e| e == "bay")).then(|| {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                (name, source)
            })
        })
        .collect();
    programs.sort();
    assert!(
        !programs.is_empty(),
        "no example programs in {}",
        dir.display()
    );
    programs
}

/// The differential: for every example program, a 10-item batch against
/// one server must be byte-identical, item for item, to 10 individual
/// `/v1/run` calls against an *independent* server — and the batch
/// server's metrics must show exactly one compile per batch, with a
/// replayed batch served entirely from the result cache.
#[test]
fn batch_is_byte_identical_to_sequential_runs_for_every_example() {
    let batch_server = start(ServerConfig {
        threads: common::test_threads(),
        ..common::test_config()
    })
    .expect("start batch server");
    let sequential_server = start(common::test_config()).expect("start sequential server");

    let programs = example_programs();
    let mut expected_items = 0u64;
    for (round, (name, source)) in programs.iter().enumerate() {
        // `lossy_link.bay` and `fattree_k4.bay` sample `flip(P_LOSS)`,
        // which the exact engine only accepts with a concrete binding;
        // everything else runs symbolically. Bindings are part of the
        // cache key, so all ten items carry the same ones.
        let bindings = matches!(name.as_str(), "lossy_link.bay" | "fattree_k4.bay")
            .then_some(r#""bindings":{"P_LOSS":"1/10"}"#);
        // Ten items sharing one source. Odd items carry extra per-item
        // knobs (`timeout_ms`, `threads`) that must not change a byte of
        // the result — both are deliberately excluded from the cache key.
        let item_fields = |k: usize| {
            let mut fields: Vec<&str> = bindings.into_iter().collect();
            if k % 2 == 1 {
                fields.push(r#""timeout_ms":600000,"threads":2"#);
            }
            fields.join(",")
        };
        let items: Vec<String> = (0..10).map(|k| format!("{{{}}}", item_fields(k))).collect();
        let batch_body = format!(
            r#"{{"source":{},"items":[{}]}}"#,
            Json::Str(source.clone()),
            items.join(",")
        );
        let (status, payload) = common::post_batch(batch_server.addr(), &batch_body);
        assert_eq!(status, 200, "{name}: {payload}");
        let mut frames = common::parse_frames(&payload);
        assert_eq!(frames.len(), 10, "{name}: {payload}");
        frames.sort_by_key(|f| f.index);

        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.index, k as u64, "{name}: indices must cover 0..10");
            assert_eq!(frame.status, 200, "{name} item {k}: {}", frame.body);
            // The sequential call carries the identical per-item fields,
            // with the shared source inlined.
            let fields = item_fields(k);
            let run = if fields.is_empty() {
                run_body(source)
            } else {
                format!(r#"{{"source":{},{fields}}}"#, Json::Str(source.clone()))
            };
            let (status, _, sequential) = http(sequential_server.addr(), "POST", "/v1/run", &run);
            assert_eq!(status, 200, "{name} item {k}: {sequential}");
            assert_eq!(
                frame.body, sequential,
                "{name} item {k}: batch and sequential bytes diverged"
            );
        }

        // The shared source compiled exactly once per batch and the other
        // nine items reused it. Parallel lanes may race identical cache
        // keys (several items can miss before the first result lands), so
        // hit/miss counts are asserted by conservation, not exact split.
        let text = common::metrics(batch_server.addr());
        let rounds = (round + 1) as u64;
        expected_items += 10;
        assert_eq!(
            common::metric(&text, "bayonet_batch_compiles_total"),
            2 * rounds - 1,
            "{name}: expected exactly one compile per batch\n{text}"
        );
        assert_eq!(
            common::metric(&text, "bayonet_batch_source_reuse_total"),
            9 * (2 * rounds - 1),
            "{name}\n{text}"
        );
        let hits = common::metric(&text, "bayonet_cache_hits_total");
        let misses = common::metric(&text, "bayonet_cache_misses_total");
        assert_eq!(
            hits + misses,
            expected_items,
            "{name}: every item must be a hit or a miss\n{text}"
        );
        assert!(misses >= rounds, "{name}: at least one engine run\n{text}");
        assert_eq!(
            common::metric(&text, "bayonet_batch_item_errors_total"),
            0,
            "{name}\n{text}"
        );

        // Replaying the identical batch must not rerun the engine at all:
        // every item is a cache hit, and the bytes are unchanged.
        let (status, replay) = common::post_batch(batch_server.addr(), &batch_body);
        assert_eq!(status, 200, "{name} replay: {replay}");
        let mut replayed = common::parse_frames(&replay);
        replayed.sort_by_key(|f| f.index);
        assert_eq!(replayed.len(), 10, "{name} replay: {replay}");
        for (first, again) in frames.iter().zip(&replayed) {
            assert_eq!(
                first.body, again.body,
                "{name}: replayed batch diverged on item {}",
                first.index
            );
        }
        expected_items += 10;
        let text = common::metrics(batch_server.addr());
        assert_eq!(
            common::metric(&text, "bayonet_cache_misses_total"),
            misses,
            "{name}: replay must be served from cache\n{text}"
        );
        assert_eq!(
            common::metric(&text, "bayonet_cache_hits_total"),
            hits + 10,
            "{name}: replay must hit on all ten items\n{text}"
        );
        assert_eq!(
            common::metric(&text, "bayonet_batch_compiles_total"),
            2 * rounds,
            "{name}: replay still compiles its shared source once\n{text}"
        );
    }

    batch_server.shutdown();
    sequential_server.shutdown();
}

/// Mixed-engine batches also match their sequential counterparts and
/// stream distinct results per item.
#[test]
fn mixed_engine_batch_matches_sequential_runs() {
    let batch_server = start(common::test_config()).expect("start batch server");
    let sequential_server = start(common::test_config()).expect("start sequential server");

    let item_fields = [
        String::new(),
        r#""engine":"smc","particles":80,"seed":1"#.to_string(),
        r#""engine":"smc","particles":80,"seed":2"#.to_string(),
        r#""engine":"rejection","particles":80,"seed":1"#.to_string(),
    ];
    let items: Vec<String> = item_fields.iter().map(|f| format!("{{{f}}}")).collect();
    let batch_body = format!(
        r#"{{"source":{},"items":[{}]}}"#,
        Json::Str(TINY.into()),
        items.join(",")
    );
    let (status, payload) = common::post_batch(batch_server.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut frames = common::parse_frames(&payload);
    frames.sort_by_key(|f| f.index);
    assert_eq!(frames.len(), 4);

    for (k, frame) in frames.iter().enumerate() {
        assert_eq!(frame.status, 200, "item {k}: {}", frame.body);
        let run = if item_fields[k].is_empty() {
            run_body(TINY)
        } else {
            format!(
                r#"{{"source":{},{}}}"#,
                Json::Str(TINY.into()),
                item_fields[k]
            )
        };
        let (status, _, sequential) = http(sequential_server.addr(), "POST", "/v1/run", &run);
        assert_eq!(status, 200, "item {k}: {sequential}");
        assert_eq!(frame.body, sequential, "item {k} diverged");
    }

    // Four distinct cache keys, one shared compile.
    let text = common::metrics(batch_server.addr());
    assert_eq!(common::metric(&text, "bayonet_batch_compiles_total"), 1);
    assert_eq!(common::metric(&text, "bayonet_batch_source_reuse_total"), 3);
    assert_eq!(common::metric(&text, "bayonet_cache_misses_total"), 4);

    batch_server.shutdown();
    sequential_server.shutdown();
}

#[test]
fn optimization_metrics_prove_symmetry_reduction() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    // Passes default on: the gossip run folds through the pipeline, and
    // its three interchangeable peers make the frontier canonicalization
    // actually merge states — the orbit counter must move.
    let (status, optimized) = common::post_run(addr, GOSSIP_K4);
    assert_eq!(status, 200, "{optimized}");
    let text = common::metrics(addr);
    assert!(
        common::metric(&text, "bayonet_opt_pass_runs_total") >= 1,
        "{text}"
    );
    let merged = common::metric(&text, "bayonet_opt_orbit_states_merged_total");
    assert!(merged > 0, "symmetry reduction merged no states:\n{text}");

    // Opting out answers identically but records no optimization work.
    let body = Json::obj(vec![
        ("source", Json::Str(GOSSIP_K4.into())),
        ("passes", Json::Bool(false)),
    ])
    .to_string();
    let (status, _, plain) = http(addr, "POST", "/v1/run", &body);
    assert_eq!(status, 200, "{plain}");
    // Identical up to the engine-stats bracket (which *should* shrink:
    // fewer expansions and a smaller peak under canonicalization).
    let posterior = |payload: &str| -> String {
        let doc = bayonet_serve::parse_json(payload).expect("json");
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        text.lines()
            .filter(|l| !l.starts_with('['))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(posterior(&optimized), posterior(&plain));
    let after = common::metrics(addr);
    assert_eq!(
        common::metric(&after, "bayonet_opt_orbit_states_merged_total"),
        merged,
        "{after}"
    );
    handle.shutdown();
}
