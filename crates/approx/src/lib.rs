//! Approximate probabilistic inference for Bayonet networks.
//!
//! The reproduction's stand-in for WebPPL: the paper's evaluation uses
//! WebPPL's **Sequential Monte Carlo** with 1000 particles for the larger
//! topologies (30-node congestion/reliability chains, K20/K30 gossip). This
//! crate implements [`smc`] — lockstep particle advancement with
//! observation-driven resampling — plus plain [`rejection`] sampling, over
//! the same compiled network model the exact engine uses.
//!
//! # Examples
//!
//! ```
//! use bayonet_lang::parse;
//! use bayonet_net::{compile, scheduler_for};
//! use bayonet_approx::{smc, ApproxOptions};
//!
//! let model = compile(&parse(r#"
//!     packet_fields { dst }
//!     topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
//!     programs { A -> send, B -> recv }
//!     init { packet -> (A, pt1); }
//!     query probability(got@B == 1);
//!     def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
//!     def recv(pkt, pt) state got(0) { got = 1; drop; }
//! "#)?)?;
//! let est = smc(&model, &*scheduler_for(&model), &model.queries[0],
//!               &ApproxOptions { particles: 2000, ..Default::default() })?;
//! assert!((est.value - 1.0 / 3.0).abs() < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod engine;
mod trace;

pub use driver::{sample_initial, sample_step, SampleDriver, StepOutcome};
pub use engine::{rejection, sample_trace, smc, ApproxError, ApproxOptions, Estimate};
pub use trace::{simulate, SimEvent, Simulation};
