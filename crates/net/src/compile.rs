//! Compilation of a checked Bayonet AST into an executable network model.
//!
//! Compilation resolves every name: nodes become integer ids (their index in
//! the `nodes` declaration), packet fields and state variables become slot
//! indices, parameters are interned into a [`ParamTable`], and node-name
//! constants fold to their ids. The result is a [`Model`] that the exact and
//! approximate engines execute without further name lookups.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bayonet_lang::ast;
use bayonet_lang::{BinOp, Program, Query, SchedulerSpec, Stmt};
use bayonet_num::Rat;
use bayonet_symbolic::{ParamId, ParamTable};

/// Default queue capacity when the program does not specify one — the
/// paper's running example uses capacity 2 throughout.
pub const DEFAULT_QUEUE_CAPACITY: u64 = 2;

/// Default per-handler-run local step limit (guards diverging `while`).
pub const DEFAULT_LOCAL_STEP_LIMIT: u64 = 100_000;

/// An error produced during compilation (a name that failed to resolve, an
/// out-of-range literal, ...). Programs that pass [`bayonet_lang::check`]
/// rarely trigger these.
#[derive(Clone, Debug)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// A compiled expression with all names resolved to slots/ids.
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    /// A rational constant (literals, folded node ids).
    Const(Rat),
    /// A symbolic configuration parameter.
    Param(ParamId),
    /// A state variable of the current program.
    State(usize),
    /// A transient local variable of the current handler run.
    Local(usize),
    /// A field of the packet at the head of the input queue.
    Field(usize),
    /// The arrival port of the head packet.
    Port,
    /// Bernoulli draw.
    Flip(Box<CExpr>),
    /// Uniform integer draw, inclusive bounds.
    UniformInt(Box<CExpr>, Box<CExpr>),
    /// Binary operation.
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Logical negation.
    Not(Box<CExpr>),
    /// Arithmetic negation.
    Neg(Box<CExpr>),
}

/// A compiled statement.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    /// Prepend a fresh packet (L-New).
    New,
    /// Remove the head packet (L-Drop).
    Drop,
    /// Duplicate the head packet (L-Dup).
    Dup,
    /// No-op.
    Skip,
    /// Move the head packet to the output queue, targeting the given port.
    Fwd(CExpr),
    /// Assign a state variable.
    AssignState(usize, CExpr),
    /// Assign a handler-local variable.
    AssignLocal(usize, CExpr),
    /// Assign a field of the head packet.
    FieldAssign(usize, CExpr),
    /// Assertion; failure sends the node to the error state ⊥.
    Assert(CExpr),
    /// Observation; failure discards the trace (Bayesian conditioning).
    Observe(CExpr),
    /// Conditional.
    If(CExpr, Vec<CStmt>, Vec<CStmt>),
    /// Loop.
    While(CExpr, Vec<CStmt>),
}

/// A compiled node program.
#[derive(Debug, PartialEq)]
pub struct CompiledProgram {
    /// Program name (for diagnostics).
    pub name: String,
    /// State variable names, index = slot.
    pub state_names: Vec<String>,
    /// State initializer expressions (may draw randomness; evaluated once at
    /// network construction).
    pub state_init: Vec<CExpr>,
    /// Handler-local variable names, index = slot.
    pub local_names: Vec<String>,
    /// The handler body.
    pub body: Vec<CStmt>,
}

/// Kind of a query (paper Figure 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// `probability(b)` over all terminating configurations.
    Probability,
    /// `expectation(e)` over non-error terminating configurations.
    Expectation,
}

/// A compiled query expression (evaluated on terminal configurations).
#[derive(Clone, Debug, PartialEq)]
pub enum QExpr {
    /// Constant.
    Const(Rat),
    /// Symbolic parameter.
    Param(ParamId),
    /// `x@Node`: state slot of a node.
    At {
        /// Node id.
        node: usize,
        /// State slot within that node's program.
        slot: usize,
    },
    /// Binary operation.
    Binary(BinOp, Box<QExpr>, Box<QExpr>),
    /// Logical negation.
    Not(Box<QExpr>),
    /// Arithmetic negation.
    Neg(Box<QExpr>),
}

/// A compiled query.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledQuery {
    /// Probability or expectation.
    pub kind: QueryKind,
    /// The query body.
    pub expr: QExpr,
    /// The original source text (for reports).
    pub source: String,
}

/// Scheduler selection carried on the model.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedKind {
    /// Uniform over enabled actions (paper Figure 6).
    Uniform,
    /// Deterministic fixed-priority scan: lowest node id first, `Run`
    /// before `Fwd` (the paper's "det." scheduler).
    Deterministic,
    /// Stateful deterministic rotor (fair cursor sweep).
    Rotor,
    /// Per-node weights over enabled actions.
    Weighted(Vec<u64>),
}

/// An initial packet: destination node, arrival port, and field values.
#[derive(Clone, Debug, PartialEq)]
pub struct InitPacketSpec {
    /// Node whose input queue receives the packet.
    pub node: usize,
    /// Arrival port recorded on the packet.
    pub port: u32,
    /// `(field slot, value expression)` initializers; other fields are 0.
    pub fields: Vec<(usize, CExpr)>,
}

/// A fully compiled, executable network model.
///
/// Observes parameter-binding reads on behalf of the sweep engine.
///
/// A watch marks a subset of parameters as *watched*; whenever
/// [`Model::binding`] is consulted for a watched parameter the sticky
/// [`ParamWatch::hit`] flag trips. Exploration that never trips the watch
/// is provably independent of the watched parameters' values, so it can be
/// replayed verbatim across every point of a parameter grid. The flag is an
/// atomic because the exact engine expands frontiers from multiple worker
/// threads.
#[derive(Debug, Default)]
pub struct ParamWatch {
    /// `mask[ParamId::index()]` — is this parameter watched?
    mask: Vec<bool>,
    /// Sticky flag: has any watched parameter been read?
    hit: AtomicBool,
}

impl ParamWatch {
    /// Creates a watch over `watched` out of `nparams` total parameters.
    pub fn new(nparams: usize, watched: &[ParamId]) -> ParamWatch {
        let mut mask = vec![false; nparams];
        for id in watched {
            mask[id.index()] = true;
        }
        ParamWatch {
            mask,
            hit: AtomicBool::new(false),
        }
    }

    /// Records one binding read (called from [`Model::binding`]).
    fn note_read(&self, id: ParamId) {
        if self.mask.get(id.index()).copied().unwrap_or(false) {
            self.hit.store(true, Ordering::Relaxed);
        }
    }

    /// Has any watched parameter been read since construction / the last
    /// [`ParamWatch::reset`]?
    pub fn hit(&self) -> bool {
        self.hit.load(Ordering::Relaxed)
    }

    /// Clears the sticky flag.
    pub fn reset(&self) {
        self.hit.store(false, Ordering::Relaxed);
    }
}

/// Cloning is cheap relative to compilation: node programs are shared
/// behind [`Arc`], so a clone copies only the tables and bindings. The
/// serve layer's batch endpoint relies on this to compile a shared source
/// once and give every batch item its own bindable copy.
#[derive(Clone, Debug)]
pub struct Model {
    /// Node names, index = node id.
    pub node_names: Vec<String>,
    /// Packet field names, index = field slot.
    pub field_names: Vec<String>,
    /// Symbolic parameter table.
    pub params: ParamTable,
    /// Concrete bindings for parameters (index = `ParamId::index()`);
    /// unbound parameters stay symbolic.
    bindings: Vec<Option<Rat>>,
    /// Link map: `(node, port) -> (node, port)`, stored in both directions.
    links: HashMap<(usize, u32), (usize, u32)>,
    /// Program run by each node (programs may be shared between nodes).
    pub programs: Vec<Arc<CompiledProgram>>,
    /// Capacity of every input and output queue.
    pub queue_capacity: usize,
    /// Optional global step bound from the source (`num_steps N;`).
    pub num_steps: Option<u64>,
    /// Scheduler selection.
    pub scheduler: SchedKind,
    /// Initial packets.
    pub init_packets: Vec<InitPacketSpec>,
    /// Compiled queries.
    pub queries: Vec<CompiledQuery>,
    /// Per-handler-run step limit.
    pub local_step_limit: u64,
    /// Optional observer of parameter-binding reads (see [`ParamWatch`]).
    /// Shared across clones; cleared with [`Model::clear_param_watch`].
    watch: Option<Arc<ParamWatch>>,
    /// Optimization-pass results (see [`crate::opt`]): present after
    /// [`crate::opt::optimize`] ran, absent on a freshly compiled model.
    /// Shared across clones; binding-independent by construction (passes
    /// never fold parameters), so batch items and sweep points reuse it.
    pub(crate) opt_info: Option<Arc<crate::opt::OptInfo>>,
}

impl Model {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of packet fields.
    pub fn num_fields(&self) -> usize {
        self.field_names.len()
    }

    /// Resolves a node name to its id.
    pub fn node_id(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }

    /// The link destination of `(node, port)`, if linked.
    pub fn link_dest(&self, node: usize, port: u32) -> Option<(usize, u32)> {
        self.links.get(&(node, port)).copied()
    }

    /// Iterates over all directed link entries.
    pub fn links(&self) -> impl Iterator<Item = ((usize, u32), (usize, u32))> + '_ {
        self.links.iter().map(|(&a, &b)| (a, b))
    }

    /// Binds a symbolic parameter to a concrete value. Subsequent engine
    /// runs treat it as a constant.
    ///
    /// # Errors
    ///
    /// Fails if `name` was not declared in the `parameters` block.
    pub fn bind_param(&mut self, name: &str, value: Rat) -> Result<(), CompileError> {
        let id = self
            .params
            .lookup(name)
            .ok_or_else(|| CompileError(format!("unknown parameter `{name}`")))?;
        self.bindings[id.index()] = Some(value);
        Ok(())
    }

    /// Removes a parameter's concrete binding, making it symbolic again.
    pub fn unbind_param(&mut self, name: &str) -> Result<(), CompileError> {
        let id = self
            .params
            .lookup(name)
            .ok_or_else(|| CompileError(format!("unknown parameter `{name}`")))?;
        self.bindings[id.index()] = None;
        Ok(())
    }

    /// The concrete binding of a parameter, if any.
    pub fn binding(&self, id: ParamId) -> Option<&Rat> {
        if let Some(watch) = &self.watch {
            watch.note_read(id);
        }
        self.bindings[id.index()].as_ref()
    }

    /// Installs a [`ParamWatch`]: every subsequent [`Model::binding`] read
    /// of a watched parameter trips the watch's flag. The sweep engine uses
    /// this to find the longest exploration prefix that never depends on a
    /// swept parameter.
    pub fn set_param_watch(&mut self, watch: Arc<ParamWatch>) {
        self.watch = Some(watch);
    }

    /// Removes any installed [`ParamWatch`]; binding reads are no longer
    /// observed.
    pub fn clear_param_watch(&mut self) {
        self.watch = None;
    }

    /// Returns `true` if any declared parameter is unbound (symbolic).
    pub fn has_symbolic_params(&self) -> bool {
        self.bindings.iter().any(|b| b.is_none())
    }

    /// The optimization-pass results attached by [`crate::opt::optimize`],
    /// if the model has been optimized.
    pub fn opt_info(&self) -> Option<&Arc<crate::opt::OptInfo>> {
        self.opt_info.as_ref()
    }

    /// The state slot of variable `var` in `node`'s program.
    pub fn state_slot(&self, node: usize, var: &str) -> Option<usize> {
        self.programs[node]
            .state_names
            .iter()
            .position(|n| n == var)
    }
}

/// Compiles a parsed (and ideally checked) program into a [`Model`].
///
/// # Errors
///
/// Returns a [`CompileError`] for unresolved names or malformed constructs.
/// Run [`bayonet_lang::check`] first for comprehensive diagnostics.
pub fn compile(p: &Program) -> Result<Model, CompileError> {
    let node_names: Vec<String> = p.topology.nodes.iter().map(|n| n.name.clone()).collect();
    let field_names: Vec<String> = p.packet_fields.iter().map(|f| f.name.clone()).collect();
    let mut params = ParamTable::new();
    for param in &p.parameters {
        params.intern(&param.name);
    }

    let node_id = |name: &str| -> Result<usize, CompileError> {
        node_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| CompileError(format!("unknown node `{name}`")))
    };

    // Links, both directions.
    let mut links = HashMap::new();
    for l in &p.topology.links {
        let a = (node_id(&l.a.node.name)?, l.a.port);
        let b = (node_id(&l.b.node.name)?, l.b.port);
        if links.insert(a, b).is_some() || links.insert(b, a).is_some() {
            return Err(CompileError(format!(
                "interface ({}, pt{}) or ({}, pt{}) linked twice",
                l.a.node.name, l.a.port, l.b.node.name, l.b.port
            )));
        }
    }

    // Compile each def once; map nodes to their program.
    let mut compiled_defs: HashMap<&str, Arc<CompiledProgram>> = HashMap::new();
    for def in &p.defs {
        let prog = compile_def(def, &node_names, &field_names, &params)?;
        compiled_defs.insert(&def.name.name, Arc::new(prog));
    }
    let mut programs: Vec<Option<Arc<CompiledProgram>>> = vec![None; node_names.len()];
    for (node, prog) in &p.programs {
        let id = node_id(&node.name)?;
        let compiled = compiled_defs
            .get(prog.name.as_str())
            .ok_or_else(|| CompileError(format!("undefined program `{}`", prog.name)))?;
        programs[id] = Some(Arc::clone(compiled));
    }
    let programs: Vec<Arc<CompiledProgram>> = programs
        .into_iter()
        .enumerate()
        .map(|(i, prog)| {
            prog.ok_or_else(|| CompileError(format!("node `{}` has no program", node_names[i])))
        })
        .collect::<Result<_, _>>()?;

    // Init packets.
    let mut init_packets = Vec::new();
    for ip in &p.init {
        let node = node_id(&ip.node.name)?;
        let mut fields = Vec::new();
        for (f, e) in &ip.fields {
            let slot = field_names
                .iter()
                .position(|n| n == &f.name)
                .ok_or_else(|| CompileError(format!("unknown field `{}`", f.name)))?;
            // Init expressions resolve names against nodes/params only.
            let ce = compile_expr(e, &ExprCx::init(&node_names, &params))?;
            fields.push((slot, ce));
        }
        init_packets.push(InitPacketSpec {
            node,
            port: ip.port,
            fields,
        });
    }

    // Queries.
    let mut queries = Vec::new();
    for q in &p.queries {
        let (kind, e) = match q {
            Query::Probability(e) => (QueryKind::Probability, e),
            Query::Expectation(e) => (QueryKind::Expectation, e),
        };
        let expr = compile_query_expr(e, &node_names, &params, &programs)?;
        queries.push(CompiledQuery {
            kind,
            expr,
            source: bayonet_lang::pretty_expr(e),
        });
    }

    // Scheduler.
    let scheduler = match &p.scheduler {
        SchedulerSpec::Uniform => SchedKind::Uniform,
        SchedulerSpec::RoundRobin => SchedKind::Deterministic,
        SchedulerSpec::Rotor => SchedKind::Rotor,
        SchedulerSpec::Weighted(ws) => {
            let mut weights = vec![1u64; node_names.len()];
            for (node, w) in ws {
                weights[node_id(&node.name)?] = *w;
            }
            SchedKind::Weighted(weights)
        }
    };

    let nparams = params.len();
    Ok(Model {
        node_names,
        field_names,
        params,
        bindings: vec![None; nparams],
        links,
        programs,
        queue_capacity: p.queue_capacity.unwrap_or(DEFAULT_QUEUE_CAPACITY) as usize,
        num_steps: p.num_steps,
        scheduler,
        init_packets,
        queries,
        local_step_limit: DEFAULT_LOCAL_STEP_LIMIT,
        watch: None,
        opt_info: None,
    })
}

/// Name-resolution context for expression compilation.
struct ExprCx<'a> {
    node_names: &'a [String],
    params: &'a ParamTable,
    field_names: Option<&'a [String]>,
    state_names: Option<&'a [String]>,
    /// Local slots (read-only here; extended at `Assign` sites); `None`
    /// forbids locals.
    locals: Option<&'a [String]>,
}

impl<'a> ExprCx<'a> {
    fn init(node_names: &'a [String], params: &'a ParamTable) -> Self {
        ExprCx {
            node_names,
            params,
            field_names: None,
            state_names: None,
            locals: None,
        }
    }
}

fn compile_expr(e: &ast::Expr, cx: &ExprCx<'_>) -> Result<CExpr, CompileError> {
    use ast::Expr as E;
    Ok(match e {
        E::Num(r, _) => CExpr::Const(r.clone()),
        E::Name(id) => {
            if let Some(states) = cx.state_names {
                if let Some(slot) = states.iter().position(|n| n == &id.name) {
                    return Ok(CExpr::State(slot));
                }
            }
            if let Some(pid) = cx.params.lookup(&id.name) {
                return Ok(CExpr::Param(pid));
            }
            if let Some(nid) = cx.node_names.iter().position(|n| n == &id.name) {
                return Ok(CExpr::Const(Rat::int(nid as i64)));
            }
            if let Some(locals) = cx.locals {
                if let Some(slot) = locals.iter().position(|n| n == &id.name) {
                    return Ok(CExpr::Local(slot));
                }
            }
            return Err(CompileError(format!("unresolved name `{}`", id.name)));
        }
        E::Field(f) => {
            let fields = cx
                .field_names
                .ok_or_else(|| CompileError(format!("pkt.{} not allowed here", f.name)))?;
            let slot = fields
                .iter()
                .position(|n| n == &f.name)
                .ok_or_else(|| CompileError(format!("unknown field `{}`", f.name)))?;
            CExpr::Field(slot)
        }
        E::Port(_) => {
            if cx.field_names.is_none() {
                return Err(CompileError("`pt` not allowed here".into()));
            }
            CExpr::Port
        }
        E::At(..) => {
            return Err(CompileError(
                "x@Node expressions are only allowed in queries".into(),
            ))
        }
        E::Flip(p, _) => CExpr::Flip(Box::new(compile_expr(p, cx)?)),
        E::UniformInt(lo, hi, _) => CExpr::UniformInt(
            Box::new(compile_expr(lo, cx)?),
            Box::new(compile_expr(hi, cx)?),
        ),
        E::Binary(op, a, b) => CExpr::Binary(
            *op,
            Box::new(compile_expr(a, cx)?),
            Box::new(compile_expr(b, cx)?),
        ),
        E::Not(inner, _) => CExpr::Not(Box::new(compile_expr(inner, cx)?)),
        E::Neg(inner, _) => CExpr::Neg(Box::new(compile_expr(inner, cx)?)),
    })
}

fn compile_def(
    def: &ast::NodeDef,
    node_names: &[String],
    field_names: &[String],
    params: &ParamTable,
) -> Result<CompiledProgram, CompileError> {
    let state_names: Vec<String> = def.state.iter().map(|(v, _)| v.name.clone()).collect();
    // State initializers: no locals, no pkt/pt.
    let mut state_init = Vec::new();
    for (_, init) in &def.state {
        let cx = ExprCx {
            node_names,
            params,
            field_names: None,
            state_names: None,
            locals: None,
        };
        state_init.push(compile_expr(init, &cx)?);
    }
    let mut local_names: Vec<String> = Vec::new();
    let body = compile_stmts(
        &def.body,
        node_names,
        field_names,
        params,
        &state_names,
        &mut local_names,
    )?;
    Ok(CompiledProgram {
        name: def.name.name.clone(),
        state_names,
        state_init,
        local_names,
        body,
    })
}

fn compile_stmts(
    stmts: &[Stmt],
    node_names: &[String],
    field_names: &[String],
    params: &ParamTable,
    state_names: &[String],
    local_names: &mut Vec<String>,
) -> Result<Vec<CStmt>, CompileError> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        let compile_e = |e: &ast::Expr, local_names: &Vec<String>| {
            let cx = ExprCx {
                node_names,
                params,
                field_names: Some(field_names),
                state_names: Some(state_names),
                locals: Some(local_names),
            };
            compile_expr(e, &cx)
        };
        out.push(match s {
            Stmt::New(_) => CStmt::New,
            Stmt::Drop(_) => CStmt::Drop,
            Stmt::Dup(_) => CStmt::Dup,
            Stmt::Skip(_) => CStmt::Skip,
            Stmt::Fwd(e, _) => CStmt::Fwd(compile_e(e, local_names)?),
            Stmt::Assert(e, _) => CStmt::Assert(compile_e(e, local_names)?),
            Stmt::Observe(e, _) => CStmt::Observe(compile_e(e, local_names)?),
            Stmt::FieldAssign(f, e) => {
                let slot = field_names
                    .iter()
                    .position(|n| n == &f.name)
                    .ok_or_else(|| CompileError(format!("unknown field `{}`", f.name)))?;
                CStmt::FieldAssign(slot, compile_e(e, local_names)?)
            }
            Stmt::Assign(x, e) => {
                let value = compile_e(e, local_names)?;
                if let Some(slot) = state_names.iter().position(|n| n == &x.name) {
                    CStmt::AssignState(slot, value)
                } else {
                    let slot = match local_names.iter().position(|n| n == &x.name) {
                        Some(slot) => slot,
                        None => {
                            local_names.push(x.name.clone());
                            local_names.len() - 1
                        }
                    };
                    CStmt::AssignLocal(slot, value)
                }
            }
            Stmt::If(c, t, e) => {
                let cc = compile_e(c, local_names)?;
                let tt =
                    compile_stmts(t, node_names, field_names, params, state_names, local_names)?;
                let ee =
                    compile_stmts(e, node_names, field_names, params, state_names, local_names)?;
                CStmt::If(cc, tt, ee)
            }
            Stmt::While(c, b) => {
                let cc = compile_e(c, local_names)?;
                let bb =
                    compile_stmts(b, node_names, field_names, params, state_names, local_names)?;
                CStmt::While(cc, bb)
            }
        });
    }
    Ok(out)
}

fn compile_query_expr(
    e: &ast::Expr,
    node_names: &[String],
    params: &ParamTable,
    programs: &[Arc<CompiledProgram>],
) -> Result<QExpr, CompileError> {
    use ast::Expr as E;
    Ok(match e {
        E::Num(r, _) => QExpr::Const(r.clone()),
        E::At(var, node) => {
            let nid = node_names
                .iter()
                .position(|n| n == &node.name)
                .ok_or_else(|| CompileError(format!("unknown node `{}`", node.name)))?;
            let slot = programs[nid]
                .state_names
                .iter()
                .position(|n| n == &var.name)
                .ok_or_else(|| {
                    CompileError(format!(
                        "`{}` is not a state variable of node `{}`",
                        var.name, node.name
                    ))
                })?;
            QExpr::At { node: nid, slot }
        }
        E::Name(id) => {
            if let Some(pid) = params.lookup(&id.name) {
                QExpr::Param(pid)
            } else if let Some(nid) = node_names.iter().position(|n| n == &id.name) {
                QExpr::Const(Rat::int(nid as i64))
            } else {
                return Err(CompileError(format!(
                    "unresolved name `{}` in query (use var@Node)",
                    id.name
                )));
            }
        }
        E::Binary(op, a, b) => QExpr::Binary(
            *op,
            Box::new(compile_query_expr(a, node_names, params, programs)?),
            Box::new(compile_query_expr(b, node_names, params, programs)?),
        ),
        E::Not(inner, _) => QExpr::Not(Box::new(compile_query_expr(
            inner, node_names, params, programs,
        )?)),
        E::Neg(inner, _) => QExpr::Neg(Box::new(compile_query_expr(
            inner, node_names, params, programs,
        )?)),
        E::Field(_) | E::Port(_) | E::Flip(..) | E::UniformInt(..) => {
            return Err(CompileError(
                "queries must be deterministic state expressions".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayonet_lang::parse;

    fn two_node_src(body_a: &str) -> String {
        format!(
            r#"
            packet_fields {{ dst }}
            parameters {{ COST }}
            topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
            programs {{ A -> a, B -> b }}
            init {{ packet -> (A, pt1) {{ dst = B }}; }}
            query probability(n@B == 1);
            def a(pkt, pt) state s(0) {{ {body_a} }}
            def b(pkt, pt) state n(0) {{ n = n + 1; drop; }}
            "#
        )
    }

    #[test]
    fn resolves_names_to_slots() {
        let src = two_node_src("x = COST; s = x + B; pkt.dst = A; fwd(1);");
        let model = compile(&parse(&src).unwrap()).unwrap();
        assert_eq!(model.num_nodes(), 2);
        let prog_a = &model.programs[0];
        assert_eq!(prog_a.state_names, vec!["s"]);
        assert_eq!(prog_a.local_names, vec!["x"]);
        // x = COST
        assert_eq!(
            prog_a.body[0],
            CStmt::AssignLocal(0, CExpr::Param(model.params.lookup("COST").unwrap()))
        );
        // s = x + B  (B folds to node id 1)
        let CStmt::AssignState(0, CExpr::Binary(BinOp::Add, lhs, rhs)) = &prog_a.body[1] else {
            panic!("{:?}", prog_a.body[1]);
        };
        assert_eq!(**lhs, CExpr::Local(0));
        assert_eq!(**rhs, CExpr::Const(Rat::int(1)));
        // pkt.dst = A
        assert_eq!(
            prog_a.body[2],
            CStmt::FieldAssign(0, CExpr::Const(Rat::zero()))
        );
    }

    #[test]
    fn param_watch_trips_only_on_watched_reads() {
        let mut model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        let id = model.params.lookup("COST").unwrap();
        let watch = Arc::new(ParamWatch::new(model.params.len(), &[id]));
        assert!(!watch.hit());

        // Unwatched model: reads leave the (uninstalled) watch untouched.
        let _ = model.binding(id);
        assert!(!watch.hit());

        model.set_param_watch(Arc::clone(&watch));
        // Clones share the installed watch.
        let clone = model.clone();
        let _ = clone.binding(id);
        assert!(watch.hit());
        watch.reset();
        assert!(!watch.hit());

        // An empty watch never trips; clearing detaches the model.
        let empty = Arc::new(ParamWatch::new(model.params.len(), &[]));
        model.set_param_watch(Arc::clone(&empty));
        let _ = model.binding(id);
        assert!(!empty.hit());
        model.clear_param_watch();
        let _ = model.binding(id);
        assert!(!watch.hit() && !empty.hit());
    }

    #[test]
    fn query_at_resolves() {
        let model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        let q = &model.queries[0];
        assert_eq!(q.kind, QueryKind::Probability);
        let QExpr::Binary(BinOp::Eq, lhs, _) = &q.expr else {
            panic!()
        };
        assert_eq!(**lhs, QExpr::At { node: 1, slot: 0 });
    }

    #[test]
    fn links_bidirectional() {
        let model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        assert_eq!(model.link_dest(0, 1), Some((1, 1)));
        assert_eq!(model.link_dest(1, 1), Some((0, 1)));
        assert_eq!(model.link_dest(0, 2), None);
    }

    #[test]
    fn default_queue_capacity_is_two() {
        let model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        assert_eq!(model.queue_capacity, 2);
    }

    #[test]
    fn param_binding_roundtrip() {
        let mut model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        assert!(model.has_symbolic_params());
        model.bind_param("COST", Rat::int(7)).unwrap();
        assert!(!model.has_symbolic_params());
        let id = model.params.lookup("COST").unwrap();
        assert_eq!(model.binding(id), Some(&Rat::int(7)));
        model.unbind_param("COST").unwrap();
        assert!(model.has_symbolic_params());
        assert!(model.bind_param("NOPE", Rat::one()).is_err());
    }

    #[test]
    fn unresolved_name_is_an_error() {
        let src = two_node_src("s = mystery; drop;");
        assert!(compile(&parse(&src).unwrap()).is_err());
    }

    #[test]
    fn init_fields_compile() {
        let model = compile(&parse(&two_node_src("drop;")).unwrap()).unwrap();
        assert_eq!(model.init_packets.len(), 1);
        let ip = &model.init_packets[0];
        assert_eq!((ip.node, ip.port), (0, 1));
        assert_eq!(ip.fields, vec![(0, CExpr::Const(Rat::int(1)))]);
    }
}
