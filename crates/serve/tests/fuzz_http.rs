//! Protocol fuzz: the seeded malformed-HTTP corpus from
//! `bayonet_serve::fuzz` against both the parser in isolation and a live
//! event-loop server.
//!
//! The contract under hostile input is binary: a well-formed HTTP error
//! response, or a clean close. Never a panic, never a wedge, never a
//! leaked fd. Parser-level coverage runs thousands of seeds (it's just
//! byte shuffling); the live leg runs hundreds of real connections and
//! then proves the loop still answers and the open-connections gauge
//! drained.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use bayonet_serve::fuzz::RequestFuzzGen;
use bayonet_serve::{start, ParseStatus, RequestParser, ServerConfig};

mod common;
use common::TINY;

/// Feeds one corpus entry into a fresh [`RequestParser`] in seed-sized
/// fragments. The parser must return — `Complete`, `NeedMore`, or a typed
/// error — without panicking, for every seed and every fragmentation.
#[test]
fn parser_survives_the_corpus_at_every_fragmentation() {
    for seed in 0..3_000u64 {
        let input = RequestFuzzGen::new(seed).generate();
        // Fragment sizes cycle through 1, 7, and whole-buffer so split
        // points land inside the request line, headers, and separators.
        for chunk in [1usize, 7, input.len().max(1)] {
            let mut parser = RequestParser::new();
            let mut done = false;
            for piece in input.chunks(chunk) {
                match parser.feed(piece) {
                    Ok(ParseStatus::Complete(_)) | Err(_) => {
                        done = true;
                        break;
                    }
                    Ok(ParseStatus::NeedMore) => {}
                }
            }
            // Reaching here without a panic IS the assertion; `done` is
            // only consulted so the loop isn't optimized into oblivion.
            let _ = done;
        }
    }
}

/// The live leg: every corpus entry goes down a real socket. Each
/// connection must end in a well-formed HTTP response or a clean EOF —
/// and after the whole corpus the server still answers normal requests
/// with every fd reclaimed.
#[test]
fn live_server_answers_or_closes_cleanly_on_every_corpus_entry() {
    let handle = start(ServerConfig {
        // Short read deadline: torn-body entries are answered by the
        // half-close below, but a tight bound keeps the worst case quick.
        io_timeout: Duration::from_secs(5),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    for seed in 0..300u64 {
        let input = RequestFuzzGen::new(seed).generate();
        let mut conn =
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("seed {seed}: connect failed: {e}"));
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // The server may reject mid-upload (oversized heads) and close;
        // a write error then is the server being correct, not a failure.
        let _ = conn.write_all(&input);
        let _ = conn.shutdown(Shutdown::Write);
        let mut raw = Vec::new();
        match conn.read_to_end(&mut raw) {
            Ok(_) => {}
            // A reset after the server already gave up mid-upload still
            // counts as a close, not a wedge.
            Err(e) => {
                assert!(
                    matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                    ),
                    "seed {seed}: read failed oddly: {e}"
                );
                continue;
            }
        }
        if raw.is_empty() {
            continue; // clean close without a response — acceptable
        }
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 "),
            "seed {seed}: response is not HTTP: {text:?}"
        );
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("seed {seed}: unparseable status line: {text:?}"));
        assert!(
            (200..=599).contains(&status),
            "seed {seed}: absurd status {status}: {text:?}"
        );
        assert!(
            text.contains("\r\n\r\n"),
            "seed {seed}: truncated response head: {text:?}"
        );
    }

    // The loop survived the whole corpus: normal service resumes and the
    // gauge drains to the scraper's own connection.
    let (status, body) = common::post_run(addr, TINY);
    assert_eq!(status, 200, "server wedged after fuzz corpus: {body}");
    common::await_open_connections(addr, 1.0, Duration::from_secs(15));

    handle.shutdown();
}
