//! Tests of the OSPF control-plane generator: the generated ECMP data
//! planes must reproduce the hand-written paper programs' semantics.

use bayonet::ospf::{EcmpMode, OspfBuilder};
use bayonet::{Rat, Sched};

/// The §2 topology described by its link costs.
fn section2_builder() -> OspfBuilder {
    OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .switch("S2")
        .host("H0", "S0")
        .host("H1", "S1")
        .link("S0", "S1", 2)
        .link("S0", "S2", 1)
        .link("S2", "S1", 1)
        .flow("H0", "H1", 3)
}

#[test]
fn generated_equal_cost_plane_reproduces_the_paper_value_exactly() {
    // Costs (2, 1, 1): the two H0->H1 paths tie, so the generated S0
    // program load-balances — and the congestion probability must equal the
    // hand-written §2 example's exact fraction.
    let network = section2_builder().build().unwrap();
    let report = network.exact().unwrap();
    assert_eq!(
        *report.results[0].rat(),
        "30378810105265/67706637778944".parse::<Rat>().unwrap()
    );
}

#[test]
fn generated_unequal_cost_plane_reproduces_the_figure3_cells() {
    // Direct link cheaper (1 < 1+1): single next hop, no ECMP draw at S0.
    // Figure 3's COST_01 < COST_02 + COST_21 cell: 491806403/1088391168.
    let cheap_direct = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .switch("S2")
        .host("H0", "S0")
        .host("H1", "S1")
        .link("S0", "S1", 1)
        .link("S0", "S2", 1)
        .link("S2", "S1", 1)
        .flow("H0", "H1", 3)
        .build()
        .unwrap();
    assert_eq!(
        *cheap_direct.exact().unwrap().results[0].rat(),
        "491806403/1088391168".parse::<Rat>().unwrap()
    );

    // Direct link more expensive (3 > 1+1): all traffic detours via S2.
    // Figure 3's COST_01 > COST_02 + COST_21 cell: 2025575442161/4231664861184.
    let expensive_direct = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .switch("S2")
        .host("H0", "S0")
        .host("H1", "S1")
        .link("S0", "S1", 3)
        .link("S0", "S2", 1)
        .link("S2", "S1", 1)
        .flow("H0", "H1", 3)
        .build()
        .unwrap();
    assert_eq!(
        *expensive_direct.exact().unwrap().results[0].rat(),
        "2025575442161/4231664861184".parse::<Rat>().unwrap()
    );
}

#[test]
fn single_packet_flow_is_always_delivered_without_failures() {
    let network = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .host("A", "S0")
        .host("B", "S1")
        .link("S0", "S1", 10)
        .flow("A", "B", 1)
        .build()
        .unwrap();
    let report = network.exact().unwrap();
    // P(recvd@B < 1) = 0, E[recvd@B] = 1.
    assert_eq!(*report.results[0].rat(), Rat::zero());
    assert_eq!(*report.results[1].rat(), Rat::one());
}

#[test]
fn three_way_ecmp_splits_uniformly() {
    // Three parallel equal-cost two-hop paths between the endpoints; a
    // single packet: each middle switch is used with probability 1/3.
    let mut builder = OspfBuilder::new()
        .switch("IN")
        .switch("OUT")
        .host("A", "IN")
        .host("B", "OUT")
        .flow("A", "B", 1);
    for mid in ["M0", "M1", "M2"] {
        builder = builder.switch(mid).link("IN", mid, 1).link(mid, "OUT", 1);
    }
    let network = builder.build().unwrap();
    let report = network.exact().unwrap();
    assert_eq!(*report.results[1].rat(), Rat::one()); // always delivered
                                                      // The exact analysis must have explored all three middle switches:
                                                      // check via the generated source that the IN switch draws 3 ways.
    assert!(network.source().contains("uniformInt(1, 3)"));
}

#[test]
fn bidirectional_flows_work() {
    let network = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .host("A", "S0")
        .host("B", "S1")
        .link("S0", "S1", 1)
        .flow("A", "B", 2)
        .flow("B", "A", 1)
        .queue_capacity(4)
        .build()
        .unwrap();
    let report = network.exact().unwrap();
    // Queries: [P(B<2), E(B), P(A<1), E(A)].
    assert_eq!(*report.results[1].rat(), Rat::int(2));
    assert_eq!(*report.results[3].rat(), Rat::one());
}

#[test]
fn validation_errors() {
    // Unknown switch.
    assert!(OspfBuilder::new()
        .host("A", "S9")
        .flow("A", "A", 1)
        .source()
        .is_err());
    // Unreachable destination.
    let unreachable = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .host("A", "S0")
        .host("B", "S1")
        .flow("A", "B", 1)
        .source();
    assert!(unreachable.is_err());
    // Duplicate names.
    assert!(OspfBuilder::new().switch("X").switch("X").source().is_err());
    // Zero-cost link.
    assert!(OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .host("A", "S0")
        .host("B", "S1")
        .link("S0", "S1", 0)
        .flow("A", "B", 1)
        .source()
        .is_err());
    // Two flows from the same source host.
    assert!(section2_builder().flow("H0", "H1", 1).source().is_err());
}

#[test]
fn per_flow_ecmp_is_the_mixture_of_deterministic_routes() {
    // Per-flow ECMP draws the path once: the posterior is the uniform
    // mixture of the two all-packets-one-way networks — i.e. the average of
    // Figure 3's strict-< and strict-> cells.
    let network = section2_builder().ecmp(EcmpMode::PerFlow).build().unwrap();
    let p = network.exact().unwrap().results[0].rat().clone();
    let lt: Rat = "491806403/1088391168".parse().unwrap();
    let gt: Rat = "2025575442161/4231664861184".parse().unwrap();
    assert_eq!(p, (lt + gt) * Rat::ratio(1, 2));

    // And it differs from the per-packet value.
    let per_packet = section2_builder().build().unwrap();
    assert_ne!(&p, per_packet.exact().unwrap().results[0].rat());
}

#[test]
fn generated_source_passes_integrity_checks_cleanly() {
    let network = section2_builder()
        .scheduler(Sched::Deterministic)
        .build()
        .unwrap();
    assert!(network.warnings().is_empty(), "{:?}", network.warnings());
    // Deterministic scheduler: congestion certain, like the paper row.
    assert_eq!(*network.exact().unwrap().results[0].rat(), Rat::one());
}

#[test]
fn generated_plane_agrees_across_backends() {
    // A single-packet OSPF network is cheap enough for the PSI backend's
    // trace enumeration: both engines must agree on the generated plane.
    let network = OspfBuilder::new()
        .switch("S0")
        .switch("S1")
        .switch("S2")
        .host("H0", "S0")
        .host("H1", "S1")
        .link("S0", "S1", 2)
        .link("S0", "S2", 1)
        .link("S2", "S1", 1)
        .flow("H0", "H1", 1)
        .build()
        .unwrap();
    let direct = network.exact().unwrap().results[1].rat().clone();
    let via_psi = network.infer_via_psi(1).unwrap();
    assert_eq!(direct, via_psi);
    assert_eq!(direct, Rat::one()); // single packet always delivered
}
