//! Shared helpers for the Bayonet benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§5): `table1`, `fig3`, `sec55`, `codesize`, and
//! `ablations`. The Criterion benches in `benches/` measure the same
//! workloads for performance tracking.

use std::time::{Duration, Instant};

use bayonet::{Error, Network};
use bayonet_num::Rat;

/// A measured exact-inference result for one query.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Exact value.
    pub value: Rat,
    /// Wall-clock time of the full run (analysis + query).
    pub elapsed: Duration,
}

/// Runs exact inference and returns the value of query `idx` with timing.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_exact(network: &Network, idx: usize) -> Result<Measured, Error> {
    let t0 = Instant::now();
    let report = network.exact()?;
    let elapsed = t0.elapsed();
    Ok(Measured {
        value: report.results[idx].rat().clone(),
        elapsed,
    })
}

/// Runs exact inference under explicit [`bayonet::ExactOptions`] (e.g. a
/// thread count) and returns the value of query `idx` with timing.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_exact_with(
    network: &Network,
    idx: usize,
    opts: &bayonet::ExactOptions,
) -> Result<Measured, Error> {
    let t0 = Instant::now();
    let report = network.exact_with(opts)?;
    let elapsed = t0.elapsed();
    Ok(Measured {
        value: report.results[idx].rat().clone(),
        elapsed,
    })
}

/// Runs SMC and returns `(estimate, timing)`.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_smc(
    network: &Network,
    idx: usize,
    particles: usize,
    seed: u64,
) -> Result<(bayonet::Estimate, Duration), Error> {
    let t0 = Instant::now();
    let est = network.smc(
        idx,
        &bayonet::ApproxOptions {
            particles,
            seed,
            ..Default::default()
        },
    )?;
    Ok((est, t0.elapsed()))
}

/// Formats a duration compactly (e.g. "1.24s", "87ms").
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Counts non-empty, non-comment lines (the paper's code-size metric).
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// The CI bench-regression gate shared by the `regress` and `servebench`
/// binaries' `--check <baseline.json>` flag: compare the fresh report
/// against a committed baseline and fail (exit 1) on a regression beyond
/// the tolerance.
///
/// Knobs (all environment variables, so CI jobs and noisy hosts can tune
/// the gate without touching the baselines):
///
/// * `BAYONET_BENCH_TOLERANCE` — allowed relative slowdown before the
///   gate fails, as a fraction (default `0.25`, i.e. 25%). Raise it on
///   noisy shared runners.
/// * `BAYONET_BENCH_STRICT` — set to `1` to gate even when the baseline
///   was recorded on a different host class (os/arch/profile). By default
///   a mismatch prints a warning and skips the gate, because wall-clock
///   numbers from a different machine class are not comparable.
///
/// Phases whose baseline time is under [`gate::MIN_GATED_NS`] are reported
/// but never gated: a 40 µs parse phase regressing by "30%" is scheduler
/// jitter, not a regression.
pub mod gate {
    use bayonet_serve::Json;

    /// Baseline floor below which a timing is too small to gate on.
    pub const MIN_GATED_NS: f64 = 10_000_000.0; // 10 ms

    /// Servebench latencies are micro-scale; gate a cell only when the
    /// regression also exceeds this absolute slack, so a 48 µs → 65 µs
    /// p50 on a noisy runner does not fail the build.
    pub const MIN_GATED_SLACK_US: f64 = 50.0;

    /// Allowed relative slowdown (`BAYONET_BENCH_TOLERANCE`, default 25%).
    pub fn tolerance() -> f64 {
        std::env::var("BAYONET_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25)
    }

    /// `os/arch/profile` of a report's `machine` object: the comparability
    /// class. Cpu count is deliberately excluded — the gated phases are
    /// single-threaded.
    pub fn host_class(report: &Json) -> String {
        let field = |name: &str| {
            report
                .get("machine")
                .and_then(|m| m.get(name))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        format!("{}/{}/{}", field("os"), field("arch"), field("profile"))
    }

    /// One gated comparison row.
    pub struct Check {
        /// `workload/phase` or `cell/stat` label.
        pub label: String,
        pub baseline: f64,
        pub current: f64,
        /// Whether this row is large enough to gate on.
        pub gated: bool,
    }

    impl Check {
        /// Relative slowdown vs. baseline (`0.0` = identical, `1.0` = 2x).
        pub fn slowdown(&self) -> f64 {
            if self.baseline <= 0.0 {
                0.0
            } else {
                self.current / self.baseline - 1.0
            }
        }
    }

    /// Evaluates the rows and prints the verdict table to stderr. Returns
    /// `true` when the gate passes. `unit` labels the printed numbers.
    pub fn verdict(rows: &[Check], tol: f64, unit: &str) -> bool {
        let mut failures = 0usize;
        for row in rows {
            let slowdown = row.slowdown();
            let status = if !row.gated {
                "ungated (below noise floor)"
            } else if slowdown > tol {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            eprintln!(
                "check: {:40} baseline {:>14.0}{unit} current {:>14.0}{unit} ({:+.1}%) {status}",
                row.label,
                row.baseline,
                row.current,
                slowdown * 100.0
            );
        }
        if failures > 0 {
            eprintln!(
                "check: FAILED — {failures} regression(s) beyond {:.0}% \
                 (override with BAYONET_BENCH_TOLERANCE)",
                tol * 100.0
            );
            false
        } else {
            eprintln!(
                "check: passed — {} row(s) within {:.0}%",
                rows.len(),
                tol * 100.0
            );
            true
        }
    }

    /// Applies the host-class policy: `Some(true/false)` short-circuits the
    /// gate (skip, with the given pass verdict), `None` means proceed.
    pub fn host_class_gate(current: &Json, baseline: &Json) -> Option<bool> {
        let (now, before) = (host_class(current), host_class(baseline));
        if now == before || std::env::var("BAYONET_BENCH_STRICT").as_deref() == Ok("1") {
            if now != before {
                eprintln!(
                    "check: host class mismatch ({before} baseline vs {now} current) \
                     but BAYONET_BENCH_STRICT=1: gating anyway"
                );
            }
            None
        } else {
            eprintln!(
                "check: baseline host class {before} != current {now}; skipping the \
                 gate (set BAYONET_BENCH_STRICT=1 to force)"
            );
            Some(true)
        }
    }
}
