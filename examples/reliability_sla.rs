//! Reliability of packet delivery (paper §5.2): verify a service-level
//! agreement — "99% of packets destined to H1 are delivered" — on chains of
//! ECMP diamonds with probabilistically failing links, at increasing size,
//! with both exact and SMC inference.
//!
//! Run with: `cargo run --release --example reliability_sla`

use bayonet::{scenarios, ApproxOptions, Rat, Sched};

fn main() -> Result<(), bayonet::Error> {
    let p_fail = Rat::ratio(1, 1000);
    let sla = Rat::ratio(99, 100);
    println!("link failure probability: {p_fail}; SLA: delivery ≥ {sla}");
    println!(
        "{:<8} {:>6} {:>22} {:>12} {:>10} {:>6}",
        "diamonds", "nodes", "exact", "(float)", "SMC", "SLA?"
    );

    for diamonds in [1usize, 2, 4, 7, 14] {
        let nodes = 2 + 4 * diamonds;
        let network = scenarios::reliability_chain(diamonds, &p_fail, Sched::Uniform)?;
        let report = network.exact()?;
        let exact = report.results[0].rat().clone();
        let est = network.smc(
            0,
            &ApproxOptions {
                particles: 1000,
                seed: 42,
                ..Default::default()
            },
        )?;
        let meets = exact >= sla;
        println!(
            "{:<8} {:>6} {:>22} {:>12.6} {:>10.4} {:>6}",
            diamonds,
            nodes,
            exact.to_string(),
            exact.to_f64(),
            est.value,
            if meets { "yes" } else { "NO" }
        );
        // Analytic cross-check: reliability = (1 - p_fail/2)^D.
        let analytic = (Rat::one() - &p_fail * Rat::ratio(1, 2)).pow(diamonds as i32);
        assert_eq!(exact, analytic, "engine must match the analytic value");
    }
    println!("\n(The exact values match the closed form (1 - p/2)^D.)");
    Ok(())
}
