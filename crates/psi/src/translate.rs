//! Translation of a compiled network [`Model`] into a PSI-core program —
//! the reproduction of paper §4 ("Capturing Network Semantics", Figure 10).
//!
//! The generated program lays the whole network state out in PSI-core
//! globals (per-node state variables, error flags, input/output queues as
//! arrays of `(packet, port)` tuples), and unrolls the global step function
//! statically: build the enabled-action array, draw one action from the
//! scheduler, dispatch on `(kind, node)`, run the inlined handler or deliver
//! a packet, and loop until the termination predicate holds. The final
//! `assert(terminated())` of Figure 10 is preserved as a hard failure.
//!
//! Inference on the translated program (by exhaustive trace enumeration,
//! the way PSI enumerates paths) must agree with the direct engines — the
//! differential tests rely on this.

use std::fmt;

use bayonet_net::{CExpr, CStmt, CompiledQuery, Model, QueryKind, SchedKind};
use bayonet_num::Rat;

use crate::interp::{infer_exact, PsiError};
use crate::ir::{BinOp, LValue, PExpr, PProgram, PStmt, PValue};

/// Errors from the translation step.
#[derive(Debug)]
pub enum TranslateError {
    /// A symbolic parameter has no concrete binding (the PSI backend is
    /// concrete-only; bind parameters or use the direct exact engine).
    UnboundParameter(String),
    /// The model uses a feature the PSI backend does not support.
    Unsupported(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnboundParameter(p) => {
                write!(f, "parameter `{p}` must be bound for the PSI backend")
            }
            TranslateError::Unsupported(m) => write!(f, "PSI backend: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Default step bound when the source declares no `num_steps` (the paper's
/// generated `main` unrolls a fixed number of steps).
pub const DEFAULT_NUM_STEPS: u64 = 4096;

struct Tx<'m> {
    model: &'m Model,
    names: Vec<String>,
    init: Vec<PExpr>,
    /// Per-node slots.
    state_base: Vec<usize>,
    err: Vec<usize>,
    q_in: Vec<usize>,
    q_out: Vec<usize>,
    /// Per-node local-variable base slot.
    local_base: Vec<usize>,
    /// `halt` flag for assert early-exit during a handler run.
    halt: usize,
    /// Scratch slots.
    tmp_counter: usize,
}

impl<'m> Tx<'m> {
    fn alloc(&mut self, name: String, init: PExpr) -> usize {
        self.names.push(name);
        self.init.push(init);
        self.names.len() - 1
    }

    fn tmp(&mut self, hint: &str) -> usize {
        self.tmp_counter += 1;
        self.alloc(
            format!("__tmp{}_{hint}", self.tmp_counter),
            PExpr::Const(Rat::zero()),
        )
    }

    fn param_const(&self, p: bayonet_symbolic::ParamId) -> Result<PExpr, TranslateError> {
        match self.model.binding(p) {
            Some(v) => Ok(PExpr::Const(v.clone())),
            None => Err(TranslateError::UnboundParameter(
                self.model.params.name(p).to_string(),
            )),
        }
    }

    /// Head entry of node `i`'s input queue, as an expression.
    fn head(&self, i: usize) -> PExpr {
        PExpr::Index(
            Box::new(PExpr::Var(self.q_in[i])),
            Box::new(PExpr::Const(Rat::zero())),
        )
    }

    /// Lowers a handler expression for node `i` into `(statements, expr)`.
    /// Draws and short-circuit operators materialize through temporaries so
    /// that evaluation order and draw counts match the direct interpreter.
    fn lower_expr(
        &mut self,
        e: &CExpr,
        node: usize,
        out: &mut Vec<PStmt>,
    ) -> Result<PExpr, TranslateError> {
        Ok(match e {
            CExpr::Const(r) => PExpr::Const(r.clone()),
            CExpr::Param(p) => self.param_const(*p)?,
            CExpr::State(slot) => PExpr::Var(self.state_base[node] + slot),
            CExpr::Local(slot) => PExpr::Var(self.local_base[node] + slot),
            CExpr::Field(f) => PExpr::Index(
                Box::new(PExpr::Proj(Box::new(self.head(node)), 0)),
                Box::new(PExpr::Const(Rat::int(*f as i64))),
            ),
            CExpr::Port => PExpr::Proj(Box::new(self.head(node)), 1),
            CExpr::Flip(p) => {
                let pe = self.lower_expr(p, node, out)?;
                let t = self.tmp("flip");
                out.push(PStmt::Assign(LValue::Var(t), PExpr::Flip(Box::new(pe))));
                PExpr::Var(t)
            }
            CExpr::UniformInt(lo, hi) => {
                let lo = self.lower_expr(lo, node, out)?;
                let hi = self.lower_expr(hi, node, out)?;
                let t = self.tmp("uniform");
                out.push(PStmt::Assign(
                    LValue::Var(t),
                    PExpr::UniformInt(Box::new(lo), Box::new(hi)),
                ));
                PExpr::Var(t)
            }
            CExpr::Binary(BinOp::And, a, b) => {
                // Short-circuit to match the direct interpreter's draw count.
                let t = self.tmp("and");
                let ae = self.lower_expr(a, node, out)?;
                let mut then_body = Vec::new();
                let be = self.lower_expr(b, node, &mut then_body)?;
                then_body.push(PStmt::Assign(
                    LValue::Var(t),
                    PExpr::Bin(BinOp::Ne, Box::new(be), Box::new(PExpr::Const(Rat::zero()))),
                ));
                out.push(PStmt::Assign(LValue::Var(t), PExpr::Const(Rat::zero())));
                out.push(PStmt::If(ae, then_body, vec![]));
                PExpr::Var(t)
            }
            CExpr::Binary(BinOp::Or, a, b) => {
                let t = self.tmp("or");
                let ae = self.lower_expr(a, node, out)?;
                let mut else_body = Vec::new();
                let be = self.lower_expr(b, node, &mut else_body)?;
                else_body.push(PStmt::Assign(
                    LValue::Var(t),
                    PExpr::Bin(BinOp::Ne, Box::new(be), Box::new(PExpr::Const(Rat::zero()))),
                ));
                out.push(PStmt::Assign(LValue::Var(t), PExpr::Const(Rat::one())));
                out.push(PStmt::If(ae, vec![], else_body));
                PExpr::Var(t)
            }
            CExpr::Binary(op, a, b) => {
                let ae = self.lower_expr(a, node, out)?;
                let be = self.lower_expr(b, node, out)?;
                PExpr::Bin(*op, Box::new(ae), Box::new(be))
            }
            CExpr::Not(inner) => {
                let ie = self.lower_expr(inner, node, out)?;
                PExpr::Not(Box::new(ie))
            }
            CExpr::Neg(inner) => {
                let ie = self.lower_expr(inner, node, out)?;
                PExpr::Neg(Box::new(ie))
            }
        })
    }

    fn fresh_packet(&self) -> PExpr {
        PExpr::ArrayLit(vec![PExpr::Const(Rat::zero()); self.model.num_fields()])
    }

    fn guarded(&self, stmts: Vec<PStmt>) -> PStmt {
        // Run only while the current handler has not hit a failed assert.
        PStmt::If(
            PExpr::Bin(
                BinOp::Eq,
                Box::new(PExpr::Var(self.halt)),
                Box::new(PExpr::Const(Rat::zero())),
            ),
            stmts,
            vec![],
        )
    }

    /// Translates a handler statement block for node `i`. Every statement is
    /// individually guarded by the `halt` flag so a failed `assert` aborts
    /// the rest of the handler run (the node is then in ⊥).
    fn lower_block(&mut self, stmts: &[CStmt], node: usize) -> Result<Vec<PStmt>, TranslateError> {
        let cap = PExpr::Const(Rat::int(self.model.queue_capacity as i64));
        let mut out = Vec::new();
        for s in stmts {
            let mut cur = Vec::new();
            match s {
                CStmt::Skip => {}
                CStmt::New => {
                    let pkt = self.fresh_packet();
                    cur.push(PStmt::If(
                        PExpr::Bin(
                            BinOp::Lt,
                            Box::new(PExpr::Len(Box::new(PExpr::Var(self.q_in[node])))),
                            Box::new(cap.clone()),
                        ),
                        vec![PStmt::PushFront(
                            LValue::Var(self.q_in[node]),
                            PExpr::Tuple(vec![pkt, PExpr::Const(Rat::zero())]),
                        )],
                        vec![],
                    ));
                }
                CStmt::Drop => {
                    cur.push(PStmt::PopFront {
                        dest: None,
                        queue: LValue::Var(self.q_in[node]),
                    });
                }
                CStmt::Dup => {
                    // Force the head read (errors on empty, as L-Dup requires
                    // a head packet), then conditionally prepend the copy.
                    let t = self.tmp("dup");
                    cur.push(PStmt::Assign(LValue::Var(t), self.head(node)));
                    cur.push(PStmt::If(
                        PExpr::Bin(
                            BinOp::Lt,
                            Box::new(PExpr::Len(Box::new(PExpr::Var(self.q_in[node])))),
                            Box::new(cap.clone()),
                        ),
                        vec![PStmt::PushFront(
                            LValue::Var(self.q_in[node]),
                            PExpr::Var(t),
                        )],
                        vec![],
                    ));
                }
                CStmt::Fwd(e) => {
                    // The port expression reads the pre-pop head (`pt`,
                    // `pkt.f`), so materialize it before popping.
                    let port_expr = self.lower_expr(e, node, &mut cur)?;
                    let port_tmp = self.tmp("fwdport");
                    cur.push(PStmt::Assign(LValue::Var(port_tmp), port_expr));
                    let port = PExpr::Var(port_tmp);
                    let entry = self.tmp("fwd");
                    cur.push(PStmt::PopFront {
                        dest: Some(LValue::Var(entry)),
                        queue: LValue::Var(self.q_in[node]),
                    });
                    cur.push(PStmt::If(
                        PExpr::Bin(
                            BinOp::Lt,
                            Box::new(PExpr::Len(Box::new(PExpr::Var(self.q_out[node])))),
                            Box::new(cap.clone()),
                        ),
                        vec![PStmt::PushBack(
                            LValue::Var(self.q_out[node]),
                            PExpr::Tuple(vec![PExpr::Proj(Box::new(PExpr::Var(entry)), 0), port]),
                        )],
                        vec![],
                    ));
                }
                CStmt::AssignState(slot, e) => {
                    let v = self.lower_expr(e, node, &mut cur)?;
                    cur.push(PStmt::Assign(LValue::Var(self.state_base[node] + slot), v));
                }
                CStmt::AssignLocal(slot, e) => {
                    let v = self.lower_expr(e, node, &mut cur)?;
                    cur.push(PStmt::Assign(LValue::Var(self.local_base[node] + slot), v));
                }
                CStmt::FieldAssign(f, e) => {
                    let v = self.lower_expr(e, node, &mut cur)?;
                    cur.push(PStmt::Assign(
                        LValue::Index(
                            Box::new(LValue::Proj(
                                Box::new(LValue::Index(
                                    Box::new(LValue::Var(self.q_in[node])),
                                    PExpr::Const(Rat::zero()),
                                )),
                                0,
                            )),
                            PExpr::Const(Rat::int(*f as i64)),
                        ),
                        v,
                    ));
                }
                CStmt::Assert(e) => {
                    let v = self.lower_expr(e, node, &mut cur)?;
                    cur.push(PStmt::If(
                        v,
                        vec![],
                        vec![
                            PStmt::Assign(LValue::Var(self.err[node]), PExpr::Const(Rat::one())),
                            PStmt::Assign(LValue::Var(self.halt), PExpr::Const(Rat::one())),
                        ],
                    ));
                }
                CStmt::Observe(e) => {
                    let v = self.lower_expr(e, node, &mut cur)?;
                    cur.push(PStmt::Observe(v));
                }
                CStmt::If(c, t, els) => {
                    let cond = self.lower_expr(c, node, &mut cur)?;
                    let tb = self.lower_block(t, node)?;
                    let eb = self.lower_block(els, node)?;
                    cur.push(PStmt::If(cond, tb, eb));
                }
                CStmt::While(c, body) => {
                    // t = cond (guarded); while t { body; t = 0;
                    // if halt == 0 { t = cond } }
                    let t = self.tmp("while");
                    let mut cond_stmts = Vec::new();
                    let cond = self.lower_expr(c, node, &mut cond_stmts)?;
                    let mut eval_cond = cond_stmts.clone();
                    eval_cond.push(PStmt::Assign(
                        LValue::Var(t),
                        PExpr::Bin(
                            BinOp::Ne,
                            Box::new(cond),
                            Box::new(PExpr::Const(Rat::zero())),
                        ),
                    ));
                    cur.extend(eval_cond.clone());
                    let mut loop_body = self.lower_block(body, node)?;
                    loop_body.push(PStmt::Assign(LValue::Var(t), PExpr::Const(Rat::zero())));
                    loop_body.push(self.guarded(eval_cond));
                    cur.push(PStmt::While(PExpr::Var(t), loop_body));
                }
            }
            out.push(self.guarded(cur));
        }
        Ok(out)
    }

    /// The inlined `(Run, i)` body: reset locals and halt, then the handler.
    fn run_node(&mut self, node: usize) -> Result<Vec<PStmt>, TranslateError> {
        let prog = std::sync::Arc::clone(&self.model.programs[node]);
        let mut out = vec![PStmt::Assign(
            LValue::Var(self.halt),
            PExpr::Const(Rat::zero()),
        )];
        for slot in 0..prog.local_names.len() {
            out.push(PStmt::Assign(
                LValue::Var(self.local_base[node] + slot),
                PExpr::Const(Rat::zero()),
            ));
        }
        out.extend(self.lower_block(&prog.body, node)?);
        Ok(out)
    }

    /// The inlined `(Fwd, i)` body (rule G-Fwd, Figure 10's `step()`).
    fn fwd_node(&mut self, node: usize) -> Result<Vec<PStmt>, TranslateError> {
        let cap = PExpr::Const(Rat::int(self.model.queue_capacity as i64));
        let entry = self.tmp("deliver");
        let mut out = vec![PStmt::PopFront {
            dest: Some(LValue::Var(entry)),
            queue: LValue::Var(self.q_out[node]),
        }];
        // Dispatch on the departure port over this node's links.
        let links: Vec<((usize, u32), (usize, u32))> = self
            .model
            .links()
            .filter(|((from, _), _)| *from == node)
            .collect();
        // No link on the popped port is a hard error.
        let mut dispatch: Vec<PStmt> = vec![PStmt::Trap(format!(
            "node {node} forwarded a packet to a port with no link"
        ))];
        for ((_, port), (dst, dst_port)) in links {
            let deliver = vec![PStmt::If(
                PExpr::Bin(
                    BinOp::Lt,
                    Box::new(PExpr::Len(Box::new(PExpr::Var(self.q_in[dst])))),
                    Box::new(cap.clone()),
                ),
                vec![PStmt::PushBack(
                    LValue::Var(self.q_in[dst]),
                    PExpr::Tuple(vec![
                        PExpr::Proj(Box::new(PExpr::Var(entry)), 0),
                        PExpr::Const(Rat::int(dst_port as i64)),
                    ]),
                )],
                vec![],
            )];
            dispatch = vec![PStmt::If(
                PExpr::Bin(
                    BinOp::Eq,
                    Box::new(PExpr::Proj(Box::new(PExpr::Var(entry)), 1)),
                    Box::new(PExpr::Const(Rat::int(port as i64))),
                ),
                deliver,
                dispatch,
            )];
        }
        out.extend(dispatch);
        Ok(out)
    }

    /// `terminated()`: some node in ⊥, or every queue empty.
    fn terminated_expr(&self) -> PExpr {
        let mut any_err = PExpr::Const(Rat::zero());
        let mut all_empty = PExpr::Const(Rat::one());
        for i in 0..self.model.num_nodes() {
            any_err = PExpr::Bin(
                BinOp::Or,
                Box::new(any_err),
                Box::new(PExpr::Var(self.err[i])),
            );
            for q in [self.q_in[i], self.q_out[i]] {
                all_empty = PExpr::Bin(
                    BinOp::And,
                    Box::new(all_empty),
                    Box::new(PExpr::Bin(
                        BinOp::Eq,
                        Box::new(PExpr::Len(Box::new(PExpr::Var(q)))),
                        Box::new(PExpr::Const(Rat::zero())),
                    )),
                );
            }
        }
        PExpr::Bin(BinOp::Or, Box::new(any_err), Box::new(all_empty))
    }
}

/// Translates `model` (with all parameters bound) and one query into an
/// executable PSI-core program. The program's result is the tuple
/// `(any_error, query_value)`.
///
/// # Errors
///
/// Fails on unbound parameters or a weighted scheduler (unsupported by this
/// backend).
pub fn translate(model: &Model, query: &CompiledQuery) -> Result<PProgram, TranslateError> {
    let k = model.num_nodes();
    let mut tx = Tx {
        model,
        names: Vec::new(),
        init: Vec::new(),
        state_base: vec![0; k],
        err: vec![0; k],
        q_in: vec![0; k],
        q_out: vec![0; k],
        local_base: vec![0; k],
        halt: 0,
        tmp_counter: 0,
    };

    // Globals: per-node state (initializers translated, may draw), error
    // flags, queues (initial packets), handler locals. Random state
    // initializers become statements at the top of the body (the paper's
    // constructor step), keeping state slots contiguous.
    let mut state_init_stmts: Vec<PStmt> = Vec::new();
    for i in 0..k {
        let prog = std::sync::Arc::clone(&model.programs[i]);
        tx.state_base[i] = tx.names.len();
        for name in &prog.state_names {
            tx.alloc(
                format!("{}_{}", model.node_names[i], name),
                PExpr::Const(Rat::zero()),
            );
        }
        for slot in 0..prog.state_names.len() {
            let mut pre = Vec::new();
            let e = tx.lower_expr(&prog.state_init[slot], i, &mut pre)?;
            if pre.is_empty() {
                tx.init[tx.state_base[i] + slot] = e;
            } else {
                state_init_stmts.extend(pre);
                state_init_stmts.push(PStmt::Assign(LValue::Var(tx.state_base[i] + slot), e));
            }
        }
        tx.err[i] = tx.alloc(
            format!("err_{}", model.node_names[i]),
            PExpr::Const(Rat::zero()),
        );
        // Input queue with its initial packets.
        let mut entries = Vec::new();
        for spec in &model.init_packets {
            if spec.node != i {
                continue;
            }
            let mut fields = vec![PExpr::Const(Rat::zero()); model.num_fields()];
            for (slot, e) in &spec.fields {
                let mut pre = Vec::new();
                fields[*slot] = tx.lower_expr(e, i, &mut pre)?;
                debug_assert!(pre.is_empty(), "init fields are deterministic");
            }
            entries.push(PExpr::Tuple(vec![
                PExpr::ArrayLit(fields),
                PExpr::Const(Rat::int(spec.port as i64)),
            ]));
        }
        tx.q_in[i] = tx.alloc(
            format!("Q_in_{}", model.node_names[i]),
            PExpr::ArrayLit(entries),
        );
        tx.q_out[i] = tx.alloc(
            format!("Q_out_{}", model.node_names[i]),
            PExpr::ArrayLit(vec![]),
        );
        tx.local_base[i] = tx.names.len();
        for name in &prog.local_names {
            tx.alloc(
                format!("{}_local_{}", model.node_names[i], name),
                PExpr::Const(Rat::zero()),
            );
        }
    }
    tx.halt = tx.alloc("halt".into(), PExpr::Const(Rat::zero()));
    let terminated = tx.alloc("terminated".into(), PExpr::Const(Rat::zero()));
    let steps = tx.alloc("steps".into(), PExpr::Const(Rat::zero()));
    let acts = tx.alloc("actions".into(), PExpr::ArrayLit(vec![]));
    let choice = tx.alloc("choice".into(), PExpr::Const(Rat::zero()));

    // step(): build actions, draw, dispatch.
    let mut step_body: Vec<PStmt> = vec![PStmt::Assign(LValue::Var(acts), PExpr::ArrayLit(vec![]))];
    for i in 0..k {
        for (kind, q) in [(0i64, tx.q_in[i]), (1, tx.q_out[i])] {
            step_body.push(PStmt::If(
                PExpr::Bin(
                    BinOp::Gt,
                    Box::new(PExpr::Len(Box::new(PExpr::Var(q)))),
                    Box::new(PExpr::Const(Rat::zero())),
                ),
                vec![PStmt::PushBack(
                    LValue::Var(acts),
                    PExpr::Tuple(vec![
                        PExpr::Const(Rat::int(kind)),
                        PExpr::Const(Rat::int(i as i64)),
                    ]),
                )],
                vec![],
            ));
        }
    }
    // Scheduler choice (Figure 6 for uniform).
    let pick = match model.scheduler {
        SchedKind::Uniform => PExpr::Index(
            Box::new(PExpr::Var(acts)),
            Box::new(PExpr::UniformInt(
                Box::new(PExpr::Const(Rat::zero())),
                Box::new(PExpr::Bin(
                    BinOp::Sub,
                    Box::new(PExpr::Len(Box::new(PExpr::Var(acts)))),
                    Box::new(PExpr::Const(Rat::one())),
                )),
            )),
        ),
        SchedKind::Deterministic => PExpr::Index(
            Box::new(PExpr::Var(acts)),
            Box::new(PExpr::Const(Rat::zero())),
        ),
        SchedKind::Weighted(_) | SchedKind::Rotor => {
            return Err(TranslateError::Unsupported(
                "weighted/rotor schedulers are not supported by the PSI backend".into(),
            ))
        }
    };
    // Canonical enabled order is Run before Fwd per node id — but the
    // direct engine orders all Runs first. Rebuild in that order for the
    // deterministic scheduler's sake: two passes.
    if matches!(model.scheduler, SchedKind::Deterministic) {
        step_body.clear();
        step_body.push(PStmt::Assign(LValue::Var(acts), PExpr::ArrayLit(vec![])));
        for (kind, qs) in [(0i64, &tx.q_in), (1, &tx.q_out)] {
            for (i, q) in qs.iter().enumerate() {
                step_body.push(PStmt::If(
                    PExpr::Bin(
                        BinOp::Gt,
                        Box::new(PExpr::Len(Box::new(PExpr::Var(*q)))),
                        Box::new(PExpr::Const(Rat::zero())),
                    ),
                    vec![PStmt::PushBack(
                        LValue::Var(acts),
                        PExpr::Tuple(vec![
                            PExpr::Const(Rat::int(kind)),
                            PExpr::Const(Rat::int(i as i64)),
                        ]),
                    )],
                    vec![],
                ));
            }
        }
    }
    step_body.push(PStmt::Assign(LValue::Var(choice), pick));

    // Dispatch: if kind == 0 run, else deliver; inner dispatch on node id.
    let kind_expr = PExpr::Proj(Box::new(PExpr::Var(choice)), 0);
    let node_expr = PExpr::Proj(Box::new(PExpr::Var(choice)), 1);
    let mut run_dispatch: Vec<PStmt> = vec![];
    let mut fwd_dispatch: Vec<PStmt> = vec![];
    for i in (0..k).rev() {
        let run_body = tx.run_node(i)?;
        let fwd_body = tx.fwd_node(i)?;
        let node_eq = PExpr::Bin(
            BinOp::Eq,
            Box::new(node_expr.clone()),
            Box::new(PExpr::Const(Rat::int(i as i64))),
        );
        run_dispatch = vec![PStmt::If(node_eq.clone(), run_body, run_dispatch)];
        fwd_dispatch = vec![PStmt::If(node_eq, fwd_body, fwd_dispatch)];
    }
    step_body.push(PStmt::If(
        PExpr::Bin(
            BinOp::Eq,
            Box::new(kind_expr),
            Box::new(PExpr::Const(Rat::zero())),
        ),
        run_dispatch,
        fwd_dispatch,
    ));
    step_body.push(PStmt::Assign(LValue::Var(terminated), tx.terminated_expr()));
    step_body.push(PStmt::Assign(
        LValue::Var(steps),
        PExpr::Bin(
            BinOp::Add,
            Box::new(PExpr::Var(steps)),
            Box::new(PExpr::Const(Rat::one())),
        ),
    ));

    // main(): random state initializers (the constructor step), then
    // initialize terminated, loop, then assert(terminated()).
    let max_steps = model.num_steps.unwrap_or(DEFAULT_NUM_STEPS);
    let mut body = state_init_stmts;
    body.push(PStmt::Assign(LValue::Var(terminated), tx.terminated_expr()));
    body.push(PStmt::While(
        PExpr::Bin(
            BinOp::And,
            Box::new(PExpr::Not(Box::new(PExpr::Var(terminated)))),
            Box::new(PExpr::Bin(
                BinOp::Lt,
                Box::new(PExpr::Var(steps)),
                Box::new(PExpr::Const(Rat::int(max_steps as i64))),
            )),
        ),
        step_body,
    ));
    // assert(terminated()) — Figure 10 line 24; a hard trap here.
    body.push(PStmt::If(
        PExpr::Var(terminated),
        vec![],
        vec![PStmt::Trap(
            "assert(terminated()) failed: increase num_steps".into(),
        )],
    ));

    // Result: (any_error, query value).
    let mut any_err = PExpr::Const(Rat::zero());
    for i in 0..k {
        any_err = PExpr::Bin(
            BinOp::Or,
            Box::new(any_err),
            Box::new(PExpr::Var(tx.err[i])),
        );
    }
    let qv = translate_query_expr(&tx, &query.expr)?;
    let result = PExpr::Tuple(vec![any_err, qv]);

    Ok(PProgram {
        global_names: tx.names,
        init: tx.init,
        body,
        result,
    })
}

fn translate_query_expr(tx: &Tx<'_>, e: &bayonet_net::QExpr) -> Result<PExpr, TranslateError> {
    use bayonet_net::QExpr as Q;
    Ok(match e {
        Q::Const(r) => PExpr::Const(r.clone()),
        Q::Param(p) => tx.param_const(*p)?,
        Q::At { node, slot } => PExpr::Var(tx.state_base[*node] + slot),
        Q::Binary(op, a, b) => PExpr::Bin(
            *op,
            Box::new(translate_query_expr(tx, a)?),
            Box::new(translate_query_expr(tx, b)?),
        ),
        Q::Not(inner) => PExpr::Not(Box::new(translate_query_expr(tx, inner)?)),
        Q::Neg(inner) => PExpr::Neg(Box::new(translate_query_expr(tx, inner)?)),
    })
}

/// Runs exact inference on a translated network program and interprets the
/// `(any_error, value)` result pair under the query's semantics:
/// probabilities range over all terminals, expectations over non-error
/// terminals.
///
/// # Errors
///
/// Propagates translation-free inference errors.
pub fn infer_query(program: &PProgram, kind: QueryKind, step_limit: u64) -> Result<Rat, PsiError> {
    let posterior = infer_exact(program, step_limit)?;
    let z = posterior.z();
    if z.is_zero() {
        return Err(PsiError::AllMassObservedOut);
    }
    let project = |v: &PValue| -> (bool, Rat) {
        match v {
            PValue::Tuple(items) => {
                let err = items[0].as_rat().expect("error flag").is_true();
                let val = items[1].as_rat().expect("scalar query value").clone();
                (err, val)
            }
            _ => unreachable!("network result is a pair"),
        }
    };
    Ok(match kind {
        QueryKind::Probability => {
            let num = posterior
                .support
                .iter()
                .filter(|(v, _)| project(v).1.is_true())
                .fold(Rat::zero(), |acc, (_, m)| acc + m);
            num / z
        }
        QueryKind::Expectation => {
            let mut num = Rat::zero();
            let mut den = Rat::zero();
            for (v, m) in &posterior.support {
                let (err, val) = project(v);
                if !err {
                    num += &(&val * m);
                    den += m;
                }
            }
            if den.is_zero() {
                return Err(PsiError::AllMassObservedOut);
            }
            num / den
        }
    })
}
