//! Execution of node handlers — the local small-step semantics of paper
//! Figure 5, run to completion per `(Run, i)` action.
//!
//! The interpreter is written once and parameterized by a [`ChoiceDriver`]
//! that resolves the three sources of nondeterminism:
//!
//! * `flip(p)` draws,
//! * `uniformInt(lo, hi)` draws, and
//! * the *sign* of a symbolic linear expression when a comparison or
//!   truthiness test cannot be decided concretely.
//!
//! The sampling engine implements the driver with an RNG; the exact engine
//! implements it with a replaying enumerator that explores every outcome and
//! accumulates probabilities and symbolic guards.

use bayonet_num::{Rat, Sign};
use bayonet_symbolic::LinExpr;

use crate::compile::{CExpr, CStmt, CompiledProgram, Model, QExpr};
use crate::config::NodeConfig;
use crate::error::SemanticsError;
use crate::queue::Packet;
use crate::value::Val;
use bayonet_lang::BinOp;

/// Resolves probabilistic draws and symbolic sign decisions during handler
/// execution.
pub trait ChoiceDriver {
    /// Draws from Bernoulli(`p`). `p` is guaranteed to be in `(0, 1)` —
    /// degenerate flips are resolved by the interpreter without consulting
    /// the driver.
    fn flip(&mut self, p: &Rat) -> Result<bool, SemanticsError>;

    /// Draws a uniform integer in `[lo, hi]` with `lo < hi` (degenerate
    /// single-point ranges are resolved by the interpreter).
    fn uniform_int(&mut self, lo: i64, hi: i64) -> Result<i64, SemanticsError>;

    /// Decides the sign of a non-constant linear expression over symbolic
    /// parameters.
    fn decide_sign(&mut self, expr: &LinExpr) -> Result<Sign, SemanticsError>;
}

/// A driver for deterministic contexts (init packets, query evaluation in
/// sampling mode): any draw or sign decision is an error.
#[derive(Debug, Default)]
pub struct NoChoiceDriver;

impl ChoiceDriver for NoChoiceDriver {
    fn flip(&mut self, _: &Rat) -> Result<bool, SemanticsError> {
        Err(SemanticsError::RandomnessNeedsConcreteArgs)
    }

    fn uniform_int(&mut self, _: i64, _: i64) -> Result<i64, SemanticsError> {
        Err(SemanticsError::RandomnessNeedsConcreteArgs)
    }

    fn decide_sign(&mut self, e: &LinExpr) -> Result<Sign, SemanticsError> {
        Err(SemanticsError::SymbolicValueInConcreteContext(format!(
            "{e:?}"
        )))
    }
}

/// How a handler run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandlerOutcome {
    /// The body ran to completion.
    Completed,
    /// An `assert` failed: the node enters the error state ⊥ and the whole
    /// network configuration becomes terminal (error).
    AssertFailed,
    /// An `observe` failed: the trace is discarded and its mass removed
    /// (Bayesian conditioning).
    ObserveFailed,
}

/// Executes one complete handler run for `node` (the body of its program,
/// applied to the packet at the head of its input queue), mutating `cfg`.
///
/// # Errors
///
/// Semantic errors (empty-queue access, nonlinear arithmetic, diverging
/// loops, ...) are hard errors, distinct from probabilistic
/// `assert`/`observe` failures which are reported in the outcome.
pub fn run_handler(
    model: &Model,
    node: usize,
    cfg: &mut NodeConfig,
    driver: &mut dyn ChoiceDriver,
) -> Result<HandlerOutcome, SemanticsError> {
    let prog = &model.programs[node];
    let mut cx = ExecCx {
        model,
        node,
        locals: vec![Val::zero(); prog.local_names.len()],
        steps: 0,
    };
    cx.exec_block(&prog.body, cfg, driver)
}

/// Evaluates a program's state initializers (run once at network
/// construction; may draw randomness, e.g. `state bad_hash(flip(1/10))`).
pub fn eval_state_init(
    model: &Model,
    prog: &CompiledProgram,
    driver: &mut dyn ChoiceDriver,
) -> Result<Vec<Val>, SemanticsError> {
    let mut cx = ExecCx {
        model,
        node: usize::MAX,
        locals: Vec::new(),
        steps: 0,
    };
    // State initializers cannot reference pkt/pt/locals/state (enforced at
    // compile time), so an empty NodeConfig suffices.
    let dummy = NodeConfig::empty(model.queue_capacity);
    prog.state_init
        .iter()
        .map(|e| cx.eval(e, &dummy, driver))
        .collect()
}

/// Builds the packet described by an [`InitPacketSpec`](crate::compile::InitPacketSpec).
pub fn build_init_packet(
    model: &Model,
    fields: &[(usize, CExpr)],
) -> Result<Packet, SemanticsError> {
    let mut pkt = Packet::fresh(model.num_fields());
    let mut cx = ExecCx {
        model,
        node: usize::MAX,
        locals: Vec::new(),
        steps: 0,
    };
    let dummy = NodeConfig::empty(model.queue_capacity);
    let mut driver = NoChoiceDriver;
    for (slot, e) in fields {
        let v = cx.eval(e, &dummy, &mut driver)?;
        pkt.set_field(*slot, v);
    }
    Ok(pkt)
}

struct ExecCx<'a> {
    model: &'a Model,
    node: usize,
    locals: Vec<Val>,
    steps: u64,
}

impl ExecCx<'_> {
    fn tick(&mut self) -> Result<(), SemanticsError> {
        self.steps += 1;
        if self.steps > self.model.local_step_limit {
            Err(SemanticsError::LoopLimitExceeded {
                node: self.node,
                limit: self.model.local_step_limit,
            })
        } else {
            Ok(())
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[CStmt],
        cfg: &mut NodeConfig,
        driver: &mut dyn ChoiceDriver,
    ) -> Result<HandlerOutcome, SemanticsError> {
        for s in stmts {
            self.tick()?;
            match s {
                CStmt::Skip => {}
                CStmt::New => {
                    // L-New: prepend a fresh all-zero packet with port 0;
                    // a full queue drops it silently.
                    let pkt = Packet::fresh(self.model.num_fields());
                    cfg.q_in.push_front((pkt, 0));
                }
                CStmt::Drop => {
                    // L-Drop requires a head packet.
                    cfg.q_in
                        .pop_front()
                        .ok_or(SemanticsError::EmptyQueue { node: self.node })?;
                }
                CStmt::Dup => {
                    let head = cfg
                        .q_in
                        .head()
                        .cloned()
                        .ok_or(SemanticsError::EmptyQueue { node: self.node })?;
                    cfg.q_in.push_front(head);
                }
                CStmt::Fwd(e) => {
                    let v = self.eval(e, cfg, driver)?;
                    let port = val_to_port(&v)?;
                    let (pkt, _arrival) = cfg
                        .q_in
                        .pop_front()
                        .ok_or(SemanticsError::EmptyQueue { node: self.node })?;
                    // L-Fwd: append to the output queue, re-tagged with the
                    // departure port; overflow drops.
                    cfg.q_out.push_back((pkt, port));
                }
                CStmt::AssignState(slot, e) => {
                    let v = self.eval(e, cfg, driver)?;
                    cfg.state[*slot] = v;
                }
                CStmt::AssignLocal(slot, e) => {
                    let v = self.eval(e, cfg, driver)?;
                    self.locals[*slot] = v;
                }
                CStmt::FieldAssign(slot, e) => {
                    let v = self.eval(e, cfg, driver)?;
                    let (pkt, _) = cfg
                        .q_in
                        .head_mut()
                        .ok_or(SemanticsError::EmptyQueue { node: self.node })?;
                    pkt.set_field(*slot, v);
                }
                CStmt::Assert(e) => {
                    let v = self.eval(e, cfg, driver)?;
                    if !self.truth(&v, driver)? {
                        return Ok(HandlerOutcome::AssertFailed);
                    }
                }
                CStmt::Observe(e) => {
                    let v = self.eval(e, cfg, driver)?;
                    if !self.truth(&v, driver)? {
                        return Ok(HandlerOutcome::ObserveFailed);
                    }
                }
                CStmt::If(c, then_body, else_body) => {
                    let v = self.eval(c, cfg, driver)?;
                    let branch = if self.truth(&v, driver)? {
                        then_body
                    } else {
                        else_body
                    };
                    match self.exec_block(branch, cfg, driver)? {
                        HandlerOutcome::Completed => {}
                        early => return Ok(early),
                    }
                }
                CStmt::While(c, body) => loop {
                    self.tick()?;
                    let v = self.eval(c, cfg, driver)?;
                    if !self.truth(&v, driver)? {
                        break;
                    }
                    match self.exec_block(body, cfg, driver)? {
                        HandlerOutcome::Completed => {}
                        early => return Ok(early),
                    }
                },
            }
        }
        Ok(HandlerOutcome::Completed)
    }

    fn eval(
        &mut self,
        e: &CExpr,
        cfg: &NodeConfig,
        driver: &mut dyn ChoiceDriver,
    ) -> Result<Val, SemanticsError> {
        Ok(match e {
            CExpr::Const(r) => Val::Rat(r.clone()),
            CExpr::Param(p) => match self.model.binding(*p) {
                Some(v) => Val::Rat(v.clone()),
                None => Val::Sym(LinExpr::param(*p)),
            },
            CExpr::State(slot) => cfg.state[*slot].clone(),
            CExpr::Local(slot) => self.locals[*slot].clone(),
            CExpr::Field(slot) => cfg
                .q_in
                .head()
                .ok_or(SemanticsError::EmptyQueue { node: self.node })?
                .0
                .field(*slot)
                .clone(),
            CExpr::Port => {
                let (_, pt) = cfg
                    .q_in
                    .head()
                    .ok_or(SemanticsError::EmptyQueue { node: self.node })?;
                Val::int(*pt as i64)
            }
            CExpr::Flip(pe) => {
                let pv = self.eval(pe, cfg, driver)?;
                let p = pv
                    .as_rat()
                    .ok_or(SemanticsError::RandomnessNeedsConcreteArgs)?;
                if p.is_negative() || *p > Rat::one() {
                    return Err(SemanticsError::FlipProbabilityOutOfRange(p.to_string()));
                }
                if p.is_zero() {
                    Val::from_bool(false)
                } else if p.is_one() {
                    Val::from_bool(true)
                } else {
                    Val::from_bool(driver.flip(p)?)
                }
            }
            CExpr::UniformInt(lo_e, hi_e) => {
                let lo_v = self.eval(lo_e, cfg, driver)?;
                let hi_v = self.eval(hi_e, cfg, driver)?;
                let (lo, hi) = (val_to_int(&lo_v)?, val_to_int(&hi_v)?);
                if lo > hi {
                    return Err(SemanticsError::UniformBoundsInvalid(format!(
                        "[{lo}, {hi}]"
                    )));
                }
                if lo == hi {
                    Val::int(lo)
                } else {
                    Val::int(driver.uniform_int(lo, hi)?)
                }
            }
            CExpr::Binary(op, a, b) => {
                // `and`/`or` short-circuit (equivalent distribution; fewer
                // spurious branch points for the enumerator).
                match op {
                    BinOp::And => {
                        let av = self.eval(a, cfg, driver)?;
                        if !self.truth(&av, driver)? {
                            return Ok(Val::from_bool(false));
                        }
                        let bv = self.eval(b, cfg, driver)?;
                        return Ok(Val::from_bool(self.truth(&bv, driver)?));
                    }
                    BinOp::Or => {
                        let av = self.eval(a, cfg, driver)?;
                        if self.truth(&av, driver)? {
                            return Ok(Val::from_bool(true));
                        }
                        let bv = self.eval(b, cfg, driver)?;
                        return Ok(Val::from_bool(self.truth(&bv, driver)?));
                    }
                    _ => {}
                }
                let av = self.eval(a, cfg, driver)?;
                let bv = self.eval(b, cfg, driver)?;
                apply_binop(*op, &av, &bv, driver)?
            }
            CExpr::Not(inner) => {
                let v = self.eval(inner, cfg, driver)?;
                Val::from_bool(!self.truth(&v, driver)?)
            }
            CExpr::Neg(inner) => self.eval(inner, cfg, driver)?.neg(),
        })
    }

    fn truth(&mut self, v: &Val, driver: &mut dyn ChoiceDriver) -> Result<bool, SemanticsError> {
        truth_of(v, driver)
    }
}

/// Truthiness of a value (nonzero = true), consulting the driver for
/// symbolic values.
pub fn truth_of(v: &Val, driver: &mut dyn ChoiceDriver) -> Result<bool, SemanticsError> {
    match v {
        Val::Rat(r) => Ok(r.is_true()),
        Val::Sym(e) => Ok(driver.decide_sign(e)? != Sign::Zero),
    }
}

/// Applies a (non-short-circuit) binary operation, consulting the driver for
/// symbolic comparisons.
pub fn apply_binop(
    op: BinOp,
    a: &Val,
    b: &Val,
    driver: &mut dyn ChoiceDriver,
) -> Result<Val, SemanticsError> {
    Ok(match op {
        BinOp::Add => a.add(b),
        BinOp::Sub => a.sub(b),
        BinOp::Mul => a.mul(b)?,
        BinOp::Div => a.div(b)?,
        BinOp::And => Val::from_bool(truth_of(a, driver)? && truth_of(b, driver)?),
        BinOp::Or => Val::from_bool(truth_of(a, driver)? || truth_of(b, driver)?),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let sign = compare(a, b, driver)?;
            let holds = match op {
                BinOp::Eq => sign == Sign::Zero,
                BinOp::Ne => sign != Sign::Zero,
                BinOp::Lt => sign == Sign::Minus,
                BinOp::Le => sign != Sign::Plus,
                BinOp::Gt => sign == Sign::Plus,
                BinOp::Ge => sign != Sign::Minus,
                _ => unreachable!(),
            };
            Val::from_bool(holds)
        }
    })
}

/// The sign of `a - b`, concrete when possible, via the driver otherwise.
pub fn compare(a: &Val, b: &Val, driver: &mut dyn ChoiceDriver) -> Result<Sign, SemanticsError> {
    let diff = a.sub(b);
    match diff {
        Val::Rat(r) => Ok(r.sign()),
        Val::Sym(e) => driver.decide_sign(&e),
    }
}

/// Evaluates a compiled query expression on a terminal configuration's node
/// states.
pub fn eval_query_expr(
    model: &Model,
    expr: &QExpr,
    states: &dyn Fn(usize, usize) -> Val,
    driver: &mut dyn ChoiceDriver,
) -> Result<Val, SemanticsError> {
    Ok(match expr {
        QExpr::Const(r) => Val::Rat(r.clone()),
        QExpr::Param(p) => match model.binding(*p) {
            Some(v) => Val::Rat(v.clone()),
            None => Val::Sym(LinExpr::param(*p)),
        },
        QExpr::At { node, slot } => states(*node, *slot),
        QExpr::Binary(op, a, b) => {
            let av = eval_query_expr(model, a, states, driver)?;
            let bv = eval_query_expr(model, b, states, driver)?;
            apply_binop(*op, &av, &bv, driver)?
        }
        QExpr::Not(inner) => {
            let v = eval_query_expr(model, inner, states, driver)?;
            Val::from_bool(!truth_of(&v, driver)?)
        }
        QExpr::Neg(inner) => eval_query_expr(model, inner, states, driver)?.neg(),
    })
}

fn val_to_int(v: &Val) -> Result<i64, SemanticsError> {
    v.as_rat()
        .and_then(|r| r.to_i64())
        .ok_or_else(|| SemanticsError::UniformBoundsInvalid(format!("{v}")))
}

fn val_to_port(v: &Val) -> Result<u32, SemanticsError> {
    let r = v
        .as_rat()
        .ok_or_else(|| SemanticsError::PortNotInteger(format!("{v}")))?;
    r.to_i64()
        .and_then(|i| u32::try_from(i).ok())
        .filter(|&p| p > 0)
        .ok_or_else(|| SemanticsError::PortNotInteger(r.to_string()))
}
