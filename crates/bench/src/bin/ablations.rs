//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Configuration merging** (the Markov-chain view) on/off — why the
//!    exact engine scales.
//! 2. **Fourier–Motzkin pruning** of symbolic branches on/off.
//! 3. **SMC particle count** sweep — accuracy vs time (the WebPPL knob).
//! 4. **Scheduler choice** — uniform vs deterministic vs weighted on the
//!    congestion example (§5.1's discussion).
//! 5. **Backend** — direct exact engine vs translated mini-PSI trace
//!    enumeration.
//!
//! Run with: `cargo run --release -p bayonet-bench --bin ablations`

use std::time::Instant;

use bayonet::{scenarios, ApproxOptions, ExactOptions, Rat, Sched, WeightedScheduler};
use bayonet_bench::fmt_duration;

fn main() -> Result<(), bayonet::Error> {
    merging_ablation()?;
    fm_pruning_ablation()?;
    particle_sweep()?;
    scheduler_comparison()?;
    backend_comparison()?;
    Ok(())
}

fn merging_ablation() -> Result<(), bayonet::Error> {
    println!("— Ablation 1: configuration merging (gossip K4, uniform) —");
    let network = scenarios::gossip(4, Sched::Uniform)?;
    for merge in [true, false] {
        let opts = ExactOptions {
            merge_configs: merge,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = network.exact_with(&opts)?;
        println!(
            "  merge={merge:<5}  E = {:.4}  time = {:>8}  peak configs = {:>8}  merge hits = {}",
            report.results[0].to_f64(),
            fmt_duration(t0.elapsed()),
            report.stats.peak_configs,
            report.stats.merge_hits
        );
    }
    println!();
    Ok(())
}

fn fm_pruning_ablation() -> Result<(), bayonet::Error> {
    println!("— Ablation 2: Fourier–Motzkin pruning (symbolic congestion, §2.3) —");
    let network = scenarios::congestion_example_symbolic(Sched::Uniform)?;
    for fm in [true, false] {
        let opts = ExactOptions {
            fm_pruning: fm,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = network.exact_with(&opts)?;
        println!(
            "  fm_pruning={fm:<5}  cells = {}  time = {:>8}  expansions = {}",
            report.results[0].cells.len(),
            fmt_duration(t0.elapsed()),
            report.stats.expansions
        );
    }
    println!();
    Ok(())
}

fn particle_sweep() -> Result<(), bayonet::Error> {
    println!("— Ablation 3: SMC particle sweep (congestion §2, uniform; exact = 0.4487) —");
    let network = scenarios::congestion_example(Sched::Uniform)?;
    let exact = network.exact()?.results[0].to_f64();
    for particles in [100usize, 300, 1000, 3000, 10000] {
        let t0 = Instant::now();
        let est = network.smc(
            0,
            &ApproxOptions {
                particles,
                seed: 7,
                ..Default::default()
            },
        )?;
        println!(
            "  particles = {particles:>6}  estimate = {:.4}  |err| = {:.4}  time = {:>8}",
            est.value,
            (est.value - exact).abs(),
            fmt_duration(t0.elapsed())
        );
    }
    println!();
    Ok(())
}

fn scheduler_comparison() -> Result<(), bayonet::Error> {
    println!("— Ablation 4: scheduler choice (congestion §2) —");
    let uni = scenarios::congestion_example(Sched::Uniform)?;
    let det = scenarios::congestion_example(Sched::Deterministic)?;
    println!(
        "  uniform        P(congestion) = {:.4}",
        uni.exact()?.results[0].to_f64()
    );
    println!(
        "  deterministic  P(congestion) = {:.4}",
        det.exact()?.results[0].to_f64()
    );
    // A weighted scheduler modelling a switch twice as fast as the hosts.
    let mut weighted = scenarios::congestion_example(Sched::Uniform)?;
    let weights = vec![1, 1, 2, 2, 2]; // H0, H1 slow; S0, S1, S2 fast
    weighted.set_scheduler(Box::new(WeightedScheduler::new(weights)));
    println!(
        "  weighted(2x switches) P(congestion) = {:.4}",
        weighted.exact()?.results[0].to_f64()
    );
    println!();
    Ok(())
}

fn backend_comparison() -> Result<(), bayonet::Error> {
    println!("— Ablation 5: direct engine vs translated mini-PSI backend —");
    let network = scenarios::reliability_chain(1, &Rat::ratio(1, 1000), Sched::Uniform)?;
    let t0 = Instant::now();
    let direct = network.exact()?.results[0].rat().clone();
    let t_direct = t0.elapsed();
    let t0 = Instant::now();
    let via_psi = network.infer_via_psi(0)?;
    let t_psi = t0.elapsed();
    println!(
        "  direct (merged) = {direct}  in {}",
        fmt_duration(t_direct)
    );
    println!(
        "  mini-PSI (trace enumeration) = {via_psi}  in {}",
        fmt_duration(t_psi)
    );
    println!(
        "  agreement: {}",
        if direct == via_psi {
            "EXACT"
        } else {
            "MISMATCH"
        }
    );
    Ok(())
}
