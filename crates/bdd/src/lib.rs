//! Hash-consed algebraic decision diagrams (ADDs) for exact inference.
//!
//! The enumeration engine explores the global Markov chain one configuration
//! at a time; this crate provides the knowledge-compilation substrate for the
//! alternative `bdd` backend, which represents a whole weighted *set* of
//! global configurations as one decision diagram and transforms the set per
//! scheduler action. Independence between nodes' local states then shows up
//! as structure sharing: a frontier of `c^k` product configurations costs
//! `O(c·k)` diagram nodes instead of `c^k` explicit states.
//!
//! # Representation
//!
//! A diagram is a **quasi-reduced, hash-consed binary trie with exact
//! rational weights on edges** (a multiplicative edge-valued ADD, the SLDD×
//! of the knowledge-compilation literature):
//!
//! * Variables are bit positions. Variable indices are grouped into fixed
//!   [`BLOCK_BITS`]-wide *blocks*, one block per network node; block `b`
//!   encodes the interned id of node `b`'s local configuration.
//! * Within a block, an id is laid down in its **Elias-gamma** code
//!   (`id + 1` as `ℓ-1` zeros followed by the `ℓ` value bits, MSB first).
//!   Gamma codes are prefix-free, so ids interned at different times — with
//!   different code lengths — coexist in one diagram without re-encoding.
//! * A [`NodeRef`] is a pair of an interned [`bayonet_num::Rat`] **weight**
//!   and a structure node; the weight of a path is the product of the edge
//!   weights along it. There is a single terminal, so a terminal ref is
//!   just its weight. Keeping weights multiplicative on edges is what makes
//!   [`Store::scale`] O(1) — crucial when every inference step multiplies
//!   whole frontiers by scheduler and branch probabilities — and makes
//!   summing two structurally identical diagrams an O(1) weight addition.
//! * The structure is *quasi-reduced*: a node's two children may be equal
//!   (no skip levels), and the reduction rules are (a) a node with two
//!   [`NodeRef::ZERO`] children is itself `ZERO`, and (b) every node is
//!   **weight-normalized** — the first nonzero child carries weight one,
//!   with the common factor extracted to the incoming edge. A diagram is
//!   therefore the minimal trie of its nonzero paths with shared suffixes
//!   and a canonical weight placement, which makes it **canonical by
//!   construction**: two diagrams denote the same weight function iff they
//!   are the same [`NodeRef`].
//!
//! Canonicity is what turns configuration merging into a constant-time
//! side effect of hash-consing (the internal `mk` returns an existing node via
//! the unique table keyed on `(var, lo, hi)` — weighted children included),
//! and weighted model counting ([`Store::mass`]) is a single memoized
//! bottom-up sum.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

use bayonet_num::Rat;

/// A fast, non-cryptographic hasher (the FxHash multiply-rotate scheme).
///
/// The store's hot tables are keyed by small integer tuples ([`NodeRef`]s
/// and variable indices), looked up hundreds of thousands of times per
/// analysis; SipHash's DoS resistance buys nothing there and costs ~5× per
/// probe. Exposed so the engine can key its transform memos the same way.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// A [`HashMap`] keyed with [`FxHasher`] — the store's hot-table map type.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A [`HashSet`] keyed with [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Number of variable bit positions reserved per block (per network node).
///
/// A gamma code for id `< 2^31` needs at most `2·31 + 1 = 63` bits, so one
/// block always fits any id the store can intern.
pub const BLOCK_BITS: u32 = 64;

/// Structure index of the unique terminal.
const TERM: u32 = u32::MAX;

/// Interned weight index of zero.
const W_ZERO: u32 = 0;

/// Interned weight index of one.
const W_ONE: u32 = 1;

/// A reference to a diagram: an interned edge **weight** times a structure
/// node (or the unique terminal). Copyable and canonical — equal weight
/// functions have equal refs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeRef {
    /// Interned weight index (into the store's weight table).
    w: u32,
    /// Structure node index, or [`TERM`] for the terminal.
    n: u32,
}

impl NodeRef {
    /// The zero diagram: the constant-0 weight function (empty set).
    pub const ZERO: NodeRef = NodeRef { w: W_ZERO, n: TERM };

    /// Whether this reference is a terminal (pure weight) ref.
    pub fn is_terminal(self) -> bool {
        self.n == TERM
    }
}

/// A decision node. `lo` is the 0-branch, `hi` the 1-branch of bit `var`.
/// Children are weight-normalized: the first nonzero child has weight one.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// Snapshot of the store's hash-consing counters, surfaced as
/// `bayonet_bdd_*` metrics by the server and `--stats` by the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Decision nodes allocated in the arena (live unique nodes).
    pub nodes: u64,
    /// `mk` calls answered by the unique table (structural merges).
    pub unique_hits: u64,
    /// Operations (`add`/weight arithmetic/block rewrites) answered by a
    /// memo cache.
    pub apply_cache_hits: u64,
}

/// The hash-consed node store: arena, unique table, interned weights, and
/// operation memo caches. All diagrams live in one store and may share
/// structure freely.
pub struct Store {
    nodes: Vec<Node>,
    unique: FastMap<(u32, NodeRef, NodeRef), u32>,
    weights: Vec<Rat>,
    weight_ids: FastMap<Rat, u32>,
    memo_add: FastMap<(u32, u32, u32), NodeRef>,
    memo_mul: FastMap<(u32, u32), u32>,
    memo_div: FastMap<(u32, u32), u32>,
    memo_wadd: FastMap<(u32, u32), u32>,
    memo_mass: FastMap<u32, Rat>,
    memo_paths: FastMap<u32, u64>,
    unique_hits: u64,
    apply_hits: u64,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// Creates an empty store. The zero and one weights are pre-interned so
    /// [`NodeRef::ZERO`] is valid from the start.
    pub fn new() -> Store {
        let mut weight_ids = FastMap::default();
        weight_ids.insert(Rat::zero(), W_ZERO);
        weight_ids.insert(Rat::one(), W_ONE);
        Store {
            nodes: Vec::new(),
            unique: FastMap::default(),
            weights: vec![Rat::zero(), Rat::one()],
            weight_ids,
            memo_add: FastMap::default(),
            memo_mul: FastMap::default(),
            memo_div: FastMap::default(),
            memo_wadd: FastMap::default(),
            memo_mass: FastMap::default(),
            memo_paths: FastMap::default(),
            unique_hits: 0,
            apply_hits: 0,
        }
    }

    /// Interns a weight value.
    fn weight_id(&mut self, w: Rat) -> u32 {
        if let Some(&id) = self.weight_ids.get(&w) {
            return id;
        }
        let id = self.weights.len() as u32;
        assert!(id != TERM, "weight table full");
        self.weights.push(w.clone());
        self.weight_ids.insert(w, id);
        id
    }

    /// Interns a weight and returns its id. Callers that scale many refs by
    /// the same weight should intern once and use [`Store::scale_id`] /
    /// [`Store::mul_weights`]: id arithmetic is memoized on `u32` pairs and
    /// never re-hashes the rational.
    pub fn intern_weight(&mut self, w: &Rat) -> u32 {
        if let Some(&id) = self.weight_ids.get(w) {
            return id;
        }
        self.weight_id(w.clone())
    }

    /// Memoized product of two interned weight ids.
    pub fn mul_weights(&mut self, a: u32, b: u32) -> u32 {
        self.mul_id(a, b)
    }

    /// Memoized sum of two interned weight ids.
    fn add_weights(&mut self, a: u32, b: u32) -> u32 {
        if a == W_ZERO {
            return b;
        }
        if b == W_ZERO {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.memo_wadd.get(&key) {
            self.apply_hits += 1;
            return r;
        }
        let w = &self.weights[a as usize] + &self.weights[b as usize];
        let r = self.weight_id(w);
        self.memo_wadd.insert(key, r);
        r
    }

    /// Multiplies every path weight by the interned weight `w` — O(1).
    pub fn scale_id(&mut self, a: NodeRef, w: u32) -> NodeRef {
        if w == W_ZERO {
            return NodeRef::ZERO;
        }
        self.mul_ref(a, w)
    }

    /// Memoized product of two interned weights.
    fn mul_id(&mut self, a: u32, b: u32) -> u32 {
        if a == W_ONE {
            return b;
        }
        if b == W_ONE {
            return a;
        }
        if a == W_ZERO || b == W_ZERO {
            return W_ZERO;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.memo_mul.get(&key) {
            self.apply_hits += 1;
            return r;
        }
        let w = &self.weights[a as usize] * &self.weights[b as usize];
        let r = self.weight_id(w);
        self.memo_mul.insert(key, r);
        r
    }

    /// Memoized quotient of two interned weights (`b` must be nonzero).
    fn div_id(&mut self, a: u32, b: u32) -> u32 {
        if b == W_ONE || a == W_ZERO {
            return a;
        }
        if a == b {
            return W_ONE;
        }
        debug_assert!(b != W_ZERO, "division by the zero weight");
        if let Some(&r) = self.memo_div.get(&(a, b)) {
            self.apply_hits += 1;
            return r;
        }
        let w = &self.weights[a as usize] / &self.weights[b as usize];
        let r = self.weight_id(w);
        self.memo_div.insert((a, b), r);
        r
    }

    /// Multiplies a ref's edge weight by an interned weight — O(1); the
    /// structure is untouched.
    fn mul_ref(&mut self, a: NodeRef, w: u32) -> NodeRef {
        if a == NodeRef::ZERO {
            return NodeRef::ZERO;
        }
        NodeRef {
            w: self.mul_id(a.w, w),
            n: a.n,
        }
    }

    /// Interns a terminal weight; equal weights always return the same ref.
    pub fn terminal(&mut self, w: Rat) -> NodeRef {
        let w = self.weight_id(w);
        if w == W_ZERO {
            return NodeRef::ZERO;
        }
        NodeRef { w, n: TERM }
    }

    /// The weight of a terminal ref.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a decision node.
    pub fn terminal_value(&self, r: NodeRef) -> &Rat {
        assert!(r.is_terminal(), "terminal_value of a decision node");
        &self.weights[r.w as usize]
    }

    fn node(&self, n: u32) -> Node {
        debug_assert!(n != TERM, "expected a decision node");
        self.nodes[n as usize]
    }

    /// Hash-consed node constructor. Reduction rules: `mk(v, ZERO, ZERO) =
    /// ZERO`, and the first nonzero child's weight is extracted to the
    /// returned ref (weight normalization), which keeps every diagram the
    /// minimal trie of its nonzero paths with a canonical weight placement.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        let (c, lo, hi) = if lo == NodeRef::ZERO {
            if hi == NodeRef::ZERO {
                return NodeRef::ZERO;
            }
            (hi.w, NodeRef::ZERO, NodeRef { w: W_ONE, n: hi.n })
        } else {
            let hi_w = self.div_id(hi.w, lo.w);
            (
                lo.w,
                NodeRef { w: W_ONE, n: lo.n },
                NodeRef { w: hi_w, n: hi.n },
            )
        };
        let key = (var, lo, hi);
        match self.unique.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.unique_hits += 1;
                NodeRef { w: c, n: *e.get() }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                assert!(self.nodes.len() < TERM as usize, "node arena full");
                let n = self.nodes.len() as u32;
                self.nodes.push(Node { var, lo, hi });
                e.insert(n);
                NodeRef { w: c, n }
            }
        }
    }

    /// Pointwise sum of two weight functions (the `apply(+)` operation).
    ///
    /// Both operands must be *aligned*: built over the same block layout, so
    /// at every shared path the two nodes test the same variable. The engine
    /// guarantees this because it only ever sums diagrams over identical
    /// decision histories.
    pub fn add(&mut self, a: NodeRef, b: NodeRef) -> NodeRef {
        if a == NodeRef::ZERO {
            return b;
        }
        if b == NodeRef::ZERO {
            return a;
        }
        if a.n == b.n {
            // Structurally identical diagrams (terminals included) sum by
            // weight alone — the O(1) merge canonicity buys.
            let w = self.add_weights(a.w, b.w);
            if w == W_ZERO {
                return NodeRef::ZERO;
            }
            return NodeRef { w, n: a.n };
        }
        assert!(
            !a.is_terminal() && !b.is_terminal(),
            "misaligned ADD operands in add"
        );
        // Normalize to a's weight: a + b = wa · (A + (wb/wa)·B).
        let r = self.div_id(b.w, a.w);
        let sum = self.add_norm(a.n, b.n, r);
        self.mul_ref(sum, a.w)
    }

    /// `A + r·B` over weight-one refs to distinct structure nodes.
    fn add_norm(&mut self, na: u32, nb: u32, r: u32) -> NodeRef {
        let key = (na, nb, r);
        if let Some(&out) = self.memo_add.get(&key) {
            self.apply_hits += 1;
            return out;
        }
        let (a, b) = (self.node(na), self.node(nb));
        assert_eq!(a.var, b.var, "misaligned ADD operands in add");
        let rb_lo = self.mul_ref(b.lo, r);
        let lo = self.add(a.lo, rb_lo);
        let rb_hi = self.mul_ref(b.hi, r);
        let hi = self.add(a.hi, rb_hi);
        let out = self.mk(a.var, lo, hi);
        self.memo_add.insert(key, out);
        out
    }

    /// Multiplies every path weight by `w` — O(1): weights live on edges,
    /// so scaling only touches the root ref.
    pub fn scale(&mut self, a: NodeRef, w: &Rat) -> NodeRef {
        if a == NodeRef::ZERO || w.is_one() {
            return a;
        }
        debug_assert!(!w.is_zero(), "scaling by zero collapses the diagram");
        let w = self.weight_id(w.clone());
        self.mul_ref(a, w)
    }

    /// Weighted model count: the sum of all path weights. Memoized globally
    /// per structure node (node identity is canonical, so the memo never
    /// goes stale).
    pub fn mass(&mut self, a: NodeRef) -> Rat {
        let m = self.mass_node(a.n);
        m * &self.weights[a.w as usize]
    }

    fn mass_node(&mut self, n: u32) -> Rat {
        if n == TERM {
            return Rat::one();
        }
        if let Some(m) = self.memo_mass.get(&n) {
            return m.clone();
        }
        let node = self.node(n);
        let lo = self.mass(node.lo);
        let hi = self.mass(node.hi);
        let m = lo + &hi;
        self.memo_mass.insert(n, m.clone());
        m
    }

    /// Number of distinct root-to-terminal paths (= distinct configurations
    /// the diagram represents). Memoized globally per structure node.
    pub fn paths(&mut self, a: NodeRef) -> u64 {
        if a == NodeRef::ZERO {
            return 0;
        }
        self.paths_node(a.n)
    }

    fn paths_node(&mut self, n: u32) -> u64 {
        if n == TERM {
            return 1;
        }
        if let Some(&p) = self.memo_paths.get(&n) {
            return p;
        }
        let node = self.node(n);
        let lo = self.paths(node.lo);
        let hi = self.paths(node.hi);
        let p = lo.saturating_add(hi);
        self.memo_paths.insert(n, p);
        p
    }

    /// Gamma-code geometry for `id`: `(value, code length in bits)` where
    /// the total code is `2·len - 1` bits.
    fn gamma(id: u32) -> (u32, u32) {
        let v = id.checked_add(1).expect("id overflow");
        (v, 32 - v.leading_zeros())
    }

    /// Whether bit `t` (0-based from the block start) of `id`'s gamma code
    /// is set.
    fn gamma_bit(v: u32, len: u32, t: u32) -> bool {
        let total = 2 * len - 1;
        debug_assert!(t < total);
        if t < len - 1 {
            false // leading zeros
        } else {
            (v >> (total - 1 - t)) & 1 == 1
        }
    }

    /// Lays down `id`'s gamma code in `block`, ending at `below`. Returns
    /// `ZERO` when `below` is `ZERO` (no node ever has two zero children).
    pub fn encode(&mut self, block: u32, id: u32, below: NodeRef) -> NodeRef {
        if below == NodeRef::ZERO {
            return NodeRef::ZERO;
        }
        let (v, len) = Self::gamma(id);
        let total = 2 * len - 1;
        debug_assert!(total < BLOCK_BITS, "gamma code exceeds its block");
        let base = block * BLOCK_BITS;
        let mut cur = below;
        for t in (0..total).rev() {
            cur = if Self::gamma_bit(v, len, t) {
                self.mk(base + t, NodeRef::ZERO, cur)
            } else {
                self.mk(base + t, cur, NodeRef::ZERO)
            };
        }
        cur
    }

    /// Follows `id`'s gamma code from a block-entry ref; `ZERO` when the
    /// diagram has no path for that id. The returned ref carries the edge
    /// weights crossed on the way down.
    fn descend(&mut self, entry: NodeRef, id: u32) -> NodeRef {
        let (v, len) = Self::gamma(id);
        let total = 2 * len - 1;
        let mut cur = entry;
        for t in 0..total {
            if cur == NodeRef::ZERO {
                return NodeRef::ZERO;
            }
            let n = self.node(cur.n);
            let child = if Self::gamma_bit(v, len, t) {
                n.hi
            } else {
                n.lo
            };
            cur = self.mul_ref(child, cur.w);
        }
        cur
    }

    /// Collects every `(id, below)` pair decodable from a block-entry ref.
    /// Prefix-freeness of the gamma code makes the decode unambiguous even
    /// when ids of different code lengths share the block; `below` refs
    /// carry the edge weights crossed on the way down.
    fn decode_entry(&mut self, entry: NodeRef, out: &mut Vec<(u32, NodeRef)>) {
        self.walk_zeros(entry, 0, out);
    }

    /// Phase one of the gamma decode: counting leading zeros. The 1-branch
    /// (shorter codes, smaller ids) is visited first so decoded ids come
    /// out in ascending order.
    fn walk_zeros(&mut self, r: NodeRef, zeros: u32, out: &mut Vec<(u32, NodeRef)>) {
        let n = self.node(r.n);
        let hi = self.mul_ref(n.hi, r.w);
        if hi != NodeRef::ZERO {
            // The marker 1 is the value's MSB; `zeros` more bits follow.
            self.walk_value(hi, zeros, 1, out);
        }
        let lo = self.mul_ref(n.lo, r.w);
        if lo != NodeRef::ZERO {
            self.walk_zeros(lo, zeros + 1, out);
        }
    }

    /// Phase two: reading the remaining `rem` value bits.
    fn walk_value(&mut self, r: NodeRef, rem: u32, acc: u64, out: &mut Vec<(u32, NodeRef)>) {
        if rem == 0 {
            out.push(((acc - 1) as u32, r));
            return;
        }
        let n = self.node(r.n);
        let lo = self.mul_ref(n.lo, r.w);
        if lo != NodeRef::ZERO {
            self.walk_value(lo, rem - 1, acc << 1, out);
        }
        let hi = self.mul_ref(n.hi, r.w);
        if hi != NodeRef::ZERO {
            self.walk_value(hi, rem - 1, (acc << 1) | 1, out);
        }
    }

    /// Finds the distinct block-entry structure nodes for `block` reachable
    /// from `root` (deduplicated: shared structure is visited once; edge
    /// weights are irrelevant for which ids appear).
    fn entries_at_block(&self, root: NodeRef, block: u32, out: &mut Vec<u32>) {
        if root == NodeRef::ZERO {
            return;
        }
        let base = block * BLOCK_BITS;
        let mut seen: FastSet<u32> = FastSet::default();
        let mut stack = vec![root.n];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            assert!(n != TERM, "diagram ends before block {block}");
            let node = self.node(n);
            if node.var >= base {
                debug_assert_eq!(node.var, base, "entry not at block start");
                out.push(n);
            } else {
                if node.lo != NodeRef::ZERO {
                    stack.push(node.lo.n);
                }
                if node.hi != NodeRef::ZERO {
                    stack.push(node.hi.n);
                }
            }
        }
    }

    /// The sorted, deduplicated set of ids stored at `block` anywhere in
    /// `root` — i.e. every local configuration node `block` can be in.
    pub fn ids_at_block(&mut self, root: NodeRef, block: u32) -> Vec<u32> {
        let mut entries = Vec::new();
        self.entries_at_block(root, block, &mut entries);
        let mut ids = Vec::new();
        let mut pairs = Vec::new();
        for e in entries {
            pairs.clear();
            self.decode_entry(NodeRef { w: W_ONE, n: e }, &mut pairs);
            ids.extend(pairs.iter().map(|&(id, _)| id));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Restricts `root` to paths where `block` holds `old_id` and rewrites
    /// that block to `new_id`: the per-action transition of one node's
    /// local configuration applied to the whole represented set at once.
    /// With `old_id == new_id` this is a pure restriction.
    pub fn replace_block(
        &mut self,
        root: NodeRef,
        block: u32,
        old_id: u32,
        new_id: u32,
    ) -> NodeRef {
        let mut memo: FastMap<u32, NodeRef> = FastMap::default();
        self.replace_rec(root, block, old_id, new_id, &mut memo)
    }

    fn replace_rec(
        &mut self,
        r: NodeRef,
        block: u32,
        old_id: u32,
        new_id: u32,
        memo: &mut FastMap<u32, NodeRef>,
    ) -> NodeRef {
        if r == NodeRef::ZERO {
            return NodeRef::ZERO;
        }
        if let Some(&v) = memo.get(&r.n) {
            self.apply_hits += 1;
            return self.mul_ref(v, r.w);
        }
        assert!(!r.is_terminal(), "diagram ends before block {block}");
        let n = self.node(r.n);
        let unit = NodeRef { w: W_ONE, n: r.n };
        let out = if n.var >= block * BLOCK_BITS {
            debug_assert_eq!(n.var, block * BLOCK_BITS, "entry not at block start");
            let below = self.descend(unit, old_id);
            self.encode(block, new_id, below)
        } else {
            let lo = self.replace_rec(n.lo, block, old_id, new_id, memo);
            let hi = self.replace_rec(n.hi, block, old_id, new_id, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(r.n, out);
        self.mul_ref(out, r.w)
    }

    /// Decodes every path of `root` into its per-block id vector and path
    /// weight. Used to read terminal posteriors back out.
    pub fn enumerate(&mut self, root: NodeRef, out: &mut Vec<(Vec<u32>, Rat)>) {
        let mut prefix = Vec::new();
        self.enum_rec(root, &mut prefix, out);
    }

    fn enum_rec(&mut self, r: NodeRef, prefix: &mut Vec<u32>, out: &mut Vec<(Vec<u32>, Rat)>) {
        if r == NodeRef::ZERO {
            return;
        }
        if r.is_terminal() {
            out.push((prefix.clone(), self.weights[r.w as usize].clone()));
            return;
        }
        debug_assert_eq!(
            self.node(r.n).var % BLOCK_BITS,
            0,
            "enumerate must start at a block boundary"
        );
        let mut pairs = Vec::new();
        self.decode_entry(r, &mut pairs);
        for (id, below) in pairs {
            prefix.push(id);
            self.enum_rec(below, prefix, out);
            prefix.pop();
        }
    }

    /// Low-level hash-consed node constructor, exposed for engine-side
    /// batched transforms that rebuild a diagram's prefix while rewriting a
    /// block. Callers must preserve the block discipline: children of
    /// `var` belong to `var + 1` (or the next block boundary / a terminal),
    /// and both-`ZERO` children collapse to `ZERO` automatically.
    pub fn mk_node(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> NodeRef {
        self.mk(var, lo, hi)
    }

    /// The `(var, lo, hi)` of a decision ref, with the ref's edge weight
    /// multiplied into both children; `None` for terminals.
    pub fn children(&mut self, r: NodeRef) -> Option<(u32, NodeRef, NodeRef)> {
        if r.is_terminal() {
            return None;
        }
        let n = self.node(r.n);
        let lo = self.mul_ref(n.lo, r.w);
        let hi = self.mul_ref(n.hi, r.w);
        Some((n.var, lo, hi))
    }

    /// The structure identity of a ref, ignoring its edge weight. Two refs
    /// with equal `structure` represent proportional weight functions —
    /// engine transform memos key on this and rescale (every engine
    /// transform is linear in the weight).
    pub fn structure(&self, r: NodeRef) -> u32 {
        r.n
    }

    /// Drops a ref's edge weight (the canonical weight-one representative
    /// of its proportionality class).
    pub fn unit(&self, r: NodeRef) -> NodeRef {
        NodeRef { w: W_ONE, n: r.n }
    }

    /// The edge weight a ref carries on top of its [`Store::unit`]
    /// structure, as an interned id usable with [`Store::rescale`].
    pub fn edge_weight(&self, r: NodeRef) -> u32 {
        r.w
    }

    /// Multiplies a ref by a previously observed edge weight id — O(1).
    pub fn rescale(&mut self, r: NodeRef, w: u32) -> NodeRef {
        self.mul_ref(r, w)
    }

    /// Decodes every `(id, below)` pair stored under a block-entry ref (a
    /// ref whose variable is the first bit of its block).
    pub fn decode_block(&mut self, entry: NodeRef) -> Vec<(u32, NodeRef)> {
        let mut out = Vec::new();
        self.decode_entry(entry, &mut out);
        out
    }

    /// Current hash-consing counters.
    pub fn counters(&self) -> Counters {
        Counters {
            nodes: self.nodes.len() as u64,
            unique_hits: self.unique_hits,
            apply_cache_hits: self.apply_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rat {
        Rat::ratio(n, d)
    }

    /// Builds the one-path diagram for an id vector with the given mass.
    fn chain(s: &mut Store, ids: &[u32], mass: Rat) -> NodeRef {
        let mut cur = s.terminal(mass);
        for (block, &id) in ids.iter().enumerate().rev() {
            cur = s.encode(block as u32, id, cur);
        }
        cur
    }

    #[test]
    fn encode_then_enumerate_roundtrips() {
        let mut s = Store::new();
        let a = chain(&mut s, &[0, 7, 2], rat(1, 3));
        let mut out = Vec::new();
        s.enumerate(a, &mut out);
        assert_eq!(out, vec![(vec![0, 7, 2], rat(1, 3))]);
    }

    #[test]
    fn canonical_by_construction() {
        let mut s = Store::new();
        // The same weight function assembled in two different orders is the
        // same ref (weights included).
        let a1 = chain(&mut s, &[1, 4], rat(1, 2));
        let a2 = chain(&mut s, &[3, 4], rat(1, 4));
        let left = s.add(a1, a2);
        let b1 = chain(&mut s, &[3, 4], rat(1, 4));
        let b2 = chain(&mut s, &[1, 4], rat(1, 2));
        let right = s.add(b1, b2);
        assert_eq!(left, right);
        // And a diagram summed with ZERO is untouched.
        assert_eq!(s.add(left, NodeRef::ZERO), left);
    }

    #[test]
    fn add_merges_identical_paths_by_weight() {
        let mut s = Store::new();
        let a = chain(&mut s, &[2, 2], rat(1, 6));
        let b = chain(&mut s, &[2, 2], rat(1, 3));
        let sum = s.add(a, b);
        let mut out = Vec::new();
        s.enumerate(sum, &mut out);
        assert_eq!(out, vec![(vec![2, 2], rat(1, 2))]);
        assert_eq!(s.paths(sum), 1);
        // Identical structure merges without touching the arena.
        assert_eq!(s.structure(a), s.structure(sum));
    }

    #[test]
    fn mass_is_the_weighted_model_count() {
        let mut s = Store::new();
        let mut acc = NodeRef::ZERO;
        for (ids, m) in [
            ([0, 1], rat(1, 4)),
            ([5, 1], rat(1, 4)),
            ([0, 9], rat(1, 2)),
        ] {
            let p = chain(&mut s, &ids, m);
            acc = s.add(acc, p);
        }
        assert_eq!(s.mass(acc), Rat::one());
        assert_eq!(s.paths(acc), 3);
        assert_eq!(s.ids_at_block(acc, 0), vec![0, 5]);
        assert_eq!(s.ids_at_block(acc, 1), vec![1, 9]);
    }

    #[test]
    fn mixed_code_lengths_share_a_block() {
        // Gamma codes are prefix-free: ids 0 (1 bit) and 100 (13 bits) in
        // the same block must decode independently.
        let mut s = Store::new();
        let a = chain(&mut s, &[0], rat(1, 2));
        let b = chain(&mut s, &[100], rat(1, 2));
        let sum = s.add(a, b);
        assert_eq!(s.ids_at_block(sum, 0), vec![0, 100]);
        assert_eq!(s.mass(sum), Rat::one());
    }

    #[test]
    fn replace_block_restricts_and_rewrites() {
        let mut s = Store::new();
        let a = chain(&mut s, &[1, 5], rat(1, 2));
        let b = chain(&mut s, &[2, 5], rat(1, 2));
        let sum = s.add(a, b);
        // Restrict to id 1 at block 0 and rewrite it to 9.
        let moved = s.replace_block(sum, 0, 1, 9);
        let mut out = Vec::new();
        s.enumerate(moved, &mut out);
        assert_eq!(out, vec![(vec![9, 5], rat(1, 2))]);
        // Restriction to an absent id is ZERO.
        assert_eq!(s.replace_block(sum, 0, 7, 7), NodeRef::ZERO);
        // Pure restriction keeps the id (and the exact path weight).
        let kept = s.replace_block(sum, 0, 2, 2);
        assert_eq!(kept, b);
    }

    #[test]
    fn replace_preserves_untouched_blocks() {
        let mut s = Store::new();
        let mut acc = NodeRef::ZERO;
        for id0 in [0u32, 3, 17] {
            let p = chain(&mut s, &[id0, 4, 8], rat(1, 3));
            acc = s.add(acc, p);
        }
        let out = s.replace_block(acc, 1, 4, 11);
        assert_eq!(s.ids_at_block(out, 0), vec![0, 3, 17]);
        assert_eq!(s.ids_at_block(out, 1), vec![11]);
        assert_eq!(s.ids_at_block(out, 2), vec![8]);
        assert_eq!(s.mass(out), Rat::one());
    }

    #[test]
    fn scale_multiplies_every_path_weight() {
        let mut s = Store::new();
        let a = chain(&mut s, &[1, 2], rat(1, 2));
        let b = chain(&mut s, &[3, 2], rat(1, 3));
        let sum = s.add(a, b);
        let before = s.counters().nodes;
        let scaled = s.scale(sum, &rat(1, 5));
        // O(1): scaling allocates no structure.
        assert_eq!(s.counters().nodes, before);
        assert_eq!(s.mass(scaled), rat(1, 6));
        let mut out = Vec::new();
        s.enumerate(scaled, &mut out);
        assert_eq!(
            out,
            vec![(vec![1, 2], rat(1, 10)), (vec![3, 2], rat(1, 15))]
        );
        // Scaling by one is the identity ref, not just an equal value.
        assert_eq!(s.scale(sum, &Rat::one()), sum);
    }

    #[test]
    fn counters_reflect_consing() {
        let mut s = Store::new();
        let a = chain(&mut s, &[1, 2, 3], rat(1, 2));
        let before = s.counters();
        // Rebuilding the same chain allocates nothing new.
        let b = chain(&mut s, &[1, 2, 3], rat(1, 2));
        let after = s.counters();
        assert_eq!(a, b);
        assert_eq!(before.nodes, after.nodes);
        assert!(after.unique_hits > before.unique_hits);
    }

    #[test]
    fn weight_normalization_shares_structure() {
        // The same *shape* with proportional weights shares all structure:
        // only the root edge weight differs.
        let mut s = Store::new();
        let a = chain(&mut s, &[4, 6], rat(1, 2));
        let b = chain(&mut s, &[4, 6], rat(1, 7));
        assert_eq!(s.structure(a), s.structure(b));
        assert_ne!(a, b);
        assert_eq!(s.unit(a), s.unit(b));
        let w = s.edge_weight(b);
        assert_eq!(s.rescale(s.unit(a), w), b);
    }
}
