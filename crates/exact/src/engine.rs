//! The exact inference engine: exhaustive weighted exploration of the
//! global transition system with configuration merging.
//!
//! This plays the role PSI plays in the paper's toolchain — an exact
//! posterior calculator. The global semantics is a Markov chain over
//! configurations (Figure 7), so identical configurations reached along
//! different traces can have their masses summed; that merging is what makes
//! 30-node networks tractable. Observation failures remove mass, which is
//! restored by normalizing with the surviving mass `Z` (paper §3.2).

use std::collections::HashMap;
use std::fmt;

use bayonet_num::Rat;
use bayonet_symbolic::Guard;

use bayonet_net::{
    deliver, initial_config, run_handler, Action, Deadline, GlobalConfig, HandlerOutcome, Model,
    Scheduler, SemanticsError, Val,
};

use crate::enumerate::enumerate_eval;

/// Options controlling the exact engine.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Maximum number of global steps before reporting non-termination
    /// (the paper's generated programs assert `terminated()` after
    /// `num_steps`; we iterate to the fixpoint with this safety bound).
    pub max_global_steps: u64,
    /// Safety bound on simultaneously tracked configurations.
    pub max_configs: usize,
    /// Prune symbolically infeasible branches with Fourier–Motzkin.
    pub fm_pruning: bool,
    /// Merge identical configurations (the ablation switch; disabling this
    /// recovers naive trace enumeration).
    pub merge_configs: bool,
    /// Worker threads for frontier expansion (1 = single-threaded). Large
    /// frontiers are split into chunks expanded in parallel and merged.
    pub threads: usize,
    /// Cooperative deadline/cancellation, polled between expansion batches.
    /// Defaults to unlimited.
    pub deadline: Deadline,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_global_steps: 100_000,
            max_configs: 4_000_000,
            fm_pruning: true,
            merge_configs: true,
            threads: 1,
            deadline: Deadline::default(),
        }
    }
}

/// Statistics from an exact-engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Global steps executed (depth of the exploration).
    pub steps: u64,
    /// Configuration expansions performed.
    pub expansions: u64,
    /// Peak number of simultaneously tracked configurations.
    pub peak_configs: usize,
    /// Number of times a successor merged into an existing configuration.
    pub merge_hits: u64,
    /// Number of distinct terminal configurations.
    pub terminal_configs: usize,
}

/// Errors from the exact engine.
#[derive(Debug)]
pub enum ExactError {
    /// A semantic error in the model (hard failure).
    Semantics(SemanticsError),
    /// Mass remained on non-terminal configurations after the step bound.
    Unterminated {
        /// Number of live configurations.
        live_configs: usize,
        /// Total unresolved probability mass (approximate display).
        mass: String,
    },
    /// The configuration frontier exceeded [`ExactOptions::max_configs`].
    ConfigLimit(usize),
    /// All probability mass was discarded by observations (Z = 0), so the
    /// posterior is undefined.
    AllMassObservedOut,
    /// The run was cut short by its [`Deadline`] (timeout or cancellation).
    Interrupted {
        /// Global steps completed before the interruption.
        steps: u64,
        /// Configuration expansions completed before the interruption.
        expansions: u64,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Semantics(e) => write!(f, "semantic error: {e}"),
            ExactError::Unterminated { live_configs, mass } => write!(
                f,
                "network did not terminate within the step bound \
                 ({live_configs} live configurations, mass ≈ {mass})"
            ),
            ExactError::ConfigLimit(n) => {
                write!(
                    f,
                    "exact state space exceeded the configuration limit ({n})"
                )
            }
            ExactError::AllMassObservedOut => {
                f.write_str("all probability mass was discarded by observations (Z = 0)")
            }
            ExactError::Interrupted { steps, expansions } => write!(
                f,
                "exact inference interrupted by deadline \
                 (after {steps} steps, {expansions} expansions)"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

impl From<SemanticsError> for ExactError {
    fn from(e: SemanticsError) -> Self {
        ExactError::Semantics(e)
    }
}

/// The exact posterior over terminal configurations.
#[derive(Debug)]
pub struct Analysis {
    /// Terminal configurations with their guards and unnormalized masses.
    pub terminals: Vec<(GlobalConfig, Guard, Rat)>,
    /// Mass discarded by failed observations, per guard.
    pub discarded: Vec<(Guard, Rat)>,
    /// Run statistics.
    pub stats: EngineStats,
}

impl Analysis {
    /// Total surviving (terminal) mass; with no symbolic parameters this is
    /// the paper's normalization constant `Z`.
    pub fn total_terminal_mass(&self) -> Rat {
        self.terminals
            .iter()
            .fold(Rat::zero(), |acc, (_, _, m)| acc + m)
    }

    /// Total mass discarded by observations.
    pub fn total_discarded_mass(&self) -> Rat {
        self.discarded
            .iter()
            .fold(Rat::zero(), |acc, (_, m)| acc + m)
    }
}

/// How many configuration expansions to run between deadline polls.
const DEADLINE_POLL_STRIDE: usize = 256;

/// A weighted set of guarded configurations. Kept as a `Vec`; merging
/// compresses it through a hash map.
type Weighted = Vec<(Guard, GlobalConfig, Rat)>;

/// Successors produced by expanding a batch of configurations.
#[derive(Default)]
struct Expansion {
    next: Weighted,
    terminal: Weighted,
    discarded: Vec<(Guard, Rat)>,
}

/// Expands one non-terminal configuration by one global step, appending
/// successors to `out`.
fn expand_config(
    model: &Model,
    scheduler: &dyn Scheduler,
    guard: &Guard,
    cfg: &GlobalConfig,
    mass: &Rat,
    opts: &ExactOptions,
    out: &mut Expansion,
) -> Result<(), ExactError> {
    let k = model.num_nodes();
    let enabled = cfg.enabled_actions();
    debug_assert!(!enabled.is_empty(), "frontier configs are non-terminal");
    for (action, p_sched, sched_next) in scheduler.distribution(cfg.sched_state, &enabled, k) {
        let step_mass = mass * &p_sched;
        match action {
            Action::Fwd(i) => {
                let mut c2 = cfg.clone();
                c2.sched_state = sched_next;
                deliver(model, &mut c2, i)?;
                if c2.is_terminal() {
                    out.terminal.push((guard.clone(), c2, step_mass));
                } else {
                    out.next.push((guard.clone(), c2, step_mass));
                }
            }
            Action::Run(i) => {
                // G-Run: enumerate every complete handler execution.
                let branches = enumerate_eval(guard, opts.fm_pruning, |driver| {
                    let mut node_cfg = cfg.nodes[i].clone();
                    let outcome = run_handler(model, i, &mut node_cfg, driver)?;
                    Ok((node_cfg, outcome))
                })?;
                for b in branches {
                    let (node_cfg, outcome) = b.result;
                    let branch_mass = &step_mass * &b.weight;
                    match outcome {
                        HandlerOutcome::ObserveFailed => {
                            // Conditioning: remove this mass from the
                            // distribution.
                            out.discarded.push((b.guard, branch_mass));
                        }
                        HandlerOutcome::Completed | HandlerOutcome::AssertFailed => {
                            let mut c2 = cfg.clone();
                            c2.sched_state = sched_next;
                            c2.nodes[i] = node_cfg;
                            if outcome == HandlerOutcome::AssertFailed {
                                c2.nodes[i].error = true;
                            }
                            if c2.is_terminal() {
                                out.terminal.push((b.guard, c2, branch_mass));
                            } else {
                                out.next.push((b.guard, c2, branch_mass));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn compress(items: Weighted, stats: &mut EngineStats) -> Weighted {
    let mut map: HashMap<(Guard, GlobalConfig), Rat> = HashMap::with_capacity(items.len());
    for (g, c, m) in items {
        match map.entry((g, c)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += &m;
                stats.merge_hits += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m);
            }
        }
    }
    map.into_iter().map(|((g, c), m)| (g, c, m)).collect()
}

/// Runs the exact engine to the termination fixpoint.
///
/// # Errors
///
/// See [`ExactError`]. In particular, networks that cannot reach a terminal
/// configuration within `opts.max_global_steps` are reported rather than
/// looping forever.
pub fn analyze(
    model: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
) -> Result<Analysis, ExactError> {
    let mut stats = EngineStats::default();
    let k = model.num_nodes();
    // The source's `num_steps N;` bounds the exploration like the paper's
    // generated `repeat N { step() }; assert(terminated())` (Figure 10).
    let step_bound = model.num_steps.unwrap_or(opts.max_global_steps);

    // Initial distribution: enumerate the (possibly random) state
    // initializers of every node, then build the cartesian product.
    let mut initial: Vec<(Vec<Vec<Val>>, Rat, Guard)> =
        vec![(Vec::with_capacity(k), Rat::one(), Guard::top())];
    for node in 0..k {
        let prog = &model.programs[node];
        let node_branches = enumerate_eval(&Guard::top(), opts.fm_pruning, |driver| {
            bayonet_net::eval_state_init(model, prog, driver)
        })?;
        let mut next = Vec::with_capacity(initial.len() * node_branches.len());
        for (states, mass, guard) in &initial {
            for b in &node_branches {
                let Some(combined) = guard.conjoin(&b.guard) else {
                    continue; // contradictory parameter assumptions
                };
                let mut states = states.clone();
                states.push(b.result.clone());
                next.push((states, mass * &b.weight, combined));
            }
        }
        initial = next;
    }

    let mut frontier: Weighted = Vec::new();
    let mut terminal_acc: Weighted = Vec::new();
    let mut discarded: HashMap<Guard, Rat> = HashMap::new();

    for (states, mass, guard) in initial {
        let cfg = initial_config(model, states)?;
        if cfg.is_terminal() {
            terminal_acc.push((guard, cfg, mass));
        } else {
            frontier.push((guard, cfg, mass));
        }
    }
    frontier = compress(frontier, &mut stats);

    while !frontier.is_empty() {
        stats.steps += 1;
        if stats.steps > step_bound {
            let mass: Rat = frontier.iter().fold(Rat::zero(), |acc, (_, _, m)| acc + m);
            return Err(ExactError::Unterminated {
                live_configs: frontier.len(),
                mass: format!("{:.6}", mass.to_f64()),
            });
        }
        stats.peak_configs = stats.peak_configs.max(frontier.len());
        if frontier.len() > opts.max_configs {
            return Err(ExactError::ConfigLimit(opts.max_configs));
        }
        if opts.deadline.expired() {
            return Err(ExactError::Interrupted {
                steps: stats.steps - 1,
                expansions: stats.expansions,
            });
        }

        stats.expansions += frontier.len() as u64;
        let threads = opts.threads.max(1);
        let expansion = if threads > 1 && frontier.len() >= threads * 8 {
            // Parallel expansion: chunk the frontier, expand per thread,
            // merge the results. Sound because expansion of one
            // configuration is independent of every other.
            let chunk_size = frontier.len().div_ceil(threads);
            let results: Vec<Result<Expansion, ExactError>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            let mut out = Expansion::default();
                            for (i, (g, c, m)) in chunk.iter().enumerate() {
                                if i % DEADLINE_POLL_STRIDE == 0 && opts.deadline.expired() {
                                    return Err(ExactError::Interrupted {
                                        steps: 0, // filled in by the caller
                                        expansions: 0,
                                    });
                                }
                                expand_config(model, scheduler, g, c, m, opts, &mut out)?;
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("expansion worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope");
            let mut merged = Expansion::default();
            for r in results {
                let part = r.map_err(|e| match e {
                    ExactError::Interrupted { .. } => ExactError::Interrupted {
                        steps: stats.steps - 1,
                        expansions: stats.expansions,
                    },
                    other => other,
                })?;
                merged.next.extend(part.next);
                merged.terminal.extend(part.terminal);
                merged.discarded.extend(part.discarded);
            }
            merged
        } else {
            let mut out = Expansion::default();
            for (i, (g, c, m)) in frontier.iter().enumerate() {
                if i > 0 && i % DEADLINE_POLL_STRIDE == 0 && opts.deadline.expired() {
                    return Err(ExactError::Interrupted {
                        steps: stats.steps - 1,
                        expansions: stats.expansions,
                    });
                }
                expand_config(model, scheduler, g, c, m, opts, &mut out)?;
            }
            out
        };
        frontier.clear();
        terminal_acc.extend(expansion.terminal);
        for (g, m) in expansion.discarded {
            *discarded.entry(g).or_insert_with(Rat::zero) += &m;
        }
        frontier = if opts.merge_configs {
            compress(expansion.next, &mut stats)
        } else {
            expansion.next
        };
    }

    // Terminal configurations are always merged: soundness does not depend
    // on it, and it keeps the posterior small.
    let terminals = compress(terminal_acc, &mut stats);
    stats.terminal_configs = terminals.len();
    Ok(Analysis {
        terminals: terminals.into_iter().map(|(g, c, m)| (c, g, m)).collect(),
        discarded: discarded.into_iter().collect(),
        stats,
    })
}
