//! Parameter sweeps: one Bayonet program evaluated across a grid of
//! parameter values, sharing work between grid points.
//!
//! The paper's headline use case is what-if analysis — the same program
//! under many link-loss rates or protocol constants (Figure 3). Running
//! every grid point from scratch repeats the entire exploration; this
//! module shares it three ways, picking the cheapest route that provably
//! preserves **bit-identical** results against independent pointwise runs:
//!
//! * [`SweepRoute::Symbolic`] — leave the swept parameters unbound and run
//!   the symbolic engine once. Its piecewise cells answer every grid point
//!   inside a cell exactly; per-point work is a sign check per cell atom
//!   plus one linear-expression evaluation.
//! * [`SweepRoute::Prefix`] — bind the first point and explore with a
//!   [`ParamWatch`] on the swept parameters. Every global step that
//!   completes without reading a swept binding is independent of the grid,
//!   so the exploration state up to the *first* read (the shared prefix) is
//!   snapshotted once and replayed across points; only the suffix runs per
//!   point. Programs whose queries (but not handlers) mention the swept
//!   parameter share the entire exploration.
//! * [`SweepRoute::PerPoint`] — full independent runs (the diagram backend,
//!   and the fallback when nothing can be shared). Trivially identical to
//!   pointwise runs.
//!
//! Identity holds because the engine's rational arithmetic is exact and
//! canonical: masses summed in any grouping produce the same [`Rat`], and
//! a prefix that never consulted a swept binding is a pure function of the
//! non-swept model.

use std::sync::Arc;

use bayonet_num::Rat;
use bayonet_symbolic::{Assignment, Guard, ParamId};

use bayonet_net::{scheduler_for, Model, ParamWatch, Scheduler, Val};

use crate::engine::{
    analyze, lease_workers, run_cache_opts, step_bound, Analysis, EngineKind, EngineStats,
    EnumState, ExactError, ExactOptions,
};
use crate::query::{answer_cached, CellAnswer, QueryResult};

/// How a sweep's work was shared across grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepRoute {
    /// One symbolic run; points answered from its piecewise cells.
    Symbolic,
    /// A shared exploration prefix replayed across points, forked at the
    /// first read of a swept parameter. `shared_steps == 0` means nothing
    /// could be shared and every point ran in full.
    Prefix,
    /// Full independent per-point runs (diagram backend, or no queries).
    PerPoint,
}

impl SweepRoute {
    /// Stable lowercase name (metrics / JSON).
    pub fn name(self) -> &'static str {
        match self {
            SweepRoute::Symbolic => "symbolic",
            SweepRoute::Prefix => "prefix",
            SweepRoute::PerPoint => "per_point",
        }
    }
}

/// The answer at one grid point — exactly what a pointwise run of the same
/// bound model would produce, minus schedule-dependent statistics.
#[derive(Debug)]
pub struct SweepPointResult {
    /// Per-query results, in program order.
    pub results: Vec<QueryResult>,
    /// Surviving terminal mass at this point (the paper's `Z`).
    pub z: Rat,
    /// Mass discarded by observations at this point.
    pub discarded: Rat,
    /// Statistics for the work attributable to *this point only*: under
    /// [`SweepRoute::Prefix`] the shared prefix is excluded (it is reported
    /// once in [`SweepResult::prefix_stats`]); `steps` stays absolute so
    /// step bounds read the same as a pointwise run.
    pub stats: EngineStats,
}

/// The result of a parameter sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// The sharing route taken.
    pub route: SweepRoute,
    /// The backend that ran (after `Auto` resolution on the bound model —
    /// the same resolution a pointwise run would perform).
    pub engine: EngineKind,
    /// Statistics of the work done once and shared by every point: the
    /// symbolic run ([`SweepRoute::Symbolic`]) or the shared prefix
    /// ([`SweepRoute::Prefix`]). Zero under [`SweepRoute::PerPoint`].
    pub prefix_stats: EngineStats,
    /// Global steps of the shared prefix (equals `prefix_stats.steps`;
    /// under [`SweepRoute::Symbolic`] the whole exploration was shared).
    pub shared_steps: u64,
    /// One result (or error) per grid point, in input order. A point's
    /// error is exactly the error an independent run at that point reports.
    pub points: Vec<Result<SweepPointResult, ExactError>>,
}

impl SweepResult {
    /// Number of points that were answered by reusing shared work rather
    /// than a full independent exploration. The first point is charged with
    /// computing the shared work, so a fully-shared 16-point sweep reports
    /// 15 reuses.
    pub fn reused_points(&self) -> usize {
        match self.route {
            SweepRoute::PerPoint => 0,
            SweepRoute::Prefix if self.shared_steps == 0 => 0,
            _ => self.points.len().saturating_sub(1),
        }
    }
}

/// Runs `model` across a parameter grid.
///
/// `params` names the swept parameters and each element of `points` gives
/// one value per swept parameter, in the same order. Non-swept parameters
/// keep whatever bindings `model` carries; swept parameters are rebound per
/// point (any binding they carry in `model` is ignored).
///
/// The result at every point is bit-identical to compiling the same model,
/// binding the point's values, and running [`analyze`] + query answering —
/// at any thread count and for every [`EngineKind`].
///
/// # Errors
///
/// Global errors (a grid row whose arity does not match `params`) are
/// reported at the top level; engine and query errors are per-point.
pub fn sweep(
    model: &Model,
    params: &[ParamId],
    points: &[Vec<Rat>],
    opts: &ExactOptions,
) -> Result<SweepResult, ExactError> {
    for row in points {
        if row.len() != params.len() {
            return Err(ExactError::Semantics(
                bayonet_net::SemanticsError::SymbolicValueInConcreteContext(format!(
                    "sweep grid row has {} values for {} swept parameters",
                    row.len(),
                    params.len()
                )),
            ));
        }
    }

    // The base model: swept parameters unbound, everything else as given.
    let mut base = model.clone();
    base.clear_param_watch();
    for id in params {
        let name = base.params.name(*id).to_string();
        base.unbind_param(&name)
            .expect("swept parameter exists in the model");
    }
    // Optimize once for the whole sweep: passes are binding-independent, so
    // every grid point (and the probe run) shares the result, and the
    // pointwise `analyze` runs the points are pinned against make the same
    // transformation themselves.
    let base = if opts.passes && base.opt_info().is_none() {
        bayonet_net::opt::optimize(&base)
    } else {
        base
    };
    let scheduler = scheduler_for(&base);

    // Resolve `Auto` exactly as a pointwise run would: on the bound model.
    // Binding structure is identical across points, so the choice is too.
    let engine = match opts.engine {
        EngineKind::Auto => {
            let mut bound0 = base.clone();
            if let Some(first) = points.first() {
                bind_point(&mut bound0, params, first);
            }
            crate::planner::choose_exact(&bound0)
        }
        explicit => explicit,
    };
    let opts = ExactOptions {
        engine,
        ..opts.clone()
    };

    if engine == EngineKind::Bdd && base.num_nodes() <= 64 {
        // The diagram backend has no incremental frontier to snapshot;
        // every point runs in full (still through the shared plan/options).
        return Ok(per_point_route(&base, &*scheduler, &opts, params, points));
    }

    // Symbolic route: only sound to evaluate cells at a point when the
    // swept parameters are the *only* unbound ones.
    if base_unbound_is_exactly(&base, params) {
        if let Some(result) = try_symbolic_route(&base, &*scheduler, &opts, params, points) {
            return Ok(result);
        }
    }
    Ok(prefix_route(&base, &*scheduler, &opts, params, points))
}

/// Binds each swept parameter to the point's value.
fn bind_point(model: &mut Model, params: &[ParamId], point: &[Rat]) {
    for (id, value) in params.iter().zip(point) {
        let name = model.params.name(*id).to_string();
        model
            .bind_param(&name, value.clone())
            .expect("swept parameter exists in the model");
    }
}

/// Are the unbound parameters of `base` exactly the swept set?
fn base_unbound_is_exactly(base: &Model, params: &[ParamId]) -> bool {
    base.params
        .iter()
        .all(|id| params.contains(&id) == base.binding(id).is_none())
}

/// Does `guard` hold at the assignment? `None` when an atom mentions a
/// parameter outside the assignment (cannot be decided).
fn guard_satisfied_at(guard: &Guard, assign: &Assignment) -> Option<bool> {
    for (expr, sign) in guard.atoms() {
        for p in expr.params() {
            assign.get(&p)?;
        }
        let v = expr.eval(&|p| assign[&p].clone());
        if v.sign() != sign {
            return Some(false);
        }
    }
    Some(true)
}

/// Evaluates a cell's value at the assignment; `None` when it mentions a
/// parameter outside the assignment.
fn value_at(value: &Val, assign: &Assignment) -> Option<Rat> {
    match value {
        Val::Rat(r) => Some(r.clone()),
        Val::Sym(e) => {
            for p in e.params() {
                assign.get(&p)?;
            }
            Some(e.eval(&|p| assign[&p].clone()))
        }
    }
}

/// One symbolic run answers every point: analyze with the swept parameters
/// unbound, then select + evaluate each point's cell. Returns `None` when
/// anything resists (symbolic arguments to randomness, too many cell atoms,
/// an undecidable guard, …) — the caller falls back to the prefix route,
/// which handles all of those by running concrete.
fn try_symbolic_route(
    base: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
    params: &[ParamId],
    points: &[Vec<Rat>],
) -> Option<SweepResult> {
    let (run_cache, opts, _) = run_cache_opts(opts);
    let analysis = analyze(base, scheduler, &opts).ok()?;
    let mut query_results = Vec::with_capacity(base.queries.len());
    for q in &base.queries {
        query_results
            .push(answer_cached(base, &analysis, q, opts.fm_pruning, Some(&run_cache)).ok()?);
    }

    // Validate and evaluate every point before committing to the route.
    let mut out_points: Vec<Result<SweepPointResult, ExactError>> =
        Vec::with_capacity(points.len());
    for point in points {
        let assign: Assignment = params.iter().copied().zip(point.iter().cloned()).collect();

        // Z and discarded mass at the point: the masses of the terminals /
        // discarded branches whose guards hold there. Exact rational sums
        // are grouping-independent, so these equal the pointwise values.
        let mut z = Rat::zero();
        for (_, guard, mass) in &analysis.terminals {
            if guard_satisfied_at(guard, &assign)? {
                z += mass;
            }
        }
        let mut discarded = Rat::zero();
        for (guard, mass) in &analysis.discarded {
            if guard_satisfied_at(guard, &assign)? {
                discarded += mass;
            }
        }

        let mut results = Vec::with_capacity(query_results.len());
        let mut defined = false;
        for qr in &query_results {
            // Cells partition parameter space: exactly one admits the point.
            let cell = qr
                .cells
                .iter()
                .find(|c| guard_satisfied_at(&c.guard, &assign) == Some(true))?;
            let value = match &cell.value {
                None => None,
                Some(v) => Some(Val::Rat(value_at(v, &assign)?)),
            };
            defined |= value.is_some();
            results.push(QueryResult {
                kind: qr.kind,
                source: qr.source.clone(),
                cells: vec![CellAnswer {
                    guard: Guard::top(),
                    constraint: "true".to_string(),
                    witness: Assignment::new(),
                    value,
                    z: z.clone(),
                    discarded: discarded.clone(),
                }],
            });
        }
        // A pointwise run with every query undefined reports Z = 0; so do
        // we. (With no queries there is nothing to be undefined.)
        if !defined && !query_results.is_empty() {
            out_points.push(Err(ExactError::AllMassObservedOut));
            continue;
        }
        out_points.push(Ok(SweepPointResult {
            results,
            z,
            discarded,
            stats: EngineStats::default(),
        }));
    }

    Some(SweepResult {
        route: SweepRoute::Symbolic,
        engine: opts.engine,
        shared_steps: analysis.stats.steps,
        prefix_stats: analysis.stats,
        points: out_points,
    })
}

/// Shared-prefix route: explore with the first point's bindings and a
/// [`ParamWatch`] on the swept parameters; snapshot the exploration state
/// before the first step that read one, and replay only the suffix per
/// point. When the watch never trips, the entire exploration is shared and
/// per-point work is query answering alone.
fn prefix_route(
    base: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
    params: &[ParamId],
    points: &[Vec<Rat>],
) -> SweepResult {
    let (run_cache, opts, _) = run_cache_opts(opts);
    let (_lease, workers) = lease_workers(&opts);
    let bound = step_bound(base, &opts);

    // Outcome of the probe run: the exploration state at the fork point
    // (shared prefix), a completed shared analysis, or nothing shareable.
    enum Probe {
        Fork(EnumState),
        Complete(Analysis),
        Nothing,
    }

    let probe_outcome = 'probe: {
        if points.is_empty() {
            break 'probe Probe::Nothing;
        }
        let mut probe = base.clone();
        bind_point(&mut probe, params, &points[0]);
        let watch = Arc::new(ParamWatch::new(probe.params.len(), params));
        probe.set_param_watch(Arc::clone(&watch));

        let Ok(mut state) = EnumState::init(&probe, scheduler, &opts) else {
            // Initialization failed; whether the error depends on the grid
            // is unknown, so let every point reproduce it independently.
            break 'probe Probe::Nothing;
        };
        if watch.hit() {
            // A state initializer read a swept parameter: no shared prefix.
            break 'probe Probe::Nothing;
        }
        loop {
            if state.done() {
                break 'probe Probe::Complete(state.finish());
            }
            let snapshot = state.clone();
            match state.step(&probe, scheduler, &opts, workers, bound) {
                Ok(()) => {
                    if watch.hit() {
                        // This step consumed a swept binding: its successors
                        // are point-specific. The pre-step snapshot is the
                        // shared prefix.
                        break 'probe Probe::Fork(snapshot);
                    }
                }
                Err(_) => {
                    // The erroring step may or may not depend on the grid;
                    // keep whatever prefix is provably shared and let each
                    // point re-derive its own (identical or not) error.
                    break 'probe if watch.hit() {
                        Probe::Fork(snapshot)
                    } else {
                        Probe::Nothing
                    };
                }
            }
        }
    };

    let answer_point =
        |model: &Model, analysis: &Analysis| -> Result<Vec<QueryResult>, ExactError> {
            let mut results = Vec::with_capacity(model.queries.len());
            for q in &model.queries {
                results.push(answer_cached(
                    model,
                    analysis,
                    q,
                    opts.fm_pruning,
                    Some(&run_cache),
                )?);
            }
            Ok(results)
        };

    match probe_outcome {
        Probe::Complete(analysis) => {
            // The whole exploration is grid-independent; per-point work is
            // query answering against the shared posterior.
            let shared_steps = analysis.stats.steps;
            let points_out = points
                .iter()
                .map(|point| {
                    let mut pm = base.clone();
                    bind_point(&mut pm, params, point);
                    Ok(SweepPointResult {
                        results: answer_point(&pm, &analysis)?,
                        z: analysis.total_terminal_mass(),
                        discarded: analysis.total_discarded_mass(),
                        stats: EngineStats::default(),
                    })
                })
                .collect();
            SweepResult {
                route: SweepRoute::Prefix,
                engine: opts.engine,
                shared_steps,
                prefix_stats: analysis.stats,
                points: points_out,
            }
        }
        Probe::Fork(prefix) => {
            let prefix_stats = prefix.stats.clone();
            let points_out = points
                .iter()
                .map(|point| {
                    let mut pm = base.clone();
                    bind_point(&mut pm, params, point);
                    let mut state = prefix.clone();
                    // Charge this point only for its suffix; `steps` stays
                    // absolute so the step bound behaves pointwise.
                    state.stats = EngineStats {
                        steps: prefix_stats.steps,
                        ..EngineStats::default()
                    };
                    while !state.done() {
                        state.step(&pm, scheduler, &opts, workers, bound)?;
                    }
                    let analysis = state.finish();
                    Ok(SweepPointResult {
                        results: answer_point(&pm, &analysis)?,
                        z: analysis.total_terminal_mass(),
                        discarded: analysis.total_discarded_mass(),
                        stats: analysis.stats,
                    })
                })
                .collect();
            SweepResult {
                route: SweepRoute::Prefix,
                engine: opts.engine,
                shared_steps: prefix_stats.steps,
                prefix_stats,
                points: points_out,
            }
        }
        Probe::Nothing => {
            let mut result = per_point_route(base, scheduler, &opts, params, points);
            result.route = SweepRoute::Prefix;
            result
        }
    }
}

/// Full independent runs, one per point (shared feasibility cache only).
fn per_point_route(
    base: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
    params: &[ParamId],
    points: &[Vec<Rat>],
) -> SweepResult {
    let (run_cache, opts, _) = run_cache_opts(opts);
    let points_out = points
        .iter()
        .map(|point| {
            let mut pm = base.clone();
            bind_point(&mut pm, params, point);
            let analysis = analyze(&pm, scheduler, &opts)?;
            let mut results = Vec::with_capacity(pm.queries.len());
            for q in &pm.queries {
                results.push(answer_cached(
                    &pm,
                    &analysis,
                    q,
                    opts.fm_pruning,
                    Some(&run_cache),
                )?);
            }
            Ok(SweepPointResult {
                z: analysis.total_terminal_mass(),
                discarded: analysis.total_discarded_mass(),
                results,
                stats: analysis.stats,
            })
        })
        .collect();
    SweepResult {
        route: SweepRoute::PerPoint,
        engine: opts.engine,
        prefix_stats: EngineStats::default(),
        shared_steps: 0,
        points: points_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayonet_lang::parse;
    use bayonet_net::compile;

    /// The *receiver* reads the swept parameter inside `flip`, so the
    /// sender's steps form a genuine non-empty shared prefix before the
    /// exploration forks — the prefix route with a real fork.
    const LOSSY: &str = r#"
        packet_fields { tag }
        parameters { P }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B >= 1);
        def send(pkt, pt) state d(0) {
            if d == 0 { d = 1; if flip(1/3) { dup; } }
            fwd(1);
        }
        def recv(pkt, pt) state got(0) { if flip(P) { got = got + 1; } drop; }
    "#;

    /// Only the query mentions the swept parameter — the entire exploration
    /// is shared (symbolic route, or a complete prefix).
    const QUERY_ONLY: &str = r#"
        packet_fields { tag }
        parameters { K }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B >= K);
        def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
        def recv(pkt, pt) state got(0) { got = got + 1; drop; }
    "#;

    fn grid_1d(values: &[i64]) -> Vec<Vec<Rat>> {
        values.iter().map(|v| vec![Rat::int(*v)]).collect()
    }

    fn run_sweep(source: &str, points: &[Vec<Rat>], opts: &ExactOptions) -> SweepResult {
        let model = compile(&parse(source).unwrap()).unwrap();
        let params: Vec<ParamId> = model.params.iter().collect();
        sweep(&model, &params, points, opts).unwrap()
    }

    fn pointwise(source: &str, param: &str, value: &Rat) -> (Rat, Rat, Vec<String>) {
        let mut model = compile(&parse(source).unwrap()).unwrap();
        model.bind_param(param, value.clone()).unwrap();
        let scheduler = scheduler_for(&model);
        let analysis = analyze(&model, &*scheduler, &ExactOptions::default()).unwrap();
        let rendered = model
            .queries
            .iter()
            .map(|q| {
                crate::query::answer(&model, &analysis, q, true)
                    .unwrap()
                    .to_string()
            })
            .collect();
        (
            analysis.total_terminal_mass(),
            analysis.total_discarded_mass(),
            rendered,
        )
    }

    #[test]
    fn flip_parameter_takes_prefix_route_and_matches_pointwise() {
        let points: Vec<Vec<Rat>> = [(1u64, 4u64), (1, 2), (3, 4)]
            .iter()
            .map(|(n, d)| vec![Rat::ratio(*n as i64, *d as i64)])
            .collect();
        let result = run_sweep(LOSSY, &points, &ExactOptions::default());
        assert_eq!(result.route, SweepRoute::Prefix);
        assert!(result.shared_steps > 0, "lossy sweep shares its prefix");
        for (row, point) in points.iter().zip(&result.points) {
            let got = point.as_ref().unwrap();
            let (z, disc, rendered) = pointwise(LOSSY, "P", &row[0]);
            assert_eq!(got.z, z);
            assert_eq!(got.discarded, disc);
            let sweep_rendered: Vec<String> = got.results.iter().map(|r| r.to_string()).collect();
            assert_eq!(sweep_rendered, rendered);
        }
    }

    #[test]
    fn query_only_parameter_shares_the_whole_exploration() {
        let points = grid_1d(&[0, 1, 2]);
        let result = run_sweep(QUERY_ONLY, &points, &ExactOptions::default());
        // Whole exploration shared, by either the symbolic or complete-
        // prefix mechanism; every point after the first is a reuse.
        assert!(matches!(
            result.route,
            SweepRoute::Symbolic | SweepRoute::Prefix
        ));
        assert!(result.shared_steps > 0);
        assert_eq!(result.reused_points(), points.len() - 1);
        for (row, point) in points.iter().zip(&result.points) {
            let got = point.as_ref().unwrap();
            // Per-point engine work is zero: the exploration ran once.
            assert_eq!(got.stats.expansions, 0);
            let (z, disc, rendered) = pointwise(QUERY_ONLY, "K", &row[0]);
            assert_eq!(got.z, z);
            assert_eq!(got.discarded, disc);
            let sweep_rendered: Vec<String> = got.results.iter().map(|r| r.to_string()).collect();
            assert_eq!(sweep_rendered, rendered);
        }
    }

    #[test]
    fn bdd_engine_sweeps_per_point() {
        let points = grid_1d(&[0, 1, 2]);
        let model = compile(&parse(QUERY_ONLY).unwrap()).unwrap();
        let params: Vec<ParamId> = model.params.iter().collect();
        let opts = ExactOptions {
            engine: EngineKind::Bdd,
            ..ExactOptions::default()
        };
        let result = sweep(&model, &params, &points, &opts).unwrap();
        assert_eq!(result.route, SweepRoute::PerPoint);
        assert_eq!(result.reused_points(), 0);
        let enum_result = run_sweep(QUERY_ONLY, &points, &ExactOptions::default());
        for (bdd, en) in result.points.iter().zip(&enum_result.points) {
            let (bdd, en) = (bdd.as_ref().unwrap(), en.as_ref().unwrap());
            assert_eq!(bdd.z, en.z);
            let a: Vec<String> = bdd.results.iter().map(|r| r.to_string()).collect();
            let b: Vec<String> = en.results.iter().map(|r| r.to_string()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mismatched_grid_row_is_a_global_error() {
        let model = compile(&parse(QUERY_ONLY).unwrap()).unwrap();
        let params: Vec<ParamId> = model.params.iter().collect();
        let bad = vec![vec![Rat::int(1), Rat::int(2)]];
        assert!(sweep(&model, &params, &bad, &ExactOptions::default()).is_err());
    }
}
