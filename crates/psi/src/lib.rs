//! The PSI backend of the Bayonet reproduction (paper §4).
//!
//! Bayonet's central design decision is to phrase network inference as
//! inference in an existing probabilistic programming language: Bayonet
//! programs are translated to PSI (exact) or WebPPL (approximate). This
//! crate reproduces that pipeline stage three ways:
//!
//! * [`to_psi`] / [`to_webppl`] — render a compiled model as PSI / WebPPL
//!   *source text*, structurally following paper Figures 9 and 10 (used for
//!   the §5 code-size comparison and for inspection);
//! * [`translate`] — compile a model into **PSI-core**, a small executable
//!   probabilistic IR ([`PProgram`]), statically unrolling the network step
//!   function of Figure 10;
//! * [`infer_exact`] / [`infer_query`] — run exact inference on PSI-core by
//!   exhaustive trace enumeration (the way PSI enumerates program paths),
//!   giving an independent differential check of the direct engines.
//!
//! # Examples
//!
//! ```
//! use bayonet_lang::parse;
//! use bayonet_net::{compile, QueryKind};
//! use bayonet_psi::{translate, infer_query, DEFAULT_STEP_LIMIT};
//! use bayonet_num::Rat;
//!
//! let model = compile(&parse(r#"
//!     packet_fields { dst }
//!     topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
//!     programs { A -> send, B -> recv }
//!     init { packet -> (A, pt1); }
//!     query probability(got@B == 1);
//!     def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
//!     def recv(pkt, pt) state got(0) { got = 1; drop; }
//! "#)?)?;
//! let program = translate(&model, &model.queries[0])?;
//! let p = infer_query(&program, QueryKind::Probability, DEFAULT_STEP_LIMIT)?;
//! assert_eq!(p, Rat::ratio(1, 3));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod interp;
mod ir;
mod translate;

pub use codegen::{to_psi, to_webppl};
pub use interp::{infer_exact, run, PsiError, PsiPosterior, RunOutcome, DEFAULT_STEP_LIMIT};
pub use ir::{BinOp, LValue, PExpr, PProgram, PStmt, PValue, VarId};
pub use translate::{infer_query, translate, TranslateError, DEFAULT_NUM_STEPS};
