//! Bayesian network diagnosis from sampled traffic (paper §5.5): use
//! mirrored packets and observed arrival sequences as evidence to infer
//! hidden network properties — a misbehaving ECMP hash function, and a
//! switch's unknown forwarding strategy.
//!
//! Run with: `cargo run --release --example bayesian_diagnosis`

use bayonet::scenarios::{
    bad_hash_posterior, load_balancing, reliability_strategy, strategy_posterior, LB_OBS_BAD,
    LB_OBS_GOOD,
};

fn main() -> Result<(), bayonet::Error> {
    // --- Load-balancing conformance (Figure 11(d)).
    // Prior: P(bad hash) = 1/10. The controller sub-samples mirrored
    // packets from S0, S1 and H1 and sees an ordered mirror log.
    println!("ECMP hash diagnosis (prior P(bad) = 0.1):");
    for (label, obs) in [("suspicious", LB_OBS_BAD), ("healthy  ", LB_OBS_GOOD)] {
        let network = load_balancing(obs)?;
        let posterior = bad_hash_posterior(&network)?;
        println!(
            "  {label} mirror log {obs:?}  ->  P(bad | log) = {} ≈ {:.4}",
            posterior,
            posterior.to_f64()
        );
    }
    println!("  (paper: 0.152 for the first log — reproduced exactly)");

    // --- Forwarding-strategy inference (§5.5, Figure 13).
    // S0 forwards randomly (prior 1/2) or deterministically to S1 / S2
    // (prior 1/4 each); the S2 path fails with probability 1/1000. Three
    // numbered packets are sent; H1 logs the exhaustive arrival sequence.
    println!("\nforwarding-strategy inference (priors: rand 1/2, det-S1 1/4, det-S2 1/4):");
    for (label, obs) in [("(1,3)  ", vec![1u64, 3]), ("(1,2,3)", vec![1, 2, 3])] {
        let network = reliability_strategy(&obs)?;
        let post = strategy_posterior(&network)?;
        println!(
            "  arrivals {label} -> P(rand) = {:.4}, P(det S1) = {:.4}, P(det S2) = {:.4}",
            post[0].to_f64(),
            post[1].to_f64(),
            post[2].to_f64()
        );
    }
    println!("  (paper: (1, 0, 0) and (0.4383, 0.2810, 0.2807) — reproduced exactly)");
    println!("\nwhy (1,3) pins the random strategy: only random forwarding can send");
    println!("packets 1 and 3 via the healthy S1 path while packet 2 dies on the");
    println!("failed S2 link; deterministic strategies deliver all-or-nothing.");
    Ok(())
}
