//! Seeded random Bayonet program generation — **test support**.
//!
//! Produces small, always-terminating network programs for differential
//! and round-trip testing: a chain topology where every node forwards
//! strictly rightward (so exploration cannot loop), with randomized
//! handler bodies drawing from flips, uniform draws, state arithmetic,
//! packet-field writes, bounded duplication, and soft `observe`
//! conditioning that can never discard *all* probability mass.
//!
//! The generator is a tiny self-contained LCG, so a seed fully determines
//! the program text — no external randomness crates, and failures
//! reproduce from the seed alone.

use std::fmt::Write as _;

/// A deterministic generator of valid Bayonet programs.
///
/// # Examples
///
/// ```
/// use bayonet_lang::{parse, testgen::ProgramGen};
///
/// let source = ProgramGen::new(42).generate();
/// assert!(parse(&source).is_ok());
/// // Same seed, same program:
/// assert_eq!(source, ProgramGen::new(42).generate());
/// ```
pub struct ProgramGen {
    state: u64,
    /// When set, the program declares `parameters { PT }` and threads the
    /// parameter through the final query (and, seed-dependent, a forwarding
    /// comparison) — sweep-ready programs for the grid-vs-pointwise
    /// differential suites.
    parameterized: bool,
}

impl ProgramGen {
    /// Creates a generator; the seed fully determines the output.
    pub fn new(seed: u64) -> ProgramGen {
        // Splash the seed so small seeds don't produce correlated streams.
        ProgramGen {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            parameterized: false,
        }
    }

    /// Like [`ProgramGen::new`], but the generated program declares a
    /// symbolic parameter `PT` and compares against it in the probability
    /// query's threshold; some seeds additionally gate one node's forward
    /// decision on it. Binding `PT` to any small integer yields a valid
    /// concrete program, which is exactly what parameter sweeps do per grid
    /// point.
    pub fn new_parameterized(seed: u64) -> ProgramGen {
        ProgramGen {
            parameterized: true,
            ..ProgramGen::new(seed)
        }
    }

    /// Next raw 64-bit draw (an LCG with Knuth's MMIX constants, taking
    /// the high bits which have the longest period).
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Generates one complete program as source text.
    pub fn generate(&mut self) -> String {
        // 2- or 3-node chains: long chains combined with `dup` make the
        // uniform scheduler's interleaving space explode, and these tests
        // need hundreds of programs to run in seconds.
        let nodes = 2 + self.below(2) as usize;
        let mut src = String::new();
        src.push_str("packet_fields { tag }\n");
        if self.parameterized {
            src.push_str("parameters { PT }\n");
        }
        src.push_str("topology {\n    nodes { ");
        for i in 0..nodes {
            if i > 0 {
                src.push_str(", ");
            }
            let _ = write!(src, "N{i}");
        }
        src.push_str(" }\n    links {\n");
        for i in 0..nodes - 1 {
            // Link i: right port of N{i} to left port of N{i+1}. N0 has
            // only the rightward link, so its right port is pt1; every
            // later node's left port is pt1 and right port pt2.
            let right_port = if i == 0 { 1 } else { 2 };
            let sep = if i + 2 < nodes { "," } else { "" };
            let _ = writeln!(
                src,
                "        (N{i}, pt{right_port}) <-> (N{}, pt1){sep}",
                i + 1
            );
        }
        src.push_str("    }\n}\n");
        src.push_str("programs { ");
        for i in 0..nodes {
            if i > 0 {
                src.push_str(", ");
            }
            let _ = write!(src, "N{i} -> prog{i}");
        }
        src.push_str(" }\n");
        src.push_str("init { packet -> (N0, pt1); }\n");

        let last = nodes - 1;
        if self.parameterized {
            let _ = writeln!(src, "query probability(hits@N{last} >= PT);");
        } else {
            let _ = writeln!(src, "query probability(hits@N{last} >= 1);");
        }
        let _ = writeln!(src, "query expectation(hits@N{last} + x0@N0);");

        for i in 0..last {
            self.emit_forwarder(&mut src, i);
        }
        let _ = writeln!(
            src,
            "def prog{last}(pkt, pt) state hits(0) {{ hits = hits + 1; drop; }}"
        );
        src
    }

    /// A non-sink node: randomized body ending in a rightward forward (or
    /// a probabilistic forward/drop choice).
    ///
    /// Termination argument: every packet visit ends in `fwd`/`drop` of the
    /// head, forwarding is strictly rightward, and duplication is gated on
    /// a dedicated monotone flag (`d{i}` flips 0 → 1 exactly once), so each
    /// node injects at most one extra packet over the whole run.
    fn emit_forwarder(&mut self, src: &mut String, node: usize) {
        let right_port = if node == 0 { 1 } else { 2 };
        let var = format!("x{node}");
        let init = match self.below(3) {
            0 => "0".to_string(),
            1 => self.below(3).to_string(),
            _ => "flip(1/2)".to_string(),
        };
        let dup = self.below(4) == 0;
        let state = if dup {
            format!("{var}({init}), d{node}(0)")
        } else {
            format!("{var}({init})")
        };
        let _ = writeln!(src, "def prog{node}(pkt, pt) state {state} {{");
        let n_stmts = 1 + self.below(3);
        let dup_at = self.below(n_stmts);
        for slot in 0..n_stmts {
            if dup && slot == dup_at {
                let _ = writeln!(src, "    if d{node} == 0 {{ d{node} = 1; dup; }}");
            }
            let stmt = self.gen_stmt(&var, true);
            let _ = writeln!(src, "    {stmt}");
        }
        match self.below(3) {
            0 => {
                let _ = writeln!(
                    src,
                    "    if flip({}) {{ fwd({right_port}); }} else {{ drop; }}",
                    self.probability()
                );
            }
            1 => {
                // Sweep-ready programs sometimes gate the forward decision
                // on the parameter itself: both arms end the packet visit,
                // so the termination argument is unchanged.
                if self.parameterized && self.below(3) == 0 {
                    let _ = writeln!(
                        src,
                        "    if {var} >= PT {{ fwd({right_port}); }} else {{ drop; }}"
                    );
                } else {
                    let _ = writeln!(
                        src,
                        "    if {var} >= {} {{ fwd({right_port}); }} else {{ drop; }}",
                        self.below(2)
                    );
                }
            }
            _ => {
                let _ = writeln!(src, "    fwd({right_port});");
            }
        }
        src.push_str("}\n");
    }

    /// One statement; `compound` allows a single level of `if` nesting.
    fn gen_stmt(&mut self, var: &str, compound: bool) -> String {
        match self.below(if compound { 8 } else { 6 }) {
            0 => format!("{var} = {var} + {};", 1 + self.below(2)),
            1 => format!("{var} = uniformInt(0, {});", 1 + self.below(2)),
            2 => format!("pkt.tag = pkt.tag + {};", 1 + self.below(2)),
            3 => format!("{var} = flip({});", self.probability()),
            4 => "skip;".to_string(),
            5 => {
                if self.below(4) == 0 {
                    // Soft conditioning: discards a fixed fraction of mass
                    // but can never discard all of it, so Z stays positive.
                    "observe(flip(9/10));".to_string()
                } else {
                    format!("pkt.tag = {};", self.below(3))
                }
            }
            6 => {
                let then = self.gen_stmt(var, false);
                let alt = self.gen_stmt(var, false);
                format!(
                    "if flip({}) {{ {then} }} else {{ {alt} }}",
                    self.probability()
                )
            }
            _ => {
                let then = self.gen_stmt(var, false);
                format!("if {var} <= {} {{ {then} }}", self.below(2))
            }
        }
    }

    /// A random probability literal in (0, 1).
    fn probability(&mut self) -> String {
        const CHOICES: [&str; 5] = ["1/2", "1/3", "2/3", "1/4", "3/4"];
        CHOICES[self.below(CHOICES.len() as u64) as usize].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, pretty_program};

    #[test]
    fn generated_programs_parse_and_vary() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..50 {
            let src = ProgramGen::new(seed).generate();
            let program = parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            distinct.insert(pretty_program(&program));
        }
        // The space is random enough that 50 seeds don't collapse onto a
        // handful of programs.
        assert!(
            distinct.len() > 40,
            "only {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0, 1, 7, u64::MAX] {
            assert_eq!(
                ProgramGen::new(seed).generate(),
                ProgramGen::new(seed).generate()
            );
        }
    }

    #[test]
    fn parameterized_programs_parse_and_declare_the_parameter() {
        let mut gated = 0;
        for seed in 0..50 {
            let src = ProgramGen::new_parameterized(seed).generate();
            parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(src.contains("parameters { PT }"), "seed {seed}:\n{src}");
            assert!(src.contains(">= PT"), "seed {seed} never uses PT:\n{src}");
            if src.contains("if x") && src.contains(">= PT {") {
                gated += 1;
            }
        }
        // Some seeds must gate a forward decision on PT (the prefix-fork
        // case), not only the query threshold (the fully-shared case).
        assert!(gated > 0, "no seed gated forwarding on PT");
    }

    #[test]
    fn parameterized_generation_is_deterministic_per_seed() {
        for seed in [0, 3, 11] {
            assert_eq!(
                ProgramGen::new_parameterized(seed).generate(),
                ProgramGen::new_parameterized(seed).generate()
            );
        }
    }
}
