//! A minimal JSON value type, parser, and serializer.
//!
//! The service speaks JSON over hand-rolled HTTP; the build environment has
//! no serde, so this module implements the small subset of JSON handling the
//! protocol needs: UTF-8 text, `\uXXXX` escapes (including surrogate
//! pairs), and objects that preserve insertion order.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a nonnegative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Indexes into an array.
    pub fn get_index(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing `.0`.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A JSON parse error with a byte offset.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`ParseError`] with the failing byte offset.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always at a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"hi\nthere"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = parse(r#""Aé🦀""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé🦀"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }
}
