//! A fixed-capacity LRU map used for inference result caching.
//!
//! Implemented as a hash map into a slab of entries chained in a doubly
//! linked recency list, so `get` and `insert` are O(1) and eviction always
//! removes the least recently used entry.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a fixed entry capacity.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit/miss counters: `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lifetime count of entries pushed out by capacity pressure.
    /// In-place replacement of an existing key is not an eviction, and a
    /// capacity-0 cache (caching disabled) never evicts: inserts into it
    /// are simply dropped.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterates entries from least- to most-recently used, without
    /// touching recency or the hit/miss counters.
    pub fn iter_lru_to_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut order = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            let e = self.slab[idx].as_ref().expect("live entry");
            order.push((&e.key, &e.value));
            idx = e.prev;
        }
        order.into_iter()
    }

    /// Looks up `key`, marking the entry most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                self.slab[idx].as_ref().map(|e| &e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces `key`, evicting the least recently used entry if
    /// the cache is full. Returns the evicted `(key, value)` pair, if any
    /// (in-place replacement returns `None`).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].as_mut().expect("live entry").value = value;
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let entry = self.slab[lru].take().expect("live tail");
            self.map.remove(&entry.key);
            self.free.push(lru);
            self.evictions += 1;
            evicted = Some((entry.key, entry.value));
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.slab[idx] = Some(Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slab[idx].as_ref().expect("live entry");
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev].as_mut().expect("live entry").next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].as_mut().expect("live entry").prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let e = self.slab[idx].as_mut().expect("live entry");
        e.prev = NIL;
        e.next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let e = self.slab[idx].as_mut().expect("live entry");
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head].as_mut().expect("live entry").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now most recent
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replaces_existing_keys_in_place() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut c = LruCache::new(1);
        assert_eq!(c.get(&"x"), None);
        c.insert("x", 5);
        assert_eq!(c.get(&"x"), Some(&5));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        // Dropped inserts are not evictions: nothing was ever displaced.
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.iter_lru_to_mru().count(), 0);
    }

    #[test]
    fn evictions_come_back_in_recency_order_and_are_counted() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.evictions(), 0);
        // "a" is LRU, so it goes first; then "b".
        assert_eq!(c.insert("c", 3), Some(("a", 1)));
        assert_eq!(c.insert("d", 4), Some(("b", 2)));
        assert_eq!(c.evictions(), 2);
        // Touching "c" protects it: "d" is now the victim.
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.insert("e", 5), Some(("d", 4)));
        assert_eq!(c.evictions(), 3);
        // Replacing a live key in place displaces nothing.
        assert_eq!(c.insert("e", 50), None);
        assert_eq!(c.evictions(), 3);
    }

    #[test]
    fn iterates_least_to_most_recently_used() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        let _ = c.get(&"a"); // recency is now b < c < a
        let keys: Vec<_> = c.iter_lru_to_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
        // Iteration is a read-only walk: no hits, misses, or reordering.
        assert_eq!(c.stats(), (1, 0));
        let keys: Vec<_> = c.iter_lru_to_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["b", "c", "a"]);
    }

    #[test]
    fn heavy_churn_keeps_structure_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            let _ = c.get(&(i % 7));
        }
        assert!(c.len() <= 8);
        // Walk the recency list and confirm it matches the map size.
        let mut seen = 0;
        let mut idx = c.head;
        while idx != NIL {
            seen += 1;
            idx = c.slab[idx].as_ref().unwrap().next;
        }
        assert_eq!(seen, c.len());
    }
}
