//! Parameter synthesis over piecewise exact results (paper §2.3).
//!
//! With symbolic configuration parameters, [`answer`](crate::answer)
//! returns a query value per *cell* of parameter space. Synthesis picks the
//! cell optimizing the query and extracts a concrete parameter assignment
//! from it — the step the paper delegates to Mathematica or Z3, performed
//! here by the built-in Fourier–Motzkin witness extractor.
//!
//! This module holds the engine-level core operating on a [`Model`] and a
//! [`QueryResult`]; the `bayonet` facade crate and the inference service
//! both build on it.

use std::fmt;

use bayonet_net::Model;
use bayonet_num::{Rat, Sign};
use bayonet_symbolic::{feasibility, Assignment, Feasibility, LinExpr};

use crate::query::{CellAnswer, QueryResult};

/// Optimization direction for synthesis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Pick the cell with the smallest query value (e.g. minimize the
    /// probability of congestion).
    Minimize,
    /// Pick the cell with the largest query value.
    Maximize,
}

/// Options for [`synthesize_result`].
#[derive(Clone, Copy, Debug)]
pub struct SynthesisOptions {
    /// Optimization direction.
    pub objective: Objective,
    /// Require every parameter to be strictly positive in the witness
    /// (natural for link costs; plain cell witnesses may sit at 0).
    pub positive_params: bool,
}

/// The outcome of parameter synthesis.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The full piecewise result the choice was made from.
    pub result: QueryResult,
    /// Index of the optimal cell within `result.cells`.
    pub best_cell: usize,
    /// The optimal query value.
    pub value: Rat,
    /// A concrete parameter assignment achieving it.
    pub assignment: Assignment,
    /// Human-readable rendering of the optimal cell's constraint.
    pub constraint: String,
}

/// Why synthesis could not pick a cell.
#[derive(Debug)]
pub enum SynthesisError {
    /// No cell carries a defined, concrete rational query value.
    NoDefinedCell,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoDefinedCell => {
                f.write_str("no cell has a defined rational value to optimize")
            }
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Picks the cell of `result` optimizing the query value and extracts a
/// concrete parameter assignment for it.
///
/// # Errors
///
/// Fails when no cell carries a concrete rational value.
pub fn synthesize_result(
    model: &Model,
    result: &QueryResult,
    opts: SynthesisOptions,
) -> Result<Synthesis, SynthesisError> {
    let defined: Vec<(usize, &CellAnswer, Rat)> = result
        .cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let v = c.value.as_ref()?.as_rat()?.clone();
            Some((i, c, v))
        })
        .collect();
    if defined.is_empty() {
        return Err(SynthesisError::NoDefinedCell);
    }
    let (best_cell, cell, value) = match opts.objective {
        Objective::Minimize => defined
            .into_iter()
            .min_by(|a, b| a.2.cmp(&b.2))
            .expect("nonempty"),
        Objective::Maximize => defined
            .into_iter()
            .max_by(|a, b| a.2.cmp(&b.2))
            .expect("nonempty"),
    };
    let constraint = cell.constraint.clone();
    let assignment = if opts.positive_params {
        positive_witness(model, cell).unwrap_or_else(|| cell.witness.clone())
    } else {
        cell.witness.clone()
    };
    Ok(Synthesis {
        best_cell,
        value,
        assignment,
        constraint,
        result: result.clone(),
    })
}

/// Extends the cell's guard with `p > 0` for every declared parameter and
/// extracts a witness, if that stays feasible.
fn positive_witness(model: &Model, cell: &CellAnswer) -> Option<Assignment> {
    let params = &model.params;
    let mut guard = cell.guard.clone();
    for pid in params.iter() {
        guard = guard.assume_sign(&LinExpr::param(pid), Sign::Plus)?;
    }
    match feasibility(&guard) {
        Feasibility::Sat(mut w) => {
            // Parameters not mentioned in any atom default to 1, not 0.
            for pid in params.iter() {
                w.entry(pid).or_insert_with(Rat::one);
            }
            Some(w)
        }
        Feasibility::Unsat => None,
    }
}
