//! Stress tests for the event-loop serve core.
//!
//! Four legs: a big parallel request sharing the pool with a burst of
//! small requests; whole-batch shedding against a saturated worker pool;
//! connection-cap shedding with byte-clean 503 framing; and a
//! high-concurrency sweep against a real out-of-process server — 256
//! concurrent connections by default, the full 10 000 when
//! `BAYONET_STRESS_10K` is set (CI runs it in a dedicated job with a
//! raised fd limit). The sweep's contract: below the shed thresholds not
//! one response is dropped, and afterwards the
//! `bayonet_http_open_connections` gauge drains back down — the loop
//! reclaimed every fd.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bayonet_serve::{parse_json, start, Json, ServerConfig};

mod common;
use common::{metric_value, GOSSIP_K4, TINY};

/// A small two-node program, parameterized by the flip weight so each
/// burst request is a distinct cache entry (forcing real engine work).
fn small_program(k: u64) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> send, B -> recv }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def send(pkt, pt) {{ if flip(1/{k}) {{ fwd(1); }} else {{ drop; }} }}
        def recv(pkt, pt) state got(0) {{ got = 1; drop; }}
    "#
    )
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = common::http(addr, method, path, body);
    (status, payload)
}

/// A `/v1/run` body that reliably pins a worker for ~3 s: rejection
/// sampling polls the deadline once per sample, so `timeout_ms` is
/// honored closely, while the particle budget alone would run far longer.
fn slow_body(seed: u64) -> String {
    format!(
        r#"{{"source":{},"engine":"rejection","particles":2000000,"seed":{seed},"timeout_ms":3000}}"#,
        Json::Str(GOSSIP_K4.into())
    )
}

#[test]
fn big_parallel_request_and_small_burst_coexist() {
    let handle = start(ServerConfig {
        threads: 4,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // The big request asks for 8 workers; the server clamps it to the
    // 4-slot pool and lets it borrow whatever is idle.
    let big = std::thread::spawn(move || {
        let body = Json::obj(vec![
            ("source", Json::Str(GOSSIP_K4.into())),
            ("threads", Json::Num(8.0)),
        ])
        .to_string();
        http(addr, "POST", "/v1/run", &body)
    });

    // A burst of distinct small requests racing the big one.
    let burst: Vec<_> = (0..12)
        .map(|k| {
            std::thread::spawn(move || {
                let body = Json::obj(vec![("source", Json::Str(small_program(k + 2)))]).to_string();
                http(addr, "POST", "/v1/run", &body)
            })
        })
        .collect();

    for (k, client) in burst.into_iter().enumerate() {
        let (status, body) = client.join().expect("small client");
        // Small requests must never be shed or starved by the big one:
        // the queue is deep enough and the pool lease never blocks.
        assert_eq!(status, 200, "small request {k} failed: {body}");
        let doc = parse_json(&body).expect("json body");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    let (status, body) = big.join().expect("big client");
    assert_eq!(status, 200, "big request failed: {body}");
    let doc = parse_json(&body).expect("json body");
    let text = doc.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("94/27"), "wrong posterior: {text}");

    // The pool saw the action: workers were leased, tasks were stolen, and
    // every slot was returned.
    let metrics = common::metrics(addr);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_total"), 4.0);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_busy"), 0.0);
    assert!(
        metric_value(&metrics, "bayonet_pool_leases_total") >= 1.0,
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_pool_steals_total") > 0.0,
        "the big request never engaged the work-stealing expander:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_engine_steals_total") > 0.0,
        "{metrics}"
    );

    handle.shutdown();
}

/// Concurrent batches against a saturated pool: every shed batch gets a
/// complete, buffered `503` (never chunked, never truncated), and after
/// the pool frees up a batch completes with well-formed chunked framing
/// all the way to the terminal zero chunk.
#[test]
fn saturated_pool_sheds_whole_batches_then_recovers() {
    // One worker and a one-slot queue make saturation deterministic even
    // on a loaded host; `BAYONET_TEST_THREADS` instead drives the per-item
    // `threads` knob of the recovery batch below.
    let handle = start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        cache_entries: 0,
        io_timeout: Duration::from_secs(30),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Saturate: one slow rejection job pins the single worker; a second
    // fills the queue's only slot. Distinct seeds keep them apart even if
    // a result cache were in play.
    let worker_job = std::thread::spawn(move || http(addr, "POST", "/v1/run", &slow_body(1)));
    std::thread::sleep(Duration::from_millis(500));
    let queued_job = std::thread::spawn(move || http(addr, "POST", "/v1/run", &slow_body(2)));
    std::thread::sleep(Duration::from_millis(300));

    // Three concurrent batch clients hit the saturated server. The event
    // loop parses each request, finds the job queue full at dispatch, and
    // sheds — *before any worker is involved*, so a rejected batch can
    // never have started a chunked body. Each client must see a complete
    // buffered 503: a Content-Length, no Transfer-Encoding, and a JSON
    // body that parses whole.
    let batch_body = format!(
        r#"{{"source":{},"items":[{{}},{{}},{{}}]}}"#,
        Json::Str(TINY.into())
    );
    let shed: Vec<_> = (0..3)
        .map(|_| {
            let body = batch_body.clone();
            std::thread::spawn(move || common::http(addr, "POST", "/v1/batch", &body))
        })
        .collect();
    for client in shed {
        let (status, head, payload) = client.join().expect("shed client");
        assert_eq!(status, 503, "{head}\n{payload}");
        assert!(head.contains("Content-Length:"), "{head}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert!(
            !head.contains("Transfer-Encoding"),
            "a shed batch must never start a chunked body: {head}"
        );
        let doc = parse_json(&payload).expect("shed body parses whole");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded"),
            "{head}\n{payload}"
        );
    }

    // The saturating jobs run to their 3 s deadline and come back 504 —
    // they were never cut off by the shedding around them.
    for client in [worker_job, queued_job] {
        let (status, body) = client.join().expect("slow client");
        assert_eq!(status, 504, "{body}");
    }

    // A batch now completes — with `BAYONET_TEST_THREADS` driving the
    // items' exact-engine parallelism — and the raw wire bytes are
    // verified as well-formed chunked framing ending in the terminal zero
    // chunk (decode_chunked panics on any truncated or malformed chunk).
    // Worker drain is asynchronous, so poll through any residual 503s.
    let recovery_body = format!(
        r#"{{"source":{},"items":[{{"threads":{t}}},{{"threads":{t}}},{{"threads":{t}}}]}}"#,
        Json::Str(TINY.into()),
        t = common::test_threads().min(64)
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let (status, head, payload) = loop {
        let resp = common::http(addr, "POST", "/v1/batch", &recovery_body);
        if resp.0 != 503 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status, 200, "{payload}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(
        payload.ends_with("0\r\n\r\n"),
        "missing terminal chunk: {payload:?}"
    );
    let frames = common::parse_frames(&common::decode_chunked(&payload));
    assert_eq!(frames.len(), 3, "{payload}");
    for frame in &frames {
        assert_eq!(frame.status, 200, "{}", frame.body);
        assert!(frame.body.contains("1/3"), "{}", frame.body);
    }

    // Shed batches recorded no batch work; the successful one recorded
    // exactly one. The loop counted each shed.
    let metrics = common::metrics(addr);
    assert_eq!(metric_value(&metrics, "bayonet_batch_requests_total"), 1.0);
    assert_eq!(metric_value(&metrics, "bayonet_batch_items_total"), 3.0);
    assert!(
        metric_value(&metrics, "bayonet_http_conn_shed_total") >= 3.0,
        "{metrics}"
    );

    handle.shutdown();
}

/// Above the connection cap the loop sheds *at accept* with the same
/// byte-clean buffered 503 framing as a queue shed, and recovers the
/// moment held connections drain.
#[test]
fn connection_cap_sheds_with_clean_503_framing() {
    let handle = start(ServerConfig {
        max_connections: 8,
        io_timeout: Duration::from_secs(10),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Fill the cap with idle held connections.
    let held: Vec<TcpStream> = (0..8)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("held connect {i}: {e}")))
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    // Every connection above the cap gets a complete buffered 503 and a
    // clean close — without sending a single request byte.
    for k in 0..4 {
        let mut conn = TcpStream::connect(addr).expect("overflow connection");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw)
            .unwrap_or_else(|e| panic!("overflow read {k}: {e}"));
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(raw.contains("Content-Length:"), "{raw}");
        assert!(raw.contains("Retry-After: 1"), "{raw}");
        assert!(!raw.contains("Transfer-Encoding"), "{raw}");
        let (_, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
        let doc = parse_json(payload).expect("shed body parses whole");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded"),
            "{raw}"
        );
    }

    // Release the held slots; the loop reaps the EOFs and admits work
    // again.
    drop(held);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (status, body) = loop {
        let resp = common::post_run(addr, TINY);
        if resp.0 != 503 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status, 200, "server never recovered from the cap: {body}");

    let metrics = common::metrics(addr);
    assert!(
        metric_value(&metrics, "bayonet_http_conn_shed_total") >= 4.0,
        "{metrics}"
    );

    handle.shutdown();
}

/// The headline sweep: N concurrent connections against a real
/// out-of-process server, every one answered, every fd reclaimed.
/// N = 256 by default; `BAYONET_STRESS_10K` raises it to 10 000 (run in
/// CI with `ulimit -n` raised on both sides).
#[test]
fn high_concurrency_sweep_no_drops_no_leaks() {
    let n: usize = match std::env::var("BAYONET_STRESS_10K") {
        Ok(v) if !v.is_empty() && v != "0" => 10_000,
        _ => 256,
    };
    // The client side holds N sockets too: lift our own fd ceiling.
    let _ = bayonet_net::raise_nofile_limit();

    let served = common::Served::spawn(
        env!("CARGO_BIN_EXE_bayonet-served"),
        &[
            "--threads",
            "2",
            "--queue",
            "20000",
            "--io-timeout-ms",
            "120000",
            "--max-connections",
            "16384",
        ],
    );
    let addr = served.addr;

    // Phase 1: open all N connections, each immediately sending its
    // request so the read deadline never bites a socket we dawdled on.
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let mut conn =
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {i} of {n}: {e}"));
        conn.set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: stress\r\n\r\n")
            .unwrap_or_else(|e| panic!("write {i} of {n}: {e}"));
        conns.push(conn);
    }

    // Phase 2: collect. Below the shed thresholds (cap 16384, queue
    // 20000) the server owes every single connection a complete 200 —
    // zero drops, zero resets, zero truncations.
    for (i, mut conn) in conns.into_iter().enumerate() {
        let mut raw = String::new();
        conn.read_to_string(&mut raw)
            .unwrap_or_else(|e| panic!("response {i} of {n} dropped: {e}"));
        assert!(raw.starts_with("HTTP/1.1 200"), "response {i}: {raw}");
        assert!(raw.contains(r#""status":"ok""#), "response {i}: {raw}");
    }

    // Phase 3: the fd-leak check. Every client socket is gone; the gauge
    // must drain to exactly the one connection doing the scraping.
    common::await_open_connections(addr, 1.0, Duration::from_secs(30));
    let metrics = common::metrics(addr);
    assert!(
        metric_value(&metrics, "bayonet_http_accepted_total") >= n as f64,
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_http_loop_wakeups_total") > 0.0,
        "{metrics}"
    );

    served.stop();
}
