//! Parameter synthesis (paper §2.3).
//!
//! The cell-selection and witness-extraction core lives in
//! [`bayonet_exact::synthesize_result`]; this module re-exports its types
//! and wraps it in the [`Network`] facade: run exact inference, pick the
//! requested query, synthesize.

pub use bayonet_exact::{Objective, Synthesis, SynthesisOptions};

use crate::error::Error;
use crate::network::Network;

/// Runs exact inference with symbolic parameters and synthesizes parameter
/// values optimizing query `query_idx`.
///
/// # Errors
///
/// Fails if inference fails, the query value is undefined or symbolic in
/// every cell, or `query_idx` is out of range.
///
/// # Examples
///
/// ```no_run
/// use bayonet::{scenarios, synthesize, Objective, Sched};
///
/// let network = scenarios::congestion_example_symbolic(Sched::Uniform)?;
/// let synthesis = synthesize(&network, 0, Objective::Minimize)?;
/// // Minimal congestion on the ECMP-balanced cell:
/// assert!(synthesis.constraint.contains("=="));
/// # Ok::<(), bayonet::Error>(())
/// ```
pub fn synthesize(
    network: &Network,
    query_idx: usize,
    objective: Objective,
) -> Result<Synthesis, Error> {
    synthesize_with(
        network,
        query_idx,
        SynthesisOptions {
            objective,
            positive_params: true,
        },
    )
}

/// Like [`synthesize`], with explicit options.
///
/// # Errors
///
/// As for [`synthesize`].
pub fn synthesize_with(
    network: &Network,
    query_idx: usize,
    opts: SynthesisOptions,
) -> Result<Synthesis, Error> {
    let report = network.exact()?;
    let result = report
        .results
        .get(query_idx)
        .ok_or_else(|| Error::Usage(format!("query index {query_idx} out of range")))?;
    bayonet_exact::synthesize_result(network.model(), result, opts)
        .map_err(|e| Error::Usage(e.to_string()))
}
