//! A shared compute pool: bounded admission for parallel frontier expansion.
//!
//! The exact engine can fan a large frontier out over several worker
//! threads ([`crate::ExactOptions::threads`]). When many inference requests
//! run concurrently (as in `bayonet-serve`), unbounded per-request
//! parallelism would oversubscribe the machine, so requests share one
//! [`ComputePool`]: a request asks for extra workers and is *granted up to
//! as many as are currently idle* ([`ComputePool::lease`]). A big request
//! alone on the server gets the whole pool; under load everyone degrades
//! toward single-threaded — results are byte-identical either way, only
//! wall-clock time changes.
//!
//! The pool also aggregates scheduling telemetry: how many slots are busy
//! right now (occupancy) and how many tasks were stolen across worker
//! deques ([`ComputePool::steals`]), which the serve layer exposes as
//! Prometheus gauges.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cloneable handle to a shared pool of compute slots.
///
/// The pool does not own threads; it is an admission controller. The exact
/// engine spawns scoped worker threads itself and uses the pool only to
/// decide *how many* it may spawn, so slots are never blocked on and a
/// lease can never deadlock.
///
/// # Examples
///
/// ```
/// use bayonet_exact::ComputePool;
///
/// let pool = ComputePool::new(4);
/// let big = pool.lease(3); // wants 3 extra workers, all idle -> granted 3
/// assert_eq!(big.granted(), 3);
/// let small = pool.lease(3); // only 1 slot left
/// assert_eq!(small.granted(), 1);
/// drop(big);
/// assert_eq!(pool.busy(), 1);
/// ```
#[derive(Clone)]
pub struct ComputePool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    capacity: usize,
    busy: AtomicUsize,
    steals: AtomicU64,
    leases: AtomicU64,
}

/// A point-in-time snapshot of pool telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total compute slots.
    pub capacity: usize,
    /// Slots currently leased.
    pub busy: usize,
    /// Cumulative tasks stolen across worker deques / the shared injector.
    pub steals: u64,
    /// Cumulative leases granted (including zero-slot grants).
    pub leases: u64,
}

impl ComputePool {
    /// Creates a pool with `capacity` slots (clamped to at least 1).
    pub fn new(capacity: usize) -> ComputePool {
        ComputePool {
            inner: Arc::new(PoolInner {
                capacity: capacity.max(1),
                busy: AtomicUsize::new(0),
                steals: AtomicU64::new(0),
                leases: AtomicU64::new(0),
            }),
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Slots currently leased.
    pub fn busy(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// Cumulative number of stolen expansion tasks.
    pub fn steals(&self) -> u64 {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// A telemetry snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            capacity: self.inner.capacity,
            busy: self.busy(),
            steals: self.steals(),
            leases: self.inner.leases.load(Ordering::Relaxed),
        }
    }

    /// Grants up to `requested` idle slots, never blocking: the grant is
    /// `min(requested, capacity - busy)` at the moment of the call and may
    /// be zero. The slots return to the pool when the lease is dropped.
    pub fn lease(&self, requested: usize) -> PoolLease {
        let mut granted;
        let mut current = self.inner.busy.load(Ordering::Relaxed);
        loop {
            granted = requested.min(self.inner.capacity.saturating_sub(current));
            if granted == 0 {
                break;
            }
            match self.inner.busy.compare_exchange_weak(
                current,
                current + granted,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        self.inner.leases.fetch_add(1, Ordering::Relaxed);
        PoolLease {
            pool: self.clone(),
            granted,
        }
    }

    /// Folds a run's steal count into the pool's cumulative counter.
    pub fn add_steals(&self, n: u64) {
        if n > 0 {
            self.inner.steals.fetch_add(n, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("ComputePool")
            .field("capacity", &s.capacity)
            .field("busy", &s.busy)
            .field("steals", &s.steals)
            .finish()
    }
}

/// An in-flight grant of compute slots; returns them on drop.
pub struct PoolLease {
    pool: ComputePool,
    granted: usize,
}

impl PoolLease {
    /// Number of extra workers this lease allows.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.pool
                .inner
                .busy
                .fetch_sub(self.granted, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_never_exceed_capacity() {
        let pool = ComputePool::new(3);
        let a = pool.lease(2);
        let b = pool.lease(2);
        let c = pool.lease(2);
        assert_eq!(a.granted(), 2);
        assert_eq!(b.granted(), 1);
        assert_eq!(c.granted(), 0);
        assert_eq!(pool.busy(), 3);
        drop(b);
        assert_eq!(pool.busy(), 2);
        assert_eq!(pool.lease(5).granted(), 1);
        drop(a);
        drop(c);
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.stats().leases, 4);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let pool = ComputePool::new(0);
        assert_eq!(pool.capacity(), 1);
        assert_eq!(pool.lease(8).granted(), 1);
    }

    #[test]
    fn steals_accumulate() {
        let pool = ComputePool::new(2);
        pool.add_steals(0);
        pool.add_steals(5);
        pool.add_steals(2);
        assert_eq!(pool.steals(), 7);
    }

    #[test]
    fn concurrent_leases_stay_bounded() {
        let pool = ComputePool::new(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let lease = pool.lease(3);
                        assert!(pool.busy() <= pool.capacity());
                        drop(lease);
                    }
                });
            }
        });
        assert_eq!(pool.busy(), 0);
    }
}
