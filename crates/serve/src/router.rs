//! Multi-process shard routing: `serve --replicas N`.
//!
//! The router process binds the public address and forks `N` replica
//! processes, each a full single-replica server on an ephemeral loopback
//! port with its own worker pool, LRU, and persistent-cache shard
//! (`<cache_dir>/shard-<i>`). Requests are routed by a consistent hash of
//! the **canonical pretty-printed program**, the same normalization the
//! result cache keys on — so two textually different spellings of one
//! program land on the same replica, every replica's caches stay disjoint,
//! and no program is ever compiled on two replicas.
//!
//! Mechanics:
//!
//! * **Spawning** — replicas re-execute the current binary (or
//!   [`crate::ServerConfig::replica_exe`]) with the serialized config in
//!   the `BAYONET_REPLICA_SPEC` environment variable; [`replica_entry`]
//!   at the top of `main` detects the variable, runs the replica, and
//!   never returns. Each replica announces its bound address on stdout
//!   and holds its stdin open as a parent-death watchdog: when the router
//!   exits for any reason the pipe closes and the replica shuts down.
//! * **Routing** — [`RouterCore::pick`] hashes the shard key onto a ring
//!   of virtual points (FNV-1a, [`VIRTUAL_POINTS`] per replica).
//!   `/healthz`, `/metrics`, and `/v1/replicas` are answered by the
//!   router itself; everything else is proxied byte-for-byte with an
//!   `X-Bayonet-Replica: <i>` header injected into the response head.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use bayonet_lang::{parse as parse_program, pretty_program};

use crate::http::{Request, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::server::ServerConfig;

/// Environment variable carrying a replica's serialized configuration.
/// Its presence is what turns a process into a replica.
pub(crate) const REPLICA_ENV: &str = "BAYONET_REPLICA_SPEC";

/// Virtual points per replica on the consistent-hash ring. Enough that
/// load spreads within a few percent of even; few enough that the ring
/// stays a cache-resident array.
const VIRTUAL_POINTS: usize = 64;

/// How long the router waits for a freshly spawned replica to announce
/// its bound address before declaring the spawn failed.
const REPLICA_START_TIMEOUT: Duration = Duration::from_secs(30);

/// 64-bit FNV-1a: the house hash for stable, dependency-free hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// A consistent-hash ring over replica indices.
pub(crate) struct ShardRing {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    pub(crate) fn new(replicas: usize) -> ShardRing {
        let mut points = Vec::with_capacity(replicas * VIRTUAL_POINTS);
        for replica in 0..replicas {
            for v in 0..VIRTUAL_POINTS {
                points.push((fnv1a(format!("replica:{replica}:{v}").as_bytes()), replica));
            }
        }
        points.sort_unstable();
        ShardRing { points }
    }

    /// The replica owning `key`: the first ring point at or after it,
    /// wrapping at the top.
    pub(crate) fn shard_for(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(point, _)| point < key);
        let (_, replica) = self.points[idx % self.points.len()];
        replica
    }
}

/// The shard key of a request: FNV-1a of the canonical pretty-printed
/// program when the body carries a parseable `source` (top-level for the
/// inference endpoints, first item's for a batch), of the raw source text
/// when it parses as JSON but not as a program, and of path + body
/// otherwise. Canonicalizing first means formatting differences cannot
/// split one program across two replica caches.
pub(crate) fn shard_key(request: &Request) -> u64 {
    if let Ok(text) = std::str::from_utf8(&request.body) {
        if let Ok(doc) = json::parse(text) {
            let source = doc.get("source").and_then(Json::as_str).or_else(|| {
                doc.get("items")
                    .and_then(|items| items.get_index(0))
                    .and_then(|item| item.get("source"))
                    .and_then(Json::as_str)
            });
            if let Some(source) = source {
                if let Ok(program) = parse_program(source) {
                    return fnv1a(pretty_program(&program).as_bytes());
                }
                return fnv1a(source.as_bytes());
            }
        }
    }
    let mut seed = request.path.clone().into_bytes();
    seed.extend_from_slice(&request.body);
    fnv1a(&seed)
}

/// The router's routing state, owned by the event loop.
pub(crate) struct RouterCore {
    replicas: Vec<SocketAddr>,
    ring: ShardRing,
}

impl RouterCore {
    pub(crate) fn new(replicas: Vec<SocketAddr>) -> RouterCore {
        let ring = ShardRing::new(replicas.len());
        RouterCore { replicas, ring }
    }

    /// Picks the replica for a request.
    pub(crate) fn pick(&self, request: &Request) -> (usize, SocketAddr) {
        let replica = self.ring.shard_for(shard_key(request));
        (replica, self.replicas[replica])
    }

    /// Endpoints the router answers itself: its own health, its own
    /// metrics (routing counters and `bayonet_http_*` series), and the
    /// replica table so clients and tests can reach shards directly.
    pub(crate) fn respond_locally(
        &self,
        request: &Request,
        metrics: &Arc<Metrics>,
    ) -> Option<Response> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Some(Response::json(200, r#"{"status":"ok"}"#)),
            ("GET", "/metrics") => Some(
                Response::text(200, metrics.render())
                    .with_content_type("text/plain; version=0.0.4; charset=utf-8"),
            ),
            ("GET", "/v1/replicas") => {
                let entries: Vec<String> = self
                    .replicas
                    .iter()
                    .enumerate()
                    .map(|(i, addr)| format!(r#"{{"index":{i},"addr":"{addr}"}}"#))
                    .collect();
                Some(Response::json(
                    200,
                    format!(r#"{{"ok":true,"replicas":[{}]}}"#, entries.join(",")),
                ))
            }
            _ => None,
        }
    }
}

/// One spawned replica process. Dropping the struct (or calling
/// [`Replica::stop`]) closes the stdin pipe, which the replica treats as
/// a shutdown order; stop also reaps the process.
pub(crate) struct Replica {
    pub(crate) addr: SocketAddr,
    child: Child,
}

impl Replica {
    /// Orders a graceful shutdown and reaps the process, killing it if it
    /// ignores the order for five seconds.
    pub(crate) fn stop(mut self) {
        drop(self.child.stdin.take()); // EOF on stdin = shutdown order
        for _ in 0..50 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(100)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Serializes the replica-side config. `cache_dir` goes last so the only
/// field that may contain arbitrary characters never needs escaping.
fn encode_spec(config: &ServerConfig, index: usize) -> String {
    let mut spec = format!(
        "index={index};threads={};cache_entries={};queue={};io_ms={};max_conns={};cache_max_bytes={}",
        config.threads,
        config.cache_entries,
        config.queue_capacity,
        config.io_timeout.as_millis(),
        config.max_connections,
        config.cache_max_bytes,
    );
    if let Some(dir) = &config.cache_dir {
        spec.push_str(";cache_dir=");
        spec.push_str(&dir.join(format!("shard-{index}")).to_string_lossy());
    }
    spec
}

/// Parses a spec back into a single-replica [`ServerConfig`] bound to an
/// ephemeral loopback port.
fn decode_spec(spec: &str) -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        replicas: 1,
        ..ServerConfig::default()
    };
    let mut rest = spec;
    while !rest.is_empty() {
        let (field, tail) = match rest.split_once(';') {
            Some((field, tail)) => (field, tail),
            None => (rest, ""),
        };
        let Some((key, value)) = field.split_once('=') else {
            rest = tail;
            continue;
        };
        match key {
            "threads" => config.threads = value.parse().unwrap_or(config.threads),
            "cache_entries" => config.cache_entries = value.parse().unwrap_or(config.cache_entries),
            "queue" => config.queue_capacity = value.parse().unwrap_or(config.queue_capacity),
            "io_ms" => {
                if let Ok(ms) = value.parse() {
                    config.io_timeout = Duration::from_millis(ms);
                }
            }
            "max_conns" => {
                config.max_connections = value.parse().unwrap_or(config.max_connections);
            }
            "cache_max_bytes" => {
                config.cache_max_bytes = value.parse().unwrap_or(config.cache_max_bytes);
            }
            // Everything after `cache_dir=` is the path, semicolons and all.
            "cache_dir" => {
                let mut dir = value.to_string();
                if !tail.is_empty() {
                    dir.push(';');
                    dir.push_str(tail);
                }
                config.cache_dir = Some(PathBuf::from(dir));
                break;
            }
            _ => {}
        }
        rest = tail;
    }
    config
}

/// Spawns the replica fleet for a router. Each child re-executes
/// `replica_exe` (default: the current binary, which must call
/// [`replica_entry`] first thing in `main`) and reports its bound address
/// on stdout.
pub(crate) fn spawn_replicas(config: &ServerConfig) -> io::Result<Vec<Replica>> {
    let exe = match &config.replica_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };
    let mut fleet = Vec::with_capacity(config.replicas);
    for index in 0..config.replicas {
        match spawn_one(&exe, config, index) {
            Ok(replica) => fleet.push(replica),
            Err(e) => {
                for replica in fleet {
                    replica.stop();
                }
                return Err(e);
            }
        }
    }
    Ok(fleet)
}

fn spawn_one(exe: &PathBuf, config: &ServerConfig, index: usize) -> io::Result<Replica> {
    let mut child = Command::new(exe)
        .env(REPLICA_ENV, encode_spec(config, index))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout piped");

    // The announcement read happens on a helper thread so a replica that
    // wedges before binding cannot hang the router forever.
    let (tx, rx) = std::sync::mpsc::channel::<io::Result<SocketAddr>>();
    std::thread::spawn(move || {
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        let result = match lines.read_line(&mut line) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "replica exited before announcing its address",
            )),
            Ok(_) => line
                .trim()
                .strip_prefix("BAYONET_REPLICA_ADDR ")
                .and_then(|addr| addr.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad replica announcement: {line:?}"),
                    )
                }),
            Err(e) => Err(e),
        };
        let _ = tx.send(result);
        // Keep draining stdout so the replica never blocks on a full pipe.
        let mut sink = [0u8; 4096];
        while matches!(lines.read(&mut sink), Ok(n) if n > 0) {}
    });

    match rx.recv_timeout(REPLICA_START_TIMEOUT) {
        Ok(Ok(addr)) => Ok(Replica { addr, child }),
        Ok(Err(e)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("replica {index} did not start within {REPLICA_START_TIMEOUT:?}"),
            ))
        }
    }
}

/// The replica-side entry hook. **Every binary that may host replicas must
/// call this first in `main`**; when `BAYONET_REPLICA_SPEC` is present the
/// process becomes a replica server and this function never returns.
///
/// The replica binds an ephemeral loopback port, announces it as
/// `BAYONET_REPLICA_ADDR <addr>` on stdout, then blocks reading stdin:
/// EOF there (the router dropping the pipe, or dying) is the shutdown
/// order.
pub fn replica_entry() {
    let Ok(spec) = std::env::var(REPLICA_ENV) else {
        return;
    };
    let config = decode_spec(&spec);
    let code = match crate::server::start(config) {
        Ok(handle) => {
            println!("BAYONET_REPLICA_ADDR {}", handle.addr());
            let _ = io::stdout().flush();
            let mut sink = [0u8; 64];
            let mut stdin = io::stdin().lock();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            handle.shutdown();
            0
        }
        Err(e) => {
            eprintln!("bayonet replica failed to start: {e}");
            1
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_replicas() {
        let ring = ShardRing::new(4);
        let again = ShardRing::new(4);
        let mut seen = [false; 4];
        for i in 0..10_000u64 {
            let key = fnv1a(&i.to_le_bytes());
            let shard = ring.shard_for(key);
            assert_eq!(shard, again.shard_for(key));
            seen[shard] = true;
        }
        assert!(seen.iter().all(|&s| s), "all replicas own some keyspace");
    }

    #[test]
    fn ring_load_is_roughly_even() {
        let ring = ShardRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[ring.shard_for(fnv1a(&i.to_le_bytes()))] += 1;
        }
        for &c in &counts {
            // Within a factor of two of perfectly even is plenty for a
            // cache-sharding ring with 64 virtual points per replica.
            assert!((5_000..20_000).contains(&c), "skewed ring: {counts:?}");
        }
    }

    #[test]
    fn shard_key_normalizes_program_formatting() {
        let a = Request {
            method: "POST".into(),
            path: "/v1/run".into(),
            headers: vec![],
            body: br#"{"source":"packet_fields { dst }\ntopology { nodes { A } links { } }\nprograms { A -> p }\ninit { packet -> (A, pt1); }\nquery probability(true);\ndef p(pkt, pt) { drop; }"}"#.to_vec(),
        };
        let b = Request {
            method: "POST".into(),
            path: "/v1/run".into(),
            headers: vec![],
            body: br#"{"source":"packet_fields { dst }   \n\n\ntopology { nodes { A } links { } }\nprograms { A -> p }\ninit { packet -> (A, pt1); }\nquery probability(true);\ndef p(pkt, pt) { drop; }"}"#.to_vec(),
        };
        assert_eq!(shard_key(&a), shard_key(&b));
    }

    #[test]
    fn spec_roundtrips_through_encode_decode() {
        let config = ServerConfig {
            threads: 3,
            cache_entries: 17,
            queue_capacity: 9,
            io_timeout: Duration::from_millis(2500),
            max_connections: 123,
            cache_dir: Some(PathBuf::from("/tmp/bayonet cache;odd")),
            cache_max_bytes: 4096,
            ..ServerConfig::default()
        };
        let decoded = decode_spec(&encode_spec(&config, 2));
        assert_eq!(decoded.threads, 3);
        assert_eq!(decoded.cache_entries, 17);
        assert_eq!(decoded.queue_capacity, 9);
        assert_eq!(decoded.io_timeout, Duration::from_millis(2500));
        assert_eq!(decoded.max_connections, 123);
        assert_eq!(decoded.cache_max_bytes, 4096);
        assert_eq!(
            decoded.cache_dir,
            Some(PathBuf::from("/tmp/bayonet cache;odd/shard-2"))
        );
        assert_eq!(decoded.addr, "127.0.0.1:0");
        assert_eq!(decoded.replicas, 1);
    }
}
