//! Property tests of the replay enumerator: for any (deterministic-given-
//! the-driver) computation, branch weights sum to 1 and match direct
//! probability calculations.

use bayonet_exact::enumerate_eval;
use bayonet_net::ChoiceDriver;
use bayonet_num::Rat;
use bayonet_symbolic::Guard;
use proptest::prelude::*;

/// A small random program over the driver: a sequence of draw instructions
/// whose results select the next instruction (data-dependent branching).
#[derive(Clone, Debug)]
enum Instr {
    Flip(u8, u8),    // flip(a / b) with 0 < a < b
    Uniform(u8, u8), // uniformInt(lo, lo + span)
}

fn arb_program() -> impl Strategy<Value = Vec<Instr>> {
    let instr = prop_oneof![
        (1u8..4, 4u8..6).prop_map(|(a, b)| Instr::Flip(a, b)),
        (0u8..3, 1u8..3).prop_map(|(lo, span)| Instr::Uniform(lo, span)),
    ];
    proptest::collection::vec(instr, 1..6)
}

fn run_program(
    program: &[Instr],
    driver: &mut dyn ChoiceDriver,
) -> Result<i64, bayonet_net::SemanticsError> {
    let mut acc = 0i64;
    let mut skip_next = false;
    for instr in program {
        if skip_next {
            skip_next = false;
            continue;
        }
        match instr {
            Instr::Flip(a, b) => {
                let heads = driver.flip(&Rat::ratio(*a as i64, *b as i64))?;
                acc = acc * 2 + i64::from(heads);
                // Data-dependent control flow: heads skips the next draw.
                skip_next = heads;
            }
            Instr::Uniform(lo, span) => {
                let v = driver.uniform_int(*lo as i64, (*lo + *span) as i64)?;
                acc = acc * 7 + v;
                skip_next = v % 2 == 0;
            }
        }
    }
    Ok(acc)
}

proptest! {
    /// Branch weights always form a probability distribution.
    #[test]
    fn weights_sum_to_one(program in arb_program()) {
        let branches =
            enumerate_eval(&Guard::top(), true, |d| run_program(&program, d)).unwrap();
        let total: Rat = branches.iter().fold(Rat::zero(), |acc, b| acc + &b.weight);
        prop_assert_eq!(total, Rat::one());
        for b in &branches {
            prop_assert!(b.weight.is_positive());
            prop_assert!(b.guard.is_top(), "no symbolic splits here");
        }
    }

    /// The enumerated distribution of results matches a brute-force
    /// computation over all outcome sequences for straight-line prefixes.
    #[test]
    fn single_flip_probability_is_exact(a in 1u8..4, b in 4u8..6) {
        let program = vec![Instr::Flip(a, b)];
        let branches =
            enumerate_eval(&Guard::top(), true, |d| run_program(&program, d)).unwrap();
        let p_heads: Rat = branches
            .iter()
            .filter(|br| br.result == 1)
            .fold(Rat::zero(), |acc, br| acc + &br.weight);
        prop_assert_eq!(p_heads, Rat::ratio(a as i64, b as i64));
    }

    /// Enumeration is deterministic: two runs produce identical branches.
    #[test]
    fn enumeration_is_deterministic(program in arb_program()) {
        let run = || {
            let mut branches =
                enumerate_eval(&Guard::top(), true, |d| run_program(&program, d)).unwrap();
            branches.sort_by_key(|b| b.result);
            branches
                .into_iter()
                .map(|b| (b.result, b.weight))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
