//! Seeded malformed-HTTP generation — **test support**, the protocol-level
//! sibling of `bayonet_lang::testgen`.
//!
//! Produces raw request byte strings covering the classic ways clients go
//! wrong on the wire: non-numeric and conflicting `Content-Length`
//! headers, bodies declared beyond the size limit, heads blown past
//! [`crate::MAX_HEAD_BYTES`], pipelined trailing garbage, invalid UTF-8 in
//! JSON bodies, mangled request lines, colon-less headers, torn bodies,
//! and plain binary noise. The server's contract under all of them: a
//! well-formed HTTP error response or a clean close — never a panic, a
//! wedged event loop, or a leaked fd.
//!
//! The generator is the same tiny self-contained LCG as `testgen`, so a
//! seed fully determines the byte string and every failure reproduces
//! from the seed alone.

/// A deterministic generator of hostile HTTP request bytes.
///
/// # Examples
///
/// ```
/// use bayonet_serve::fuzz::RequestFuzzGen;
///
/// let bytes = RequestFuzzGen::new(7).generate();
/// // Same seed, same bytes:
/// assert_eq!(bytes, RequestFuzzGen::new(7).generate());
/// ```
pub struct RequestFuzzGen {
    state: u64,
}

impl RequestFuzzGen {
    /// Creates a generator; the seed fully determines the output.
    pub fn new(seed: u64) -> RequestFuzzGen {
        // Splash the seed so small seeds don't produce correlated streams.
        RequestFuzzGen {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        }
    }

    /// Next raw 64-bit draw (an LCG with Knuth's MMIX constants, taking
    /// the high bits which have the longest period).
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// `len` bytes of unrestricted binary noise.
    fn noise(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xFF) as u8).collect()
    }

    /// A syntactically plausible request line.
    fn request_line(&mut self) -> String {
        const METHODS: [&str; 5] = ["GET", "POST", "PUT", "get", "P\u{0}ST"];
        const PATHS: [&str; 5] = ["/healthz", "/v1/run", "/v1/batch", "/", "/..//x"];
        format!(
            "{} {} HTTP/1.1",
            METHODS[self.below(METHODS.len() as u64) as usize],
            PATHS[self.below(PATHS.len() as u64) as usize],
        )
    }

    /// Generates one request byte string. Shapes rotate through the
    /// malformed-input taxonomy; a few are only *suspicious* (pipelined
    /// trailers, odd methods) so the corpus also exercises the boundary
    /// between reject and accept.
    pub fn generate(&mut self) -> Vec<u8> {
        match self.below(10) {
            // Valid framing, invalid UTF-8 where JSON should be.
            0 => {
                let mut body = br#"{"source":""#.to_vec();
                body.extend((0..8).map(|_| 0xC0u8 | (self.below(64) as u8)));
                body.extend_from_slice(b"\"}");
                let mut req = format!(
                    "POST /v1/run HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes();
                req.extend_from_slice(&body);
                req
            }
            // Content-Length that does not parse (or conflicts).
            1 => {
                const BAD: [&str; 4] = ["banana", "-1", "0x10", "99999999999999999999999999"];
                let value = if self.below(4) == 0 {
                    "5\r\nContent-Length: 7".to_string() // conflicting pair
                } else {
                    BAD[self.below(BAD.len() as u64) as usize].to_string()
                };
                format!(
                    "{}\r\nHost: fuzz\r\nContent-Length: {value}\r\n\r\nhello",
                    self.request_line()
                )
                .into_bytes()
            }
            // Body declared beyond MAX_BODY_BYTES — rejected from the
            // head alone, no body bytes needed.
            2 => format!(
                "POST /v1/run HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
                crate::MAX_BODY_BYTES as u64 + 1 + self.below(1 << 20)
            )
            .into_bytes(),
            // Oversized head: one header value blown past MAX_HEAD_BYTES.
            3 => {
                let pad = crate::MAX_HEAD_BYTES + 1 + self.below(16 * 1024) as usize;
                let mut req = format!("{}\r\nX-Pad: ", self.request_line()).into_bytes();
                req.extend(std::iter::repeat_n(b'a', pad));
                req.extend_from_slice(b"\r\n\r\n");
                req
            }
            // A well-formed request with pipelined trailing garbage.
            4 => {
                let mut req = b"GET /healthz HTTP/1.1\r\nHost: fuzz\r\n\r\n".to_vec();
                let len = 1 + self.below(64) as usize;
                let trailer = self.noise(len);
                req.extend_from_slice(&trailer);
                req
            }
            // Unstructured binary noise.
            5 => {
                let len = 1 + self.below(256) as usize;
                self.noise(len)
            }
            // Mangled request line.
            6 => {
                const LINES: [&str; 5] = [
                    "GET",
                    "GET /healthz",
                    " / HTTP/1.1",
                    "GET\t/healthz\tHTTP/1.1",
                    "HTTP/1.1 200 OK", // a *response* line, rudely
                ];
                format!(
                    "{}\r\nHost: fuzz\r\n\r\n",
                    LINES[self.below(LINES.len() as u64) as usize]
                )
                .into_bytes()
            }
            // Header lines without a colon (or with an empty name).
            7 => {
                const HEADERS: [&str; 4] =
                    ["NoColonHere", ": empty-name", "Tab\tSeparated value", "="];
                format!(
                    "{}\r\n{}\r\nHost: fuzz\r\n\r\n",
                    self.request_line(),
                    HEADERS[self.below(HEADERS.len() as u64) as usize]
                )
                .into_bytes()
            }
            // Torn body: head promises more bytes than will ever arrive.
            8 => {
                let declared = 64 + self.below(512);
                let sent = self.below(32) as usize;
                let mut req = format!(
                    "POST /v1/run HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {declared}\r\n\r\n"
                )
                .into_bytes();
                req.extend(std::iter::repeat_n(b'{', sent));
                req
            }
            // Huge request line (path far past any sane length).
            _ => {
                let mut req = b"GET /".to_vec();
                req.extend(std::iter::repeat_n(
                    b'z',
                    crate::MAX_HEAD_BYTES + self.below(8192) as usize,
                ));
                req.extend_from_slice(b" HTTP/1.1\r\nHost: fuzz\r\n\r\n");
                req
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0, 1, 7, 999, u64::MAX] {
            assert_eq!(
                RequestFuzzGen::new(seed).generate(),
                RequestFuzzGen::new(seed).generate()
            );
        }
    }

    #[test]
    fn corpus_covers_every_shape() {
        let mut shapes = std::collections::HashSet::new();
        for seed in 0..100 {
            let mut gen = RequestFuzzGen::new(seed);
            shapes.insert(gen.below(10));
        }
        assert_eq!(shapes.len(), 10, "seeds 0..100 miss shapes: {shapes:?}");
    }
}
