//! Table-driven request-validation tests: malformed `threads` and
//! `timeout_ms` values must produce structured `400` responses — never a
//! panic, and never a silent fall-back to the default.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bayonet_serve::{parse_json, start, Json, ServerConfig};

mod common;

const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

fn http(addr: SocketAddr, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!(
        "POST /v1/run HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

/// Raw request body with `source` set to the tiny program and one extra
/// field spliced in verbatim (so the table can express wrong types,
/// fractions, and negatives that `Json` builders would normalize away).
fn body_with(field: &str) -> String {
    let source = Json::Str(TINY.into()).to_string();
    format!("{{\"source\":{source},{field}}}")
}

#[test]
fn malformed_knobs_are_structured_400s() {
    #[rustfmt::skip]
    let cases: &[(&str, &str)] = &[
        // (raw field, expected message fragment)
        ("\"threads\":0",            "`threads` must be between 1 and 64, got 0"),
        ("\"threads\":65",           "`threads` must be between 1 and 64, got 65"),
        ("\"threads\":1000000000",   "`threads` must be between 1 and 64"),
        ("\"threads\":-1",           "`threads` must be a nonnegative integer"),
        ("\"threads\":1.5",          "`threads` must be a nonnegative integer"),
        ("\"threads\":\"four\"",     "`threads` must be a nonnegative integer"),
        ("\"threads\":true",         "`threads` must be a nonnegative integer"),
        ("\"threads\":[2]",          "`threads` must be a nonnegative integer"),
        ("\"timeout_ms\":0",         "`timeout_ms` must be between 1 and 600000, got 0"),
        ("\"timeout_ms\":600001",    "`timeout_ms` must be between 1 and 600000"),
        ("\"timeout_ms\":-5",        "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":0.25",      "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":\"1s\"",    "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":{}",        "`timeout_ms` must be a nonnegative integer"),
        ("\"thread\":2",             "unknown request field `thread`"),
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    for (field, expected) in cases {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 400, "case {field}: expected 400, got body {body}");
        let doc =
            parse_json(&body).unwrap_or_else(|e| panic!("case {field}: bad json {e}: {body}"));
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(false),
            "case {field}: {body}"
        );
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {field}: no error object: {body}"));
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {field}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(
            message.contains(expected),
            "case {field}: message {message:?} does not mention {expected:?}"
        );
    }

    handle.shutdown();
}

/// Unknown top-level fields (typos like `"cache": false`) must be loud
/// structured 400s, never silently ignored: the error names the offending
/// key both in the message and machine-readably in `error.field`.
#[test]
fn unknown_fields_are_named_structured_400s() {
    #[rustfmt::skip]
    let cases: &[(&str, &str)] = &[
        // (raw extra field, expected `error.field`)
        ("\"cache\":false",        "cache"),
        ("\"Source\":\"x\"",       "Source"),
        ("\"time_out_ms\":5",      "time_out_ms"),
        ("\"particle\":100",       "particle"),
        ("\"binding\":{}",         "binding"),
        ("\"extra\":null",         "extra"),
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    for (field, name) in cases {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 400, "case {field}: expected 400, got body {body}");
        let doc = parse_json(&body).expect("json body");
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {field}: no error object: {body}"));
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {field}: {body}"
        );
        assert_eq!(
            error.get("field").and_then(Json::as_str),
            Some(*name),
            "case {field}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(
            message.contains(&format!("unknown request field `{name}`")),
            "case {field}: message {message:?}"
        );
        // The message also lists the accepted fields, so a typo is
        // self-correcting from the error alone.
        assert!(
            message.contains("known fields: source, engine"),
            "{message}"
        );
    }

    // Known fields with the error-producing values spliced *as values* are
    // not unknown-field errors; sanity-check one to pin the distinction.
    let (status, body) = http(addr, &body_with("\"engine\":\"warp\""));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown engine"), "{body}");

    handle.shutdown();
}

#[test]
fn edge_values_are_accepted_not_rejected() {
    let handle = start(ServerConfig {
        threads: 2,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Boundary values inside the contract must work; `threads` beyond the
    // pool is clamped (not rejected), and `null` means "not provided".
    for field in [
        "\"threads\":1",
        "\"threads\":64",
        "\"threads\":null",
        "\"timeout_ms\":600000",
        "\"timeout_ms\":null",
    ] {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 200, "case {field}: {body}");
        let doc = parse_json(&body).expect("json body");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "case {field}: {body}"
        );
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("1/3"), "case {field}: {text}");
    }

    handle.shutdown();
}
