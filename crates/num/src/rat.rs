//! Exact rational numbers.
//!
//! [`Rat`] is the value domain of the Bayonet semantics (`Vals = Q`, paper
//! Figure 4) and the probability domain of the exact inference engine. All
//! operations are exact; values are kept in lowest terms with a positive
//! denominator.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, Sign};
use crate::biguint::{BigUint, ParseNumError};

/// An exact rational number in lowest terms.
///
/// Invariants: the denominator is strictly positive, `gcd(|num|, den) == 1`,
/// and zero is represented as `0/1`.
///
/// # Examples
///
/// ```
/// use bayonet_num::Rat;
///
/// let half = Rat::ratio(1, 2);
/// let third = Rat::ratio(1, 3);
/// assert_eq!(&half + &third, Rat::ratio(5, 6));
/// assert_eq!((&half * &third).to_string(), "1/6");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigUint,
}

impl Rat {
    /// The value 0.
    pub fn zero() -> Self {
        Rat {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rat {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let num = if den.is_negative() { -num } else { num };
        let den = den.into_magnitude();
        let mut r = Rat { num, den };
        r.reduce();
        r
    }

    /// Builds `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn ratio(num: i64, den: i64) -> Self {
        Rat::new(BigInt::from(num), BigInt::from(den))
    }

    /// Builds an integer-valued rational.
    pub fn int(v: i64) -> Self {
        Rat {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }

    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.den = BigUint::one();
            return;
        }
        let g = self.num.magnitude().gcd(&self.den);
        if !g.is_one() {
            let (nm, _) = self.num.magnitude().div_rem(&g);
            let (dm, _) = self.den.div_rem(&g);
            self.num = BigInt::from_sign_magnitude(self.num.sign(), nm);
            self.den = dm;
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (strictly positive) denominator.
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat {
            num: BigInt::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self / other`, or `None` if `other` is zero.
    pub fn checked_div(&self, other: &Rat) -> Option<Rat> {
        if other.is_zero() {
            None
        } else {
            Some(self * &other.recip())
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&BigInt::from(self.den.clone()));
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Converts to `i64` if the value is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so both operands fit comfortably in f64 before dividing.
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        let shift = (nb.max(db) - 900).max(0) as u64;
        let n = (self.num.magnitude() >> shift).to_f64();
        let d = (&self.den >> shift).to_f64();
        let q = if d == 0.0 { f64::INFINITY } else { n / d };
        if self.is_negative() {
            -q
        } else {
            q
        }
    }

    /// Raises `self` to an integer power (negative powers invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rat {
        if exp < 0 {
            return self.recip().pow(-exp);
        }
        Rat {
            num: self.num.pow(exp as u32),
            den: self.den.pow(exp as u32),
        }
    }

    /// Truthiness under the Bayonet convention: any nonzero value is true.
    pub fn is_true(&self) -> bool {
        !self.is_zero()
    }

    /// 0/1 encoding of a boolean, the value domain of comparisons.
    pub fn from_bool(b: bool) -> Rat {
        if b {
            Rat::one()
        } else {
            Rat::zero()
        }
    }

    fn add_ref(&self, other: &Rat) -> Rat {
        // a/b + c/d = (a*d + c*b) / (b*d), then reduce.
        let num = &self.num * &BigInt::from(other.den.clone())
            + &other.num * &BigInt::from(self.den.clone());
        let den = &self.den * &other.den;
        let mut r = Rat { num, den };
        r.reduce();
        r
    }

    fn mul_ref(&self, other: &Rat) -> Rat {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = self.num.magnitude().gcd(&other.den);
        let g2 = other.num.magnitude().gcd(&self.den);
        let (n1, _) = self.num.magnitude().div_rem(&g1);
        let (d2, _) = other.den.div_rem(&g1);
        let (n2, _) = other.num.magnitude().div_rem(&g2);
        let (d1, _) = self.den.div_rem(&g2);
        let mag = &n1 * &n2;
        let sign = match (self.num.sign(), other.num.sign()) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        Rat {
            num: BigInt::from_sign_magnitude(if mag.is_zero() { Sign::Zero } else { sign }, mag),
            den: &d1 * &d2,
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<BigInt> for Rat {
    fn from(num: BigInt) -> Self {
        Rat {
            num,
            den: BigUint::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::int(v)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Self {
        Rat::int(v as i64)
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0).
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                let f: fn(&Rat, &Rat) -> Rat = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, |a, b| a.add_ref(b));
forward_rat_binop!(Sub, sub, |a, b| a.add_ref(&-b));
forward_rat_binop!(Mul, mul, |a, b| a.mul_ref(b));
forward_rat_binop!(Div, div, |a, b| {
    a.checked_div(b).expect("rational division by zero")
});

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = self.add_ref(&-rhs);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = self.mul_ref(rhs);
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl FromStr for Rat {
    type Err = ParseNumError;

    /// Parses `"a"`, `"a/b"`, or a decimal like `"0.125"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseNumError::new("zero denominator"));
            }
            return Ok(Rat::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int_val: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac_mag: BigUint = frac_part.parse()?;
            let scale = BigUint::from(10u64).pow(frac_part.len() as u32);
            let frac = Rat::new(BigInt::from(frac_mag), BigInt::from(scale));
            let base = Rat::from(int_val);
            return Ok(if negative { base - frac } else { base + frac });
        }
        Ok(Rat::from(s.parse::<BigInt>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(0, -5).to_string(), "0");
    }

    #[test]
    fn field_laws_small() {
        let vals = [
            r(-3, 2),
            r(-1, 3),
            Rat::zero(),
            r(1, 7),
            Rat::one(),
            r(5, 2),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                for c in &vals {
                    assert_eq!(&(a + b) + c, a + &(b + c));
                    assert_eq!(a * &(b + c), &(a * b) + &(a * c));
                }
            }
        }
    }

    #[test]
    fn arithmetic_examples() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rat::int(2));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rat::one());
        assert!(r(2, 1) > r(1000, 501));
    }

    #[test]
    fn recip_and_checked_div() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(Rat::one().checked_div(&Rat::zero()), None);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(Rat::int(5).floor(), BigInt::from(5));
        assert_eq!(Rat::int(5).ceil(), BigInt::from(5));
    }

    #[test]
    fn pow_negative_exponent() {
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Rat::one());
        assert_eq!(r(2, 3).pow(3), r(8, 27));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/6".parse::<Rat>().unwrap(), r(1, 2));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("0.25".parse::<Rat>().unwrap(), r(1, 4));
        assert_eq!("-0.5".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("42".parse::<Rat>().unwrap(), Rat::int(42));
        assert!("1/0".parse::<Rat>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Rat::int(-7).to_string(), "-7");
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-1, 4).to_f64(), -0.25);
        // A ratio of two huge numbers still converts accurately.
        let big = Rat::new(
            BigInt::from(3) * BigInt::from(10).pow(50),
            BigInt::from(2) * BigInt::from(10).pow(50),
        );
        assert_eq!(big.to_f64(), 1.5);
    }

    #[test]
    fn paper_congestion_fraction_displays_exactly() {
        // The paper's Section 2.2 exact congestion probability.
        let p: Rat = "30378810105265/67706637778944".parse().unwrap();
        assert!((p.to_f64() - 0.4487).abs() < 1e-4);
        assert_eq!(p.to_string(), "30378810105265/67706637778944");
    }

    #[test]
    fn truthiness() {
        assert!(!Rat::zero().is_true());
        assert!(r(1, 100).is_true());
        assert!(r(-1, 100).is_true());
        assert_eq!(Rat::from_bool(true), Rat::one());
        assert_eq!(Rat::from_bool(false), Rat::zero());
    }
}
