//! `bayonet-serve`: a concurrent inference service for Bayonet programs.
//!
//! The service exposes the reproduction's inference engines over a
//! hand-rolled HTTP/1.1 + JSON protocol (no external dependencies):
//!
//! * `POST /v1/check` — parse + integrity-check a program,
//! * `POST /v1/run` — exact, SMC, or rejection inference,
//! * `POST /v1/synthesize` — parameter synthesis,
//! * `POST /v1/batch` — many inference items in one request, streamed back
//!   as NDJSON frames over chunked transfer encoding as they complete,
//!   with parse/check/compile amortized across items sharing a source,
//! * `POST /v1/sweep` — one program across a parameter grid, streamed back
//!   as per-point NDJSON frames; the exact engine shares exploration work
//!   across grid points (symbolic cells or a replayed prefix) while staying
//!   bit-identical to pointwise runs,
//! * `GET /healthz` — liveness probe,
//! * `GET /metrics` — Prometheus text exposition.
//!
//! Inference requests are JSON objects
//! `{source, engine, query, bindings, particles, seed, timeout_ms}`;
//! responses carry structured JSON plus a `text` field rendered
//! byte-for-byte identically to the `bayonet` CLI output, so the two can
//! be diffed directly. A fixed worker pool pulls jobs from a bounded queue
//! (overload is answered with `503` + `Retry-After`), per-request
//! `timeout_ms` budgets are enforced cooperatively inside the engines via
//! [`bayonet_net::Deadline`], and successful results are cached in an LRU
//! keyed by the canonicalized program and engine options. With
//! [`ServerConfig::cache_dir`] set, cached results are also persisted to a
//! crash-safe append-only segment file and warm-loaded on restart (see
//! the `persist` module docs for the format and corruption semantics).
//!
//! # Examples
//!
//! ```
//! use bayonet_serve::{start, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let handle = start(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })?;
//! let mut conn = std::net::TcpStream::connect(handle.addr())?;
//! conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")?;
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply)?;
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod evloop;
pub mod fuzz;
mod http;
mod json;
mod metrics;
mod persist;
mod router;
mod server;
mod service;

pub use cache::LruCache;
pub use http::{
    read_request, ChunkedWriter, ParseStatus, Request, RequestError, RequestParser, Response,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
pub use json::{parse as parse_json, Json, ParseError as JsonParseError};
pub use metrics::Metrics;
pub use persist::{
    PersistConfig, PersistCounters, PersistentStore, DEFAULT_CACHE_MAX_BYTES, SEGMENT_FILE,
};
pub use router::replica_entry;
pub use server::{start, ServerConfig, ServerHandle, DEFAULT_MAX_CONNECTIONS};
pub use service::{
    Service, ServiceOptions, DEFAULT_CACHE_ENTRIES, MAX_BATCH_ITEMS, MAX_SWEEP_POINTS,
};
