//! Regenerates **Table 1** of the paper: result and inference time for
//! every benchmark row, with both the exact (PSI-role) and approximate
//! (WebPPL-role, SMC with 1000 particles) engines.
//!
//! Run with: `cargo run --release -p bayonet-bench --bin table1`

use bayonet::{scenarios, Sched};
use bayonet_bench::{fmt_duration, time_exact, time_smc};

const PARTICLES: usize = 1000;

struct Row {
    benchmark: &'static str,
    sched: &'static str,
    nodes: usize,
    paper_exact: &'static str,
    paper_approx: &'static str,
    network: bayonet::Network,
    query: usize,
    run_exact: bool,
}

fn main() -> Result<(), bayonet::Error> {
    let rows = vec![
        Row {
            benchmark: "Congestion",
            sched: "uni.",
            nodes: 5,
            paper_exact: "0.4487",
            paper_approx: "0.4570",
            network: scenarios::congestion_example(Sched::Uniform)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Congestion",
            sched: "det.",
            nodes: 5,
            paper_exact: "1.0000",
            paper_approx: "1.0000",
            network: scenarios::congestion_example(Sched::Deterministic)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Congestion",
            sched: "uni.",
            nodes: 6,
            paper_exact: "0.4441",
            paper_approx: "0.4650",
            network: scenarios::congestion_chain(1, Sched::Uniform)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Congestion",
            sched: "det.",
            nodes: 6,
            paper_exact: "1.0000",
            paper_approx: "1.0000",
            network: scenarios::congestion_chain(1, Sched::Deterministic)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Congestion",
            sched: "det.",
            nodes: 30,
            paper_exact: "1.0000",
            paper_approx: "1.0000",
            network: scenarios::congestion_chain(7, Sched::Deterministic)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Reliability",
            sched: "uni.",
            nodes: 6,
            paper_exact: "0.9995",
            paper_approx: "0.9990",
            network: scenarios::reliability_chain(
                1,
                &bayonet::Rat::ratio(1, 1000),
                Sched::Uniform,
            )?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Reliability",
            sched: "uni.",
            nodes: 30,
            paper_exact: "0.9965",
            paper_approx: "0.9940",
            network: scenarios::reliability_chain(
                7,
                &bayonet::Rat::ratio(1, 1000),
                Sched::Uniform,
            )?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Gossip",
            sched: "uni.",
            nodes: 4,
            paper_exact: "3.4815",
            paper_approx: "3.4760",
            network: scenarios::gossip(4, Sched::Uniform)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Gossip",
            sched: "det.",
            nodes: 4,
            paper_exact: "3.4815",
            paper_approx: "3.4890",
            network: scenarios::gossip(4, Sched::Deterministic)?,
            query: 0,
            run_exact: true,
        },
        Row {
            benchmark: "Gossip",
            sched: "uni.",
            nodes: 20,
            paper_exact: "-",
            paper_approx: "16.0020",
            network: scenarios::gossip(20, Sched::Uniform)?,
            query: 0,
            run_exact: false, // exact did not terminate within an hour (paper)
        },
        Row {
            benchmark: "Gossip",
            sched: "uni.",
            nodes: 30,
            paper_exact: "-",
            paper_approx: "23.9910",
            network: scenarios::gossip(30, Sched::Uniform)?,
            query: 0,
            run_exact: false,
        },
    ];

    println!("Table 1 — Bayonet results (paper values in parentheses)");
    println!(
        "{:<12} {:<6} {:>5} | {:>24} {:>10} {:>9} | {:>10} {:>9}",
        "Benchmark", "Sched.", "Nodes", "Exact", "(paper)", "Time", "Approx", "(paper)"
    );
    println!("{}", "-".repeat(100));
    for row in &rows {
        let (exact_str, exact_time) = if row.run_exact {
            let m = time_exact(&row.network, row.query)?;
            (format!("{:.4}", m.value.to_f64()), fmt_duration(m.elapsed))
        } else {
            ("-".to_string(), "-".to_string())
        };
        let (est, smc_time) = time_smc(&row.network, row.query, PARTICLES, 0xB0)?;
        println!(
            "{:<12} {:<6} {:>5} | {:>24} {:>10} {:>9} | {:>10.4} {:>9}",
            row.benchmark,
            row.sched,
            row.nodes,
            exact_str,
            format!("({})", row.paper_exact),
            exact_time,
            est.value,
            format!("({})", row.paper_approx),
        );
        let _ = smc_time;
    }
    println!("\n(SMC uses {PARTICLES} particles, matching the paper's WebPPL configuration.)");
    Ok(())
}
