//! Cross-checks the HTTP service against the CLI: for the same program,
//! the server's `text` field must equal the `bayonet` binary's stdout
//! byte for byte — and a `run --batch` invocation must print exactly the
//! frames `/v1/batch` streams.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::Command;

use bayonet_serve::{start, Json, ServerHandle};

#[path = "../../serve/tests/common/mod.rs"]
mod common;

fn bay_source(name: &str) -> String {
    let p = bay_path(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"))
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_bayonet"))
        .args(args)
        .output()
        .expect("spawn bayonet CLI");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn bay_path(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/bay");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = common::http(addr, "POST", path, body);
    (status, payload)
}

/// An ephemeral-port server; `common::test_config` honors
/// `BAYONET_TEST_CACHE_DIR` so the CLI parity suite also runs with the
/// persistent cache enabled (persistence must never change a rendered
/// byte).
fn server() -> ServerHandle {
    start(common::test_config()).expect("start server")
}

fn text_field(payload: &str) -> String {
    let doc = bayonet_serve::parse_json(payload).expect("json body");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "{payload}"
    );
    doc.get("text")
        .and_then(Json::as_str)
        .expect("text field")
        .to_string()
}

#[test]
fn run_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![("source", Json::Str(bay_source("gossip_k4.bay")))]).to_string();
    let (status, payload) = post(handle.addr(), "/v1/run", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&["run", &bay_path("gossip_k4.bay")]);
    assert_eq!(served, cli);
    handle.shutdown();
}

#[test]
fn synthesize_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![("source", Json::Str(bay_source("ecmp_costs.bay")))]).to_string();
    let (status, payload) = post(handle.addr(), "/v1/synthesize", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&["synthesize", &bay_path("ecmp_costs.bay")]);
    assert_eq!(served, cli);
    handle.shutdown();
}

#[test]
fn smc_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![
        ("source", Json::Str(bay_source("gossip_k4.bay"))),
        ("engine", Json::Str("smc".into())),
        ("particles", Json::Num(300.0)),
        ("seed", Json::Num(11.0)),
    ])
    .to_string();
    let (status, payload) = post(handle.addr(), "/v1/run", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&[
        "run",
        &bay_path("gossip_k4.bay"),
        "--engine",
        "smc",
        "--particles",
        "300",
        "--seed",
        "11",
    ]);
    assert_eq!(served, cli);
    handle.shutdown();
}

/// `bayonet run <file> --batch` prints exactly the frames `/v1/batch`
/// streams for the same body, in index order — the CLI and the server
/// share one orchestration path.
#[test]
fn batch_cli_matches_http_batch_frame_for_frame() {
    let handle = server();
    let batch_body = format!(
        r#"{{"source":{},"items":[{{}},{{"engine":"smc","particles":120,"seed":3}},{{"engine":"smc","particles":120,"seed":4}}]}}"#,
        Json::Str(bay_source("gossip_k4.bay"))
    );

    let dir = common::unique_dir("cli-batch");
    std::fs::create_dir_all(&dir).expect("create batch dir");
    let file = dir.join("batch.json");
    std::fs::write(&file, &batch_body).expect("write batch file");
    let cli = cli_stdout(&["run", &file.to_string_lossy(), "--batch"]);

    let (status, payload) = common::post_batch(handle.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut served: Vec<(u64, &str)> = payload
        .lines()
        .map(|line| {
            let frame = common::parse_frames(line);
            (frame[0].index, line)
        })
        .collect();
    served.sort_by_key(|(index, _)| *index);

    let cli_lines: Vec<&str> = cli.lines().collect();
    assert_eq!(cli_lines.len(), served.len(), "cli: {cli}\nhttp: {payload}");
    for (k, (cli_line, (index, http_line))) in cli_lines.iter().zip(&served).enumerate() {
        assert_eq!(*index, k as u64, "http frames must cover every index");
        assert_eq!(
            cli_line, http_line,
            "frame {k}: CLI and HTTP bytes diverged"
        );
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
