//! Benchmarks for Table 1's gossip rows: expected epidemic spread on
//! complete graphs — exact on K4 (94/27), SMC on the paper's K20/K30.

use criterion::{criterion_group, criterion_main, Criterion};

use bayonet::{scenarios, ApproxOptions, Sched};

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/gossip");
    group.sample_size(10);

    let k4 = scenarios::gossip(4, Sched::Uniform).unwrap();
    group.bench_function("exact_k4_uniform", |b| {
        b.iter(|| k4.exact().unwrap().results[0].rat().clone())
    });

    let k4det = scenarios::gossip(4, Sched::Deterministic).unwrap();
    group.bench_function("exact_k4_det", |b| {
        b.iter(|| k4det.exact().unwrap().results[0].rat().clone())
    });

    let opts = ApproxOptions {
        particles: 1000,
        seed: 1,
        ..Default::default()
    };
    let k20 = scenarios::gossip(20, Sched::Uniform).unwrap();
    group.bench_function("smc1000_k20", |b| {
        b.iter(|| k20.smc(0, &opts).unwrap().value)
    });

    let k30 = scenarios::gossip(30, Sched::Uniform).unwrap();
    group.bench_function("smc1000_k30", |b| {
        b.iter(|| k30.smc(0, &opts).unwrap().value)
    });

    group.finish();
}

criterion_group!(benches, bench_gossip);
criterion_main!(benches);
