//! Source-text generation: Bayonet → PSI and Bayonet → WebPPL.
//!
//! The paper's system emits PSI source (Figure 9/10) and optionally WebPPL
//! source; §5 reports that Bayonet programs are ~2× smaller than the
//! generated PSI and ~10× smaller than the generated WebPPL. These
//! generators reproduce that pipeline stage: they render a compiled
//! [`Model`] as idiomatic PSI / WebPPL program text. The text is what a
//! user would hand to the external solvers; the *executable* path of this
//! reproduction is the PSI-core IR in [`crate::translate`].

use std::fmt::Write as _;

use bayonet_lang::BinOp;
use bayonet_net::{CExpr, CStmt, CompiledProgram, Model, QueryKind};

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::And => "&&",
        BinOp::Or => "||",
        other => other.as_str(),
    }
}

fn expr_psi(e: &CExpr, model: &Model, prog: &CompiledProgram) -> String {
    match e {
        CExpr::Const(r) => {
            if r.is_integer() {
                r.to_string()
            } else {
                format!("({}/{})", r.numer(), r.denom())
            }
        }
        CExpr::Param(p) => match model.binding(*p) {
            Some(v) => v.to_string(),
            None => model.params.name(*p).to_string(),
        },
        CExpr::State(slot) => prog.state_names[*slot].clone(),
        CExpr::Local(slot) => prog.local_names[*slot].clone(),
        CExpr::Field(f) => format!("pkt[{f}]"),
        CExpr::Port => "pt".into(),
        CExpr::Flip(p) => format!("flip({})", expr_psi(p, model, prog)),
        CExpr::UniformInt(lo, hi) => format!(
            "uniformInt({}, {})",
            expr_psi(lo, model, prog),
            expr_psi(hi, model, prog)
        ),
        CExpr::Binary(op, a, b) => format!(
            "({} {} {})",
            expr_psi(a, model, prog),
            binop_str(*op),
            expr_psi(b, model, prog)
        ),
        CExpr::Not(inner) => format!("!({})", expr_psi(inner, model, prog)),
        CExpr::Neg(inner) => format!("-({})", expr_psi(inner, model, prog)),
    }
}

fn stmts_psi(
    stmts: &[CStmt],
    model: &Model,
    prog: &CompiledProgram,
    depth: usize,
    out: &mut String,
) {
    let pad = "    ".repeat(depth);
    for s in stmts {
        match s {
            CStmt::Skip => {}
            CStmt::New => {
                let _ = writeln!(
                    out,
                    "{pad}Q_in.pushFront((array({}, 0), 0));",
                    model.num_fields()
                );
            }
            CStmt::Drop => {
                let _ = writeln!(out, "{pad}Q_in.takeFront();");
            }
            CStmt::Dup => {
                let _ = writeln!(out, "{pad}Q_in.pushFront(Q_in.front());");
            }
            CStmt::Fwd(e) => {
                let _ = writeln!(
                    out,
                    "{pad}Q_out.pushBack((Q_in.takeFront()[0], {}));",
                    expr_psi(e, model, prog)
                );
            }
            CStmt::AssignState(slot, e) => {
                let _ = writeln!(
                    out,
                    "{pad}{} = {};",
                    prog.state_names[*slot],
                    expr_psi(e, model, prog)
                );
            }
            CStmt::AssignLocal(slot, e) => {
                let _ = writeln!(
                    out,
                    "{pad}{} := {};",
                    prog.local_names[*slot],
                    expr_psi(e, model, prog)
                );
            }
            CStmt::FieldAssign(f, e) => {
                let _ = writeln!(out, "{pad}pkt[{f}] = {};", expr_psi(e, model, prog));
            }
            CStmt::Assert(e) => {
                let _ = writeln!(out, "{pad}assert({});", expr_psi(e, model, prog));
            }
            CStmt::Observe(e) => {
                let _ = writeln!(out, "{pad}observe({});", expr_psi(e, model, prog));
            }
            CStmt::If(c, t, els) => {
                let _ = writeln!(out, "{pad}if {} {{", expr_psi(c, model, prog));
                stmts_psi(t, model, prog, depth + 1, out);
                if els.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts_psi(els, model, prog, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            CStmt::While(c, body) => {
                let _ = writeln!(out, "{pad}while {} {{", expr_psi(c, model, prog));
                stmts_psi(body, model, prog, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Renders a compiled model as PSI source text, following the structure of
/// paper Figures 9 and 10 (a `dat` per program, a `Network` dat with
/// `scheduler`, `step`, `terminated`, and `main`).
pub fn to_psi(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// PSI program generated from a Bayonet model.");
    let mut emitted: Vec<&str> = Vec::new();
    for prog in &model.programs {
        if emitted.contains(&prog.name.as_str()) {
            continue;
        }
        emitted.push(&prog.name);
        let _ = writeln!(out, "dat {} {{", prog.name);
        let _ = writeln!(out, "    Q_in: Queue, Q_out: Queue;");
        for name in &prog.state_names {
            let _ = writeln!(out, "    {name}: R;");
        }
        let _ = writeln!(out, "    def {}() {{ // constructor", prog.name);
        let _ = writeln!(out, "        Q_in = Queue();");
        let _ = writeln!(out, "        Q_out = Queue();");
        for (slot, name) in prog.state_names.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {name} = {};",
                expr_psi(&prog.state_init[slot], model, prog)
            );
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    def run() {{");
        let _ = writeln!(out, "        (pkt, pt) := Q_in.front();");
        stmts_psi(&prog.body, model, prog, 2, &mut out);
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    // Network dat (Figure 10).
    let _ = writeln!(out, "dat Network {{");
    let programs: Vec<String> = model
        .programs
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{i} |-> {}()", p.name))
        .collect();
    let _ = writeln!(out, "    programs := [{}];", programs.join(", "));
    let links: Vec<String> = model
        .links()
        .map(|((a, pa), (b, pb))| format!("({a}, {pa}) |-> ({b}, {pb})"))
        .collect();
    let _ = writeln!(out, "    links := [{}];", links.join(", "));
    let _ = writeln!(out, "    def scheduler() {{");
    let _ = writeln!(out, "        actions := []: (R x R)[];");
    let _ = writeln!(out, "        for i in [0..{}) {{", model.num_nodes());
    let _ = writeln!(
        out,
        "            if programs[i].Q_in.size() > 0 {{ actions ~= (Run, i); }}"
    );
    let _ = writeln!(
        out,
        "            if programs[i].Q_out.size() > 0 {{ actions ~= (Fwd, i); }}"
    );
    let _ = writeln!(out, "        }}");
    match &model.scheduler {
        bayonet_net::SchedKind::Uniform => {
            let _ = writeln!(
                out,
                "        return actions[uniformInt(0, actions.length - 1)];"
            );
        }
        bayonet_net::SchedKind::Deterministic => {
            let _ = writeln!(out, "        return actions[0]; // deterministic");
        }
        bayonet_net::SchedKind::Weighted(ws) => {
            let _ = writeln!(out, "        // weighted by node: {ws:?}");
            let _ = writeln!(out, "        return weightedChoice(actions);");
        }
        bayonet_net::SchedKind::Rotor => {
            let _ = writeln!(out, "        return rotorPick(actions, state.cursor);");
        }
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    def step() {{");
    let _ = writeln!(out, "        (action, node_id) := scheduler();");
    let _ = writeln!(
        out,
        "        if action == Run {{ programs[node_id].run(); }}"
    );
    let _ = writeln!(out, "        if action == Fwd {{");
    let _ = writeln!(
        out,
        "            (pkt, out_pt) := programs[node_id].Q_out.takeFront();"
    );
    let _ = writeln!(
        out,
        "            (dst_id, dst_pt) := links[(node_id, out_pt)];"
    );
    let _ = writeln!(
        out,
        "            programs[dst_id].Q_in.pushBack((pkt, dst_pt));"
    );
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(
        out,
        "    def terminated() => allQueuesEmpty() || anyNodeErrored();"
    );
    let _ = writeln!(out, "    def main() {{");
    for spec in &model.init_packets {
        let _ = writeln!(
            out,
            "        programs[{}].Q_in.pushBack((array({}, 0), {}));",
            spec.node,
            model.num_fields(),
            spec.port
        );
    }
    let num_steps = model
        .num_steps
        .unwrap_or(crate::translate::DEFAULT_NUM_STEPS);
    let _ = writeln!(out, "        repeat {num_steps} {{");
    let _ = writeln!(out, "            if !terminated() {{ step(); }}");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "        assert(terminated());");
    for q in &model.queries {
        let kind = match q.kind {
            QueryKind::Probability => "probability",
            QueryKind::Expectation => "expectation",
        };
        let _ = writeln!(out, "        // query {kind}({})", q.source);
    }
    let _ = writeln!(out, "        return (<query>);");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

fn expr_webppl(e: &CExpr, model: &Model, prog: &CompiledProgram) -> String {
    match e {
        CExpr::Const(r) => {
            if r.is_integer() {
                r.to_string()
            } else {
                format!("({} / {})", r.numer(), r.denom())
            }
        }
        CExpr::Param(p) => match model.binding(*p) {
            Some(v) => format!("({})", v.to_f64()),
            None => model.params.name(*p).to_string(),
        },
        CExpr::State(slot) => format!("state.{}", prog.state_names[*slot]),
        CExpr::Local(slot) => format!("locals.{}", prog.local_names[*slot]),
        CExpr::Field(f) => format!("head(node.qin).pkt[{f}]"),
        CExpr::Port => "head(node.qin).pt".into(),
        CExpr::Flip(p) => format!("flip({})", expr_webppl(p, model, prog)),
        CExpr::UniformInt(lo, hi) => format!(
            "randomInteger({} - {} + 1) + {}",
            expr_webppl(hi, model, prog),
            expr_webppl(lo, model, prog),
            expr_webppl(lo, model, prog)
        ),
        CExpr::Binary(op, a, b) => format!(
            "({} {} {})",
            expr_webppl(a, model, prog),
            binop_str(*op),
            expr_webppl(b, model, prog)
        ),
        CExpr::Not(inner) => format!("!({})", expr_webppl(inner, model, prog)),
        CExpr::Neg(inner) => format!("-({})", expr_webppl(inner, model, prog)),
    }
}

fn stmts_webppl(
    stmts: &[CStmt],
    model: &Model,
    prog: &CompiledProgram,
    depth: usize,
    out: &mut String,
) {
    let pad = "    ".repeat(depth);
    for s in stmts {
        match s {
            CStmt::Skip => {}
            CStmt::New => {
                let _ = writeln!(out, "{pad}pushFront(node.qin, freshPacket());");
            }
            CStmt::Drop => {
                let _ = writeln!(out, "{pad}popFront(node.qin);");
            }
            CStmt::Dup => {
                let _ = writeln!(out, "{pad}pushFront(node.qin, head(node.qin));");
            }
            CStmt::Fwd(e) => {
                let _ = writeln!(
                    out,
                    "{pad}pushBack(node.qout, retag(popFront(node.qin), {}));",
                    expr_webppl(e, model, prog)
                );
            }
            CStmt::AssignState(slot, e) => {
                let _ = writeln!(
                    out,
                    "{pad}state.{} = {};",
                    prog.state_names[*slot],
                    expr_webppl(e, model, prog)
                );
            }
            CStmt::AssignLocal(slot, e) => {
                let _ = writeln!(
                    out,
                    "{pad}locals.{} = {};",
                    prog.local_names[*slot],
                    expr_webppl(e, model, prog)
                );
            }
            CStmt::FieldAssign(f, e) => {
                let _ = writeln!(
                    out,
                    "{pad}head(node.qin).pkt[{f}] = {};",
                    expr_webppl(e, model, prog)
                );
            }
            CStmt::Assert(e) => {
                let _ = writeln!(
                    out,
                    "{pad}if (!({})) {{ node.error = true; return; }}",
                    expr_webppl(e, model, prog)
                );
            }
            CStmt::Observe(e) => {
                let _ = writeln!(out, "{pad}condition({});", expr_webppl(e, model, prog));
            }
            CStmt::If(c, t, els) => {
                let _ = writeln!(out, "{pad}if ({}) {{", expr_webppl(c, model, prog));
                stmts_webppl(t, model, prog, depth + 1, out);
                if els.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts_webppl(els, model, prog, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            CStmt::While(c, body) => {
                let _ = writeln!(out, "{pad}while ({}) {{", expr_webppl(c, model, prog));
                stmts_webppl(body, model, prog, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Renders a compiled model as WebPPL source text (the approximate-backend
/// path: `Infer({method: 'SMC', particles: 1000}, model)`).
pub fn to_webppl(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// WebPPL program generated from a Bayonet model.");
    let _ = writeln!(out, "var queueCapacity = {};", model.queue_capacity);
    let _ = writeln!(out, "var links = {{");
    for ((a, pa), (b, pb)) in model.links() {
        let _ = writeln!(out, "    '{a},{pa}': [{b}, {pb}],");
    }
    let _ = writeln!(out, "}};");
    let _ = writeln!(out);
    let mut emitted: Vec<&str> = Vec::new();
    for prog in &model.programs {
        if emitted.contains(&prog.name.as_str()) {
            continue;
        }
        emitted.push(&prog.name);
        let _ = writeln!(out, "var run_{} = function(node) {{", prog.name);
        let _ = writeln!(out, "    var state = node.state;");
        let _ = writeln!(out, "    var locals = {{}};");
        stmts_webppl(&prog.body, model, prog, 1, &mut out);
        let _ = writeln!(out, "}};");
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "var initialNodes = [");
    for (i, prog) in model.programs.iter().enumerate() {
        let inits: Vec<String> = prog
            .state_names
            .iter()
            .zip(&prog.state_init)
            .map(|(n, e)| format!("{n}: {}", expr_webppl(e, model, prog)))
            .collect();
        let packets: Vec<String> = model
            .init_packets
            .iter()
            .filter(|s| s.node == i)
            .map(|s| format!("{{pkt: freshPacket(), pt: {}}}", s.port))
            .collect();
        let _ = writeln!(
            out,
            "    {{ program: run_{}, state: {{{}}}, qin: [{}], qout: [], error: false }},",
            prog.name,
            inits.join(", "),
            packets.join(", ")
        );
    }
    let _ = writeln!(out, "];");
    let _ = writeln!(out);
    let _ = writeln!(out, "var model = function() {{");
    let _ = writeln!(out, "    var nodes = initialNodes;");
    let _ = writeln!(
        out,
        "    var run = function(steps) {{ // unrolled network loop"
    );
    let _ = writeln!(out, "        if (terminated(nodes)) {{ return; }}");
    let _ = writeln!(out, "        var actions = enabledActions(nodes);");
    match &model.scheduler {
        bayonet_net::SchedKind::Uniform => {
            let _ = writeln!(
                out,
                "        var choice = actions[randomInteger(actions.length)];"
            );
        }
        bayonet_net::SchedKind::Deterministic => {
            let _ = writeln!(out, "        var choice = actions[0];");
        }
        bayonet_net::SchedKind::Weighted(ws) => {
            let _ = writeln!(out, "        var choice = weightedChoice(actions, {ws:?});");
        }
        bayonet_net::SchedKind::Rotor => {
            let _ = writeln!(out, "        var choice = rotorPick(actions, cursor);");
        }
    }
    let _ = writeln!(out, "        applyAction(nodes, choice, links);");
    let _ = writeln!(out, "        run(steps - 1);");
    let _ = writeln!(out, "    }};");
    let _ = writeln!(
        out,
        "    run({});",
        model
            .num_steps
            .unwrap_or(crate::translate::DEFAULT_NUM_STEPS)
    );
    for q in &model.queries {
        let _ = writeln!(out, "    // query: {}", q.source);
    }
    let _ = writeln!(out, "    return queryValue(nodes);");
    let _ = writeln!(out, "}};");
    let _ = writeln!(out, "Infer({{method: 'SMC', particles: 1000}}, model);");
    out
}
