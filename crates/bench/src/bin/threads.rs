//! Thread-scaling of the exact engine: the same workloads at 1, 2, 4, and
//! 8 workers, checking both wall-clock time and that the posterior is
//! bit-for-bit identical at every thread count.
//!
//! Run with: `cargo run --release -p bayonet-bench --bin threads`
//!
//! Note on reading the numbers: speedup is bounded by the number of
//! *physical* cores the host exposes. On a single-core container every
//! extra worker is pure overhead (deque churn + thread spawn), so the
//! interesting signal there is that the overhead stays small and the
//! answers stay identical; run on a multi-core host to see the speedup.

use bayonet::{scenarios, ExactOptions, Rat, Sched};
use bayonet_bench::{fmt_duration, time_exact_with};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() -> Result<(), bayonet::Error> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("exact-engine thread scaling (host exposes {cores} core(s))\n");

    let workloads: Vec<(&str, bayonet::Network)> = vec![
        ("gossip K4", scenarios::gossip(4, Sched::Uniform)?),
        ("gossip K5", scenarios::gossip(5, Sched::Uniform)?),
        (
            "reliability chain (10 diamonds)",
            scenarios::reliability_chain(10, &Rat::ratio(1, 1000), Sched::Uniform)?,
        ),
    ];

    for (name, network) in &workloads {
        println!("{name}:");
        println!("{:>9} {:>9} {:>9}", "threads", "time", "speedup");
        let mut baseline = None;
        let mut reference = None;
        for threads in THREADS {
            let opts = ExactOptions {
                threads,
                ..ExactOptions::default()
            };
            let m = time_exact_with(network, 0, &opts)?;
            match &reference {
                None => reference = Some(m.value.clone()),
                Some(r) => assert_eq!(
                    r, &m.value,
                    "{name}: posterior diverged at {threads} threads"
                ),
            }
            let base = *baseline.get_or_insert(m.elapsed);
            println!(
                "{:>9} {:>9} {:>8.2}x",
                threads,
                fmt_duration(m.elapsed),
                base.as_secs_f64() / m.elapsed.as_secs_f64()
            );
        }
        println!();
    }
    Ok(())
}
