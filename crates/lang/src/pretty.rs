//! Pretty-printer for Bayonet programs.
//!
//! Produces canonical source text that re-parses to an equal AST, which the
//! test suite exploits for round-trip properties. Also used when reporting
//! generated code sizes (paper §5: Bayonet sources are 2–10× smaller than
//! the generated PSI/WebPPL programs).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program as canonical Bayonet source.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    if !p.packet_fields.is_empty() {
        let names: Vec<_> = p.packet_fields.iter().map(|i| i.name.clone()).collect();
        let _ = writeln!(out, "packet_fields {{ {} }}", names.join(", "));
    }
    if !p.parameters.is_empty() {
        let names: Vec<_> = p.parameters.iter().map(|i| i.name.clone()).collect();
        let _ = writeln!(out, "parameters {{ {} }}", names.join(", "));
    }
    let _ = writeln!(out, "topology {{");
    let names: Vec<_> = p.topology.nodes.iter().map(|i| i.name.clone()).collect();
    let _ = writeln!(out, "  nodes {{ {} }}", names.join(", "));
    let _ = writeln!(out, "  links {{");
    for (i, l) in p.topology.links.iter().enumerate() {
        let sep = if i + 1 == p.topology.links.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "    ({}, pt{}) <-> ({}, pt{}){sep}",
            l.a.node, l.a.port, l.b.node, l.b.port
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    let progs: Vec<_> = p
        .programs
        .iter()
        .map(|(n, pr)| format!("{n} -> {pr}"))
        .collect();
    let _ = writeln!(out, "programs {{ {} }}", progs.join(", "));
    if let Some(c) = p.queue_capacity {
        let _ = writeln!(out, "queue_capacity {c};");
    }
    if let Some(n) = p.num_steps {
        let _ = writeln!(out, "num_steps {n};");
    }
    match &p.scheduler {
        SchedulerSpec::Uniform => {
            let _ = writeln!(out, "scheduler uniform;");
        }
        SchedulerSpec::RoundRobin => {
            let _ = writeln!(out, "scheduler roundrobin;");
        }
        SchedulerSpec::Rotor => {
            let _ = writeln!(out, "scheduler rotor;");
        }
        SchedulerSpec::Weighted(ws) => {
            let entries: Vec<_> = ws.iter().map(|(n, w)| format!("{n} -> {w}")).collect();
            let _ = writeln!(out, "scheduler weighted {{ {} }};", entries.join(", "));
        }
    }
    if !p.init.is_empty() {
        let _ = writeln!(out, "init {{");
        for ip in &p.init {
            if ip.fields.is_empty() {
                let _ = writeln!(out, "  packet -> ({}, pt{});", ip.node, ip.port);
            } else {
                let fields: Vec<_> = ip
                    .fields
                    .iter()
                    .map(|(f, e)| format!("{f} = {}", pretty_expr(e)))
                    .collect();
                let _ = writeln!(
                    out,
                    "  packet -> ({}, pt{}) {{ {} }};",
                    ip.node,
                    ip.port,
                    fields.join(", ")
                );
            }
        }
        let _ = writeln!(out, "}}");
    }
    for q in &p.queries {
        match q {
            Query::Probability(e) => {
                let _ = writeln!(out, "query probability({});", pretty_expr(e));
            }
            Query::Expectation(e) => {
                let _ = writeln!(out, "query expectation({});", pretty_expr(e));
            }
        }
    }
    for d in &p.defs {
        let _ = writeln!(out);
        let params = if d.has_params { "(pkt, pt)" } else { "()" };
        let _ = write!(out, "def {}{params}", d.name);
        if !d.state.is_empty() {
            let decls: Vec<_> = d
                .state
                .iter()
                .map(|(v, e)| format!("{v}({})", pretty_expr(e)))
                .collect();
            let _ = write!(out, " state {}", decls.join(", "));
        }
        let _ = writeln!(out, " {{");
        pretty_stmts(&d.body, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders a statement body at the given indentation depth.
pub fn pretty_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        indent(depth, out);
        match s {
            Stmt::New(_) => out.push_str("new;\n"),
            Stmt::Drop(_) => out.push_str("drop;\n"),
            Stmt::Dup(_) => out.push_str("dup;\n"),
            Stmt::Skip(_) => out.push_str("skip;\n"),
            Stmt::Fwd(e, _) => {
                let _ = writeln!(out, "fwd({});", pretty_expr(e));
            }
            Stmt::Assign(x, e) => {
                let _ = writeln!(out, "{x} = {};", pretty_expr(e));
            }
            Stmt::FieldAssign(f, e) => {
                let _ = writeln!(out, "pkt.{f} = {};", pretty_expr(e));
            }
            Stmt::Assert(e, _) => {
                let _ = writeln!(out, "assert({});", pretty_expr(e));
            }
            Stmt::Observe(e, _) => {
                let _ = writeln!(out, "observe({});", pretty_expr(e));
            }
            Stmt::If(c, t, e) => {
                let _ = writeln!(out, "if {} {{", pretty_expr(c));
                pretty_stmts(t, depth + 1, out);
                indent(depth, out);
                if e.is_empty() {
                    out.push_str("}\n");
                } else {
                    out.push_str("} else {\n");
                    pretty_stmts(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
            }
            Stmt::While(c, b) => {
                let _ = writeln!(out, "while {} {{", pretty_expr(c));
                pretty_stmts(b, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
    }
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

/// Renders an expression with minimal parentheses.
pub fn pretty_expr(e: &Expr) -> String {
    pretty_expr_prec(e, 0)
}

fn pretty_expr_prec(e: &Expr, min_prec: u8) -> String {
    match e {
        Expr::Num(r, _) => {
            if r.is_negative() {
                format!("(0 - {})", -r)
            } else if r.is_integer() {
                r.to_string()
            } else {
                format!("{}/{}", r.numer(), r.denom())
            }
        }
        Expr::Name(id) => id.name.clone(),
        Expr::Field(f) => format!("pkt.{f}"),
        Expr::Port(_) => "pt".to_string(),
        Expr::At(v, n) => format!("{v}@{n}"),
        Expr::Flip(p, _) => format!("flip({})", pretty_expr(p)),
        Expr::UniformInt(lo, hi, _) => {
            format!("uniformInt({}, {})", pretty_expr(lo), pretty_expr(hi))
        }
        Expr::Binary(op, lhs, rhs) => {
            let p = prec(*op);
            // Left-associative operators render the right child at strictly
            // higher precedence; comparisons are *non-associative*, so both
            // children need strictly higher precedence to force parentheses
            // around nested comparisons.
            let lhs_prec = if op.is_comparison() { p + 1 } else { p };
            let s = format!(
                "{} {} {}",
                pretty_expr_prec(lhs, lhs_prec),
                op.as_str(),
                pretty_expr_prec(rhs, p + 1)
            );
            if p < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Not(inner, _) => {
            let s = format!("not {}", pretty_expr_prec(inner, 3));
            if min_prec > 2 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Neg(inner, _) => format!("-{}", pretty_expr_prec(inner, 6)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn expr_roundtrip() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a < b or a == b and flip(1/2)",
            "not (x == 1)",
            "pkt_cnt@H1 < 3",
            "uniformInt(1, n - 1)",
            "pkt.dst == 2",
            "-x + 1",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = pretty_expr(&e);
            let again = parse_expr(&printed).unwrap();
            assert_eq!(e, again, "roundtrip failed: {src} -> {printed}");
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = r#"
            packet_fields { dst, id }
            topology {
                nodes { H0, H1 }
                links { (H0, pt1) <-> (H1, pt1) }
            }
            programs { H0 -> h0, H1 -> h1 }
            queue_capacity 2;
            scheduler roundrobin;
            init { packet -> (H0, pt1) { id = 1 }; }
            query probability(got@H1 == 1);
            query expectation(got@H1);
            def h0(pkt, pt) state sent(0) {
                if sent < 1 { new; fwd(1); sent = sent + 1; } else { drop; }
            }
            def h1(pkt, pt) state got(0) {
                got = got + 1;
                observe(pkt.id == 0);
                drop;
            }
        "#;
        let p = parse(src).unwrap();
        let printed = pretty_program(&p);
        let again = parse(&printed).unwrap();
        assert_eq!(p, again, "program roundtrip failed:\n{printed}");
    }
}
