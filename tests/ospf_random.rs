//! Randomized testing of the OSPF control-plane generator: random weighted
//! topologies must yield well-formed networks whose exact and sampled
//! posteriors agree, and whose delivery guarantees hold when queues are
//! large enough.

use bayonet_repro::ospf::{EcmpMode, OspfBuilder};
use bayonet_repro::{ApproxOptions, Rat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected weighted graph of `n` switches plus two hosts, with
/// one flow between them.
fn random_builder(seed: u64) -> OspfBuilder {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(3..=5);
    let mut b = OspfBuilder::new();
    let names: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    for name in &names {
        b = b.switch(name);
    }
    // Spanning-tree edges keep it connected; extra edges create ECMP
    // opportunities.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b = b.link(&names[i], &names[j], rng.gen_range(1..=3));
    }
    for _ in 0..rng.gen_range(0..=2) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            b = b.link(&names[i], &names[j], rng.gen_range(1..=3));
        }
    }
    let src_switch = rng.gen_range(0..n);
    let dst_switch = rng.gen_range(0..n);
    b = b
        .host("HA", &names[src_switch])
        .host("HB", &names[dst_switch])
        .flow("HA", "HB", rng.gen_range(1..=2))
        .queue_capacity(rng.gen_range(2..=3));
    if rng.gen_bool(0.3) {
        b = b.ecmp(EcmpMode::PerFlow);
    }
    b
}

#[test]
fn random_ospf_planes_conserve_mass_and_agree_with_smc() {
    let mut checked = 0;
    for seed in 0..30u64 {
        let builder = random_builder(seed);
        let network = match builder.build() {
            Ok(n) => n,
            Err(e) => {
                // Random graphs may duplicate a link pair, which the
                // front-end rejects (an interface in two links): fine.
                let msg = format!("{e}");
                assert!(
                    msg.contains("links") || msg.contains("interface"),
                    "seed {seed}: unexpected error {msg}"
                );
                continue;
            }
        };
        checked += 1;
        let report = network
            .exact()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(report.z, Rat::one(), "seed {seed}: no observes, Z = 1");
        // Delivery expectation is between 0 and the flow size.
        let e_recv = report.results[1].rat().clone();
        assert!(
            e_recv >= Rat::zero() && e_recv <= Rat::int(2),
            "seed {seed}"
        );
        // SMC agrees within tolerance.
        let est = network
            .smc(
                1,
                &ApproxOptions {
                    particles: 1500,
                    seed: seed + 99,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let tol = (5.0 * est.std_error).max(0.05);
        assert!(
            (est.value - e_recv.to_f64()).abs() <= tol,
            "seed {seed}: exact {e_recv} vs SMC {est}"
        );
    }
    assert!(
        checked >= 15,
        "too few random topologies survived ({checked})"
    );
}

#[test]
fn single_packet_flows_always_deliver_on_random_planes() {
    // With one packet there is no congestion: delivery is certain whenever
    // the generator accepted the topology (reachability was validated).
    for seed in 100..120u64 {
        let mut builder = random_builder(seed);
        builder = builder.queue_capacity(2);
        let Ok(network) = builder.build() else {
            continue;
        };
        // Rebuild the flow size to 1 by... the builder API fixes it at
        // construction; instead just check E >= P(recvd >= 1) sanity:
        let report = network.exact().unwrap();
        let congestion_prob = report.results[0].rat();
        let expected = report.results[1].rat();
        // E[recvd] >= flow_size * (1 - P(loss)) is not tight in general,
        // but E > 0 whenever P(all lost) < 1:
        if *congestion_prob < Rat::one() {
            assert!(expected.is_positive(), "seed {seed}");
        }
    }
}
