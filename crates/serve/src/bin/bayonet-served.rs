//! `bayonet-served`: a standalone server binary.
//!
//! The `bayonet serve` CLI subcommand is the user-facing entry point;
//! this thin binary exists so the serve crate's own tests (and the bench
//! harness) can spawn a real out-of-process server via
//! `CARGO_BIN_EXE_bayonet-served` — a 10k-connection stress run needs the
//! client and server fd budgets in separate processes, and replica
//! spawning needs a `main` that calls [`bayonet_serve::replica_entry`]
//! (a test harness `main` does not).
//!
//! Configuration is flag-per-field, mirroring `bayonet serve`:
//!
//! ```text
//! bayonet-served --addr 127.0.0.1:0 --threads 4 --replicas 1 \
//!     --queue 64 --io-timeout-ms 30000 --max-connections 16384
//! ```
//!
//! On startup the bound address is announced on stdout as
//! `BAYONET_SERVE_ADDR <addr>` so spawners can scrape it; EOF on stdin
//! shuts the server down, so an exiting parent never leaks a server.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use bayonet_serve::{replica_entry, start, ServerConfig};

fn main() -> ExitCode {
    // A replica child never comes back from this call.
    replica_entry();

    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            eprintln!("bayonet-served: flag {flag} needs a value");
            return ExitCode::from(2);
        };
        let ok = match flag.as_str() {
            "--addr" => {
                config.addr = value;
                true
            }
            "--threads" => parse_into(&value, &mut config.threads),
            "--cache-entries" => parse_into(&value, &mut config.cache_entries),
            "--queue" => parse_into(&value, &mut config.queue_capacity),
            "--io-timeout-ms" => {
                let mut ms: u64 = 0;
                let ok = parse_into(&value, &mut ms);
                if ok {
                    config.io_timeout = Duration::from_millis(ms);
                }
                ok
            }
            "--cache-dir" => {
                config.cache_dir = Some(PathBuf::from(value));
                true
            }
            "--cache-max-bytes" => parse_into(&value, &mut config.cache_max_bytes),
            "--replicas" => parse_into(&value, &mut config.replicas),
            "--max-connections" => parse_into(&value, &mut config.max_connections),
            _ => {
                eprintln!("bayonet-served: unknown flag {flag}");
                return ExitCode::from(2);
            }
        };
        if !ok {
            eprintln!("bayonet-served: bad value for {flag}");
            return ExitCode::from(2);
        }
    }

    let handle = match start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bayonet-served: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("BAYONET_SERVE_ADDR {}", handle.addr());
    let _ = std::io::stdout().flush();

    // Block until the spawner closes our stdin (or exits), then shut down
    // gracefully so fd and connection gauges drain to zero.
    let mut sink = [0u8; 64];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    handle.shutdown();
    ExitCode::SUCCESS
}

fn parse_into<T: std::str::FromStr>(value: &str, slot: &mut T) -> bool {
    match value.parse() {
        Ok(parsed) => {
            *slot = parsed;
            true
        }
        Err(_) => false,
    }
}
