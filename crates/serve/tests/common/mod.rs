//! Shared helpers for the serve integration suites.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bayonet_serve::ServerConfig;

/// A `ServerConfig` on an ephemeral port, with the persistent cache
/// enabled when `BAYONET_TEST_CACHE_DIR` is set (non-empty): every suite
/// then exercises the exact same assertions with and without a disk-backed
/// cache — persistence must never change observable behavior. Each call
/// gets a fresh unique directory so suites and tests stay isolated.
pub fn test_config() -> ServerConfig {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    match std::env::var("BAYONET_TEST_CACHE_DIR") {
        Ok(root) if !root.is_empty() => {
            config.cache_dir = Some(PathBuf::from(root).join(format!(
                "serve-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            )));
        }
        _ => {}
    }
    config
}
