//! Optimization-pass differential: running the pass pipeline (constant
//! folding, dead-flip elimination, symmetry-reduced exploration) must be
//! **observably invisible** — byte-identical rendered query results and
//! Z/discarded line against a `passes: false` baseline — across
//! {enum, bdd, auto} × {1, 8} threads, over every curated example and 200
//! generated programs. Engine *stats* (peak configs, expansions) are
//! expected to shrink under the passes and are deliberately not compared;
//! the posterior is the contract.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bayonet_exact::{analyze, answer, EngineKind, ExactError, ExactOptions};
use bayonet_lang::parse;
use bayonet_lang::testgen::ProgramGen;
use bayonet_net::{compile, scheduler_for, Model, Scheduler};
use bayonet_num::Rat;

mod common;

const SEEDS: u64 = 200;
const THREADS: [usize; 2] = [1, 8];
const ENGINES: [EngineKind; 3] = [EngineKind::Enum, EngineKind::Bdd, EngineKind::Auto];

fn example_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/bay"))
}

fn example_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = fs::read_dir(example_dir())
        .expect("examples/bay exists")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|ext| ext == "bay") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&path).expect("readable example")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no example programs found");
    out
}

fn build(source: &str, binding: Option<&Rat>) -> (Model, Box<dyn Scheduler>) {
    let program = parse(source).expect("program parses");
    let mut model = compile(&program).expect("program compiles");
    if let Some(value) = binding {
        let names: Vec<String> = model
            .params
            .iter()
            .map(|id| model.params.name(id).to_string())
            .collect();
        for name in names {
            model.bind_param(&name, value.clone()).expect("bindable");
        }
    }
    let scheduler = scheduler_for(&model);
    (model, scheduler)
}

/// Runs one configuration and renders the posterior exactly as
/// `bayonet run` prints it, *without* the engine-specific stats line.
fn run(
    source: &str,
    binding: Option<&Rat>,
    engine: EngineKind,
    threads: usize,
    passes: bool,
) -> Result<String, ExactError> {
    let (model, scheduler) = build(source, binding);
    let opts = ExactOptions {
        engine,
        threads,
        par_threshold: 2,
        passes,
        ..ExactOptions::default()
    };
    let analysis = analyze(&model, &*scheduler, &opts)?;
    let mut text = String::new();
    for q in &model.queries {
        let result = answer(&model, &analysis, q, opts.fm_pruning).expect("query answers");
        let _ = write!(text, "{result}");
    }
    let _ = writeln!(
        text,
        "Z = {} (discarded by observations: {})",
        analysis.total_terminal_mass(),
        analysis.total_discarded_mass()
    );
    Ok(text)
}

/// Asserts the optimized run is posterior-identical to the `passes: false`
/// baseline for every engine/thread combination; returns whether the
/// program analyzed successfully (vs. erroring identically everywhere).
fn assert_opt_invisible(name: &str, source: &str, binding: Option<&Rat>) -> bool {
    match run(source, binding, EngineKind::Enum, 1, false) {
        Ok(base_text) => {
            for engine in ENGINES {
                for threads in THREADS {
                    let no_opt = run(source, binding, engine, threads, false).unwrap_or_else(|e| {
                        panic!("{name}: {engine:?}/{threads}/no-opt errored: {e}")
                    });
                    assert_eq!(
                        base_text, no_opt,
                        "{name}: no-opt posterior diverges under {engine:?}/{threads}"
                    );
                    let opt = run(source, binding, engine, threads, true).unwrap_or_else(|e| {
                        panic!("{name}: {engine:?}/{threads}/opt errored against Ok baseline: {e}")
                    });
                    assert_eq!(
                        base_text, opt,
                        "{name}: optimized posterior diverges under {engine:?}/{threads}"
                    );
                }
            }
            true
        }
        Err(base_err) => {
            // The passes must not turn an erroring program into an
            // accepting one (or change which error is reported).
            for engine in ENGINES {
                for threads in THREADS {
                    for passes in [false, true] {
                        let err = run(source, binding, engine, threads, passes)
                            .map(|_| ())
                            .unwrap_err();
                        assert_eq!(
                            base_err.to_string(),
                            err.to_string(),
                            "{name}: error diverges under {engine:?}/{threads}/passes={passes}"
                        );
                    }
                }
            }
            false
        }
    }
}

#[test]
fn every_example_is_opt_invisible() {
    let binding = Rat::ratio(1, 4);
    let mut analyzed = 0u32;
    for (name, source) in example_sources() {
        if assert_opt_invisible(&name, &source, None) {
            analyzed += 1;
        } else {
            assert!(
                assert_opt_invisible(&name, &source, Some(&binding)),
                "{name}: still errors with parameters bound"
            );
            analyzed += 1;
        }
    }
    assert!(analyzed >= 3, "expected at least 3 analyzable examples");
}

#[test]
fn generated_programs_are_opt_invisible() {
    let mut nontrivial = 0u32;
    for seed in 0..SEEDS {
        let source = ProgramGen::new(seed).generate();
        if assert_opt_invisible(&format!("seed {seed}"), &source, None) {
            nontrivial += 1;
        }
    }
    assert!(
        nontrivial >= 20,
        "generator degenerated: only {nontrivial} analyzable programs"
    );
}

/// The curated fat-tree example: ECMP spreads the flow over symmetric
/// aggregation/core paths, every path loses with `P_LOSS`, so the answer is
/// exactly `1 - P_LOSS` and the symmetry pass must not perturb it.
#[test]
fn fattree_k4_posterior_is_path_independent() {
    let source = fs::read_to_string(example_dir().join("fattree_k4.bay")).unwrap();
    let quarter = Rat::ratio(1, 4);
    let expected = "probability(got@E32 == 1):\n  3/4 ≈ 0.7500\n\
                    expectation(got@E32):\n  3/4 ≈ 0.7500\n\
                    Z = 1 (discarded by observations: 0)\n";
    for passes in [true, false] {
        let text = run(&source, Some(&quarter), common::test_engine(), 1, passes).unwrap();
        assert_eq!(text, expected, "passes={passes}");
    }
}

/// The curated firewall/NAT chain: a deliberately asymmetric service chain
/// (every node runs a different program — only trivial orbits exist, per
/// `crates/net/tests/opt_passes.rs`) with a fully pinned posterior.
#[test]
fn firewall_nat_posterior_is_pinned() {
    let source = fs::read_to_string(example_dir().join("firewall_nat.bay")).unwrap();
    let expected = "probability(got@SRV == 1):\n  2/3 ≈ 0.6667\n\
                    expectation(nat_src@SRV):\n  2/3 ≈ 0.6667\n\
                    probability(blocked@FW == 1):\n  1/3 ≈ 0.3333\n\
                    Z = 1 (discarded by observations: 0)\n";
    for passes in [true, false] {
        let text = run(&source, None, common::test_engine(), 1, passes).unwrap();
        assert_eq!(text, expected, "passes={passes}");
    }
}
