//! End-to-end tests of `"engine": "auto"`: the cost-model planner routes
//! requests to a concrete engine before any engine work, rejects
//! over-budget requests with a structured 422, shares cache entries with
//! explicitly-routed requests in both directions, and plans `/v1/batch`
//! items independently while still amortizing the shared compile.

use bayonet_serve::{parse_json, start, Json};

mod common;
use common::{http, metric, metrics, parse_frames, post_batch, GOSSIP_K4, TINY};

fn run_auto(source: &str) -> String {
    Json::obj(vec![
        ("source", Json::Str(source.into())),
        ("engine", Json::Str("auto".into())),
    ])
    .to_string()
}

fn engine_of(body: &str) -> String {
    parse_json(body)
        .expect("json body")
        .get("engine")
        .and_then(Json::as_str)
        .expect("engine field")
        .to_string()
}

/// Auto routes the tiny program to plain enumeration and gossip on K4 to
/// the BDD backend, with both decisions and the predicted-vs-actual cost
/// ratio visible on `/metrics`.
#[test]
fn auto_routes_by_cost_and_reports_decisions() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let (status, _, tiny) = http(addr, "POST", "/v1/run", &run_auto(TINY));
    assert_eq!(status, 200, "{tiny}");
    assert_eq!(engine_of(&tiny), "exact");

    let (status, _, gossip) = http(addr, "POST", "/v1/run", &run_auto(GOSSIP_K4));
    assert_eq!(status, 200, "{gossip}");
    assert_eq!(engine_of(&gossip), "bdd");

    let text = metrics(addr);
    assert_eq!(
        metric(&text, r#"bayonet_planner_decisions_total{engine="exact"}"#),
        1,
        "{text}"
    );
    assert_eq!(
        metric(&text, r#"bayonet_planner_decisions_total{engine="bdd"}"#),
        1,
        "{text}"
    );
    assert_eq!(metric(&text, "bayonet_planner_rejections_total"), 0);
    // Both runs missed the cache, so both recorded an actual/predicted
    // wall-clock ratio.
    assert_eq!(metric(&text, "bayonet_planner_cost_ratio_count"), 2);
    assert!(
        common::metric_value(&text, "bayonet_planner_cost_ratio_sum") > 0.0,
        "{text}"
    );
    handle.shutdown();
}

/// The posterior an auto-routed request returns is byte-identical to the
/// same program run with the chosen engine spelled out — proven across
/// independent servers so no cache can smooth over a divergence.
#[test]
fn auto_posterior_is_bit_identical_to_explicit_engine() {
    let auto_server = start(common::test_config()).expect("start auto server");
    let explicit_server = start(common::test_config()).expect("start explicit server");

    for (source, engine) in [(TINY, "exact"), (GOSSIP_K4, "bdd")] {
        let (status, _, auto_body) = http(auto_server.addr(), "POST", "/v1/run", &run_auto(source));
        assert_eq!(status, 200, "{auto_body}");
        let explicit = Json::obj(vec![
            ("source", Json::Str(source.into())),
            ("engine", Json::Str(engine.into())),
        ])
        .to_string();
        let (status, _, explicit_body) = http(explicit_server.addr(), "POST", "/v1/run", &explicit);
        assert_eq!(status, 200, "{explicit_body}");
        assert_eq!(
            auto_body, explicit_body,
            "auto and explicit {engine} diverged for {source:?}"
        );
    }
    auto_server.shutdown();
    explicit_server.shutdown();
}

/// A budget no engine can meet is rejected with a structured 422 *before*
/// any engine work: the error carries the planner's estimates and the
/// engine counters stay at zero.
#[test]
fn over_budget_auto_request_gets_structured_422_before_engine_work() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let body = Json::obj(vec![
        ("source", Json::Str(GOSSIP_K4.into())),
        ("engine", Json::Str("auto".into())),
        ("timeout_ms", Json::Num(1.0)),
    ])
    .to_string();
    let (status, _, payload) = http(addr, "POST", "/v1/run", &body);
    assert_eq!(status, 422, "{payload}");
    let doc = parse_json(&payload).expect("json body");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let error = doc.get("error").expect("error object");
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("infeasible_deadline"),
        "{payload}"
    );
    assert_eq!(
        error.get("field").and_then(Json::as_str),
        Some("timeout_ms"),
        "{payload}"
    );
    let plan = error.get("plan").expect("plan object in 422");
    let needed = plan
        .get("needed_ms")
        .and_then(Json::as_f64)
        .expect("needed_ms");
    let budget = plan
        .get("budget_ms")
        .and_then(Json::as_f64)
        .expect("budget_ms");
    assert!(needed > budget, "{payload}");
    assert!(
        plan.get("est_expansions")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "{payload}"
    );

    let text = metrics(addr);
    assert_eq!(metric(&text, "bayonet_planner_rejections_total"), 1);
    assert_eq!(
        metric(&text, "bayonet_engine_expansions_total"),
        0,
        "rejection must happen before any engine work\n{text}"
    );
    assert!(
        !text.contains("bayonet_planner_decisions_total{"),
        "no decision may be recorded for a rejected request\n{text}"
    );
    handle.shutdown();
}

/// Regression test for the cache-key identity, in both orders: an
/// auto-routed result and the same program with the chosen engine explicit
/// must occupy one cache entry, whichever arrives first.
#[test]
fn auto_and_explicit_share_one_cache_entry_both_orders() {
    let explicit_bdd = Json::obj(vec![
        ("source", Json::Str(GOSSIP_K4.into())),
        ("engine", Json::Str("bdd".into())),
    ])
    .to_string();

    // Order 1: auto first, explicit second.
    let handle = start(common::test_config()).expect("start server");
    let (status, _, first) = http(handle.addr(), "POST", "/v1/run", &run_auto(GOSSIP_K4));
    assert_eq!(status, 200, "{first}");
    let (status, _, second) = http(handle.addr(), "POST", "/v1/run", &explicit_bdd);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1, "{text}");
    assert_eq!(metric(&text, "bayonet_cache_misses_total"), 1, "{text}");
    handle.shutdown();

    // Order 2: explicit first, auto second.
    let handle = start(common::test_config()).expect("start server");
    let (status, _, first) = http(handle.addr(), "POST", "/v1/run", &explicit_bdd);
    assert_eq!(status, 200, "{first}");
    let (status, _, second) = http(handle.addr(), "POST", "/v1/run", &run_auto(GOSSIP_K4));
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1, "{text}");
    assert_eq!(metric(&text, "bayonet_cache_misses_total"), 1, "{text}");
    // The default engine IS exact, so a bare request and an auto-routed
    // tiny program also land on one entry.
    let (status, _, bare) = http(handle.addr(), "POST", "/v1/run", &common::run_body(TINY));
    assert_eq!(status, 200, "{bare}");
    let (status, _, auto) = http(handle.addr(), "POST", "/v1/run", &run_auto(TINY));
    assert_eq!(status, 200, "{auto}");
    assert_eq!(bare, auto);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 2, "{text}");
    assert_eq!(metric(&text, "bayonet_cache_misses_total"), 2, "{text}");
    handle.shutdown();
}

/// `/v1/batch` items with `"engine": "auto"` plan **per item**: the shared
/// source compiles once, but a per-item source override routes on its own
/// signals, and an over-budget item is rejected with the same structured
/// 422 a single request gets — without sinking the rest of the batch.
#[test]
fn batch_auto_items_plan_independently() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    // A shared top-level `source` forbids per-item overrides, so every
    // item carries its own; the scan phase still compiles each distinct
    // canonical program exactly once.
    let gossip = Json::Str(GOSSIP_K4.into());
    let tiny = Json::Str(TINY.into());
    let batch = format!(
        r#"{{"items":[{{"source":{gossip},"engine":"auto"}},{{"source":{gossip},"engine":"bdd"}},{{"source":{tiny},"engine":"auto"}},{{"source":{gossip},"engine":"auto","timeout_ms":1}}]}}"#,
    );
    let (status, payload) = post_batch(addr, &batch);
    assert_eq!(status, 200, "{payload}");
    let mut frames = parse_frames(&payload);
    assert_eq!(frames.len(), 4, "{payload}");
    frames.sort_by_key(|f| f.index);

    // Item 0 (auto) and item 1 (explicit bdd) are the same cache entry.
    assert_eq!(frames[0].status, 200, "{}", frames[0].body);
    assert_eq!(frames[1].status, 200, "{}", frames[1].body);
    assert_eq!(frames[0].body, frames[1].body);
    assert_eq!(engine_of(&frames[0].body), "bdd");

    // Item 2's per-item source is tiny: independent routing to exact.
    assert_eq!(frames[2].status, 200, "{}", frames[2].body);
    assert_eq!(engine_of(&frames[2].body), "exact");

    // Item 3's 1 ms budget is infeasible for gossip: structured 422 in its
    // frame, everything else unharmed.
    assert_eq!(frames[3].status, 422, "{}", frames[3].body);
    let doc = parse_json(&frames[3].body).expect("frame body json");
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("infeasible_deadline"),
        "{}",
        frames[3].body
    );

    let text = metrics(addr);
    // Two distinct canonical programs, two compiles — the three gossip
    // items shared one.
    assert_eq!(metric(&text, "bayonet_batch_compiles_total"), 2, "{text}");
    // Three auto items planned: two routed (bdd for gossip, exact for
    // tiny), one rejected.
    assert_eq!(
        metric(&text, r#"bayonet_planner_decisions_total{engine="bdd"}"#),
        1,
        "{text}"
    );
    assert_eq!(
        metric(&text, r#"bayonet_planner_decisions_total{engine="exact"}"#),
        1,
        "{text}"
    );
    assert_eq!(
        metric(&text, "bayonet_planner_rejections_total"),
        1,
        "{text}"
    );
    handle.shutdown();
}
