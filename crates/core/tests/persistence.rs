//! Crash/restart harness for the persistent result cache, driven through
//! the real `bayonet serve` binary: populate the cache over HTTP, SIGKILL
//! the process (no graceful flush), restart on the same `--cache-dir`, and
//! require a byte-identical cache hit with zero recomputation. A second
//! case corrupts the segment (bit flip + torn tail) and requires the
//! damaged records to be skipped and counted, never fatal.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

#[path = "../../serve/tests/common/mod.rs"]
mod common;
use common::{metric, metrics, post_run, unique_dir, TINY};

/// A spawned `bayonet serve` child; killed on drop so a failing assertion
/// never leaks a listener.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns `bayonet serve --addr 127.0.0.1:0 --cache-dir <dir>` and
    /// parses the bound address from the startup line on stderr.
    fn spawn(dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bayonet"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                dir.to_str().expect("utf8 dir"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn bayonet serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut line = String::new();
        BufReader::new(stderr)
            .read_line(&mut line)
            .expect("read startup line");
        let addr = line
            .trim()
            .rsplit("http://")
            .next()
            .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
            .parse()
            .unwrap_or_else(|e| panic!("bad address in {line:?}: {e}"));
        Server { child, addr }
    }

    /// SIGKILL — the whole point: no destructors, no flush, no fsync
    /// beyond what the write-behind thread already did per record.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
        std::mem::forget(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Polls `/metrics` until the record is durably on disk (the writes
/// counter only moves after the per-record fsync), so SIGKILL immediately
/// afterwards cannot lose it.
fn await_durable_writes(addr: SocketAddr, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if metric(&metrics(addr), "bayonet_cache_persist_writes_total") >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "record never became durable (writes_total < {want})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_then_restart_serves_cached_bytes_without_recomputation() {
    let dir = unique_dir("crash-warm");

    let server = Server::spawn(&dir);
    let (status, first) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{first}");
    await_durable_writes(server.addr, 1);
    server.kill();

    let server = Server::spawn(&dir);
    let text = metrics(server.addr);
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_corrupt_total"), 0);

    let (status, second) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{second}");
    assert_eq!(
        first, second,
        "result after crash+restart must be byte-identical"
    );

    // The hit came straight from the warm-loaded cache: no engine work.
    let text = metrics(server.addr);
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    server.kill();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_segment_is_skipped_counted_and_survivable() {
    let dir = unique_dir("crash-corrupt");

    let server = Server::spawn(&dir);
    let (status, original) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{original}");
    await_durable_writes(server.addr, 1);
    server.kill();

    // Damage the segment two ways at once: flip a bit inside the first
    // record's payload (offset 24 = 8-byte header + 8-byte frame + start
    // of the keyed payload) and tear the tail as a mid-append crash would.
    let segment = dir.join(bayonet_serve::SEGMENT_FILE);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 32, "segment too small: {}", bytes.len());
    bytes[30] ^= 0x01;
    bytes.truncate(bytes.len() - 2);
    std::fs::write(&segment, &bytes).expect("rewrite segment");

    let server = Server::spawn(&dir);
    let text = metrics(server.addr);
    assert!(
        metric(&text, "bayonet_cache_persist_load_corrupt_total") > 0,
        "corruption must be counted:\n{text}"
    );
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);

    // The server stays healthy and recomputes the exact same answer.
    let (status, recomputed) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(original, recomputed);
    let text = metrics(server.addr);
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 0);
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    server.kill();

    let _ = std::fs::remove_dir_all(&dir);
}

/// A batch populates the persistent cache through the real binary: after
/// SIGKILL + restart, replaying the batch over HTTP is pure cache hits
/// with byte-identical frames.
#[test]
fn sigkill_then_restart_replays_batch_from_disk() {
    let dir = unique_dir("crash-batch");
    let batch_body = format!(
        r#"{{"source":{},"items":[{{}},{{"engine":"smc","particles":50,"seed":9}}]}}"#,
        bayonet_serve::Json::Str(TINY.into())
    );

    let server = Server::spawn(&dir);
    let (status, payload) = common::post_batch(server.addr, &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut first = common::parse_frames(&payload);
    first.sort_by_key(|f| f.index);
    assert_eq!(first.len(), 2);
    await_durable_writes(server.addr, 2);
    server.kill();

    let server = Server::spawn(&dir);
    let text = metrics(server.addr);
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 2);

    let (status, payload) = common::post_batch(server.addr, &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut second = common::parse_frames(&payload);
    second.sort_by_key(|f| f.index);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.body, b.body, "item {} changed across crash", a.index);
    }
    let text = metrics(server.addr);
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 2);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    server.kill();

    let _ = std::fs::remove_dir_all(&dir);
}
