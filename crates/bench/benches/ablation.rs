//! Ablation benchmarks: configuration merging, FM pruning, backend choice,
//! and SMC particle counts (see `bin/ablations` for one-shot reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bayonet::{scenarios, ApproxOptions, ExactOptions, Sched};

fn bench_merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/merging");
    group.sample_size(10);
    // K3 keeps the merge-off trace enumeration tractable inside a bench.
    let k3 = scenarios::gossip(3, Sched::Uniform).unwrap();
    for merge in [true, false] {
        let opts = ExactOptions {
            merge_configs: merge,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("gossip_k3", merge), &opts, |b, opts| {
            b.iter(|| k3.exact_with(opts).unwrap().results[0].rat().clone())
        });
    }
    group.finish();
}

fn bench_fm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fm_pruning");
    group.sample_size(10);
    let network = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    for fm in [true, false] {
        let opts = ExactOptions {
            fm_pruning: fm,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("symbolic_congestion", fm),
            &opts,
            |b, opts| b.iter(|| k_cells(&network, opts)),
        );
    }
    group.finish();
}

fn k_cells(network: &bayonet::Network, opts: &ExactOptions) -> usize {
    network.exact_with(opts).unwrap().results[0].cells.len()
}

fn bench_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/backend");
    group.sample_size(10);
    let network =
        scenarios::reliability_chain(1, &bayonet::Rat::ratio(1, 1000), Sched::Uniform).unwrap();
    group.bench_function("direct_exact", |b| {
        b.iter(|| network.exact().unwrap().results[0].rat().clone())
    });
    group.bench_function("mini_psi_traces", |b| {
        b.iter(|| network.infer_via_psi(0).unwrap())
    });
    group.finish();
}

fn bench_particles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/particles");
    group.sample_size(10);
    let network = scenarios::congestion_example(Sched::Uniform).unwrap();
    for particles in [100usize, 1000, 10000] {
        let opts = ApproxOptions {
            particles,
            seed: 7,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("smc", particles), &opts, |b, opts| {
            b.iter(|| network.smc(0, opts).unwrap().value)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merging,
    bench_fm,
    bench_backend,
    bench_particles
);
criterion_main!(benches);
