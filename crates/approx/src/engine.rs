//! Approximate inference: Sequential Monte Carlo and rejection sampling.
//!
//! This crate plays the role WebPPL plays in the paper's toolchain. The
//! evaluation (§5) uses WebPPL's SMC method with 1000 particles; we
//! implement the same algorithm over the network transition system:
//! particles advance in lockstep one global step at a time, observation
//! failures kill particles, and the surviving population is resampled to
//! restore the particle count (with the survival fraction folded into the
//! normalization estimate `Ẑ`).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bayonet_net::{
    eval_query_expr, truth_of, CompiledQuery, Deadline, GlobalConfig, Model, NoChoiceDriver,
    QueryKind, Scheduler, SemanticsError,
};

use crate::driver::{sample_initial, sample_step, StepOutcome};

/// Options for the approximate engines.
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Number of SMC particles (the paper uses 1000) or rejection samples.
    pub particles: usize,
    /// Step bound per trace before declaring non-termination.
    pub max_global_steps: u64,
    /// RNG seed (runs are reproducible given a seed).
    pub seed: u64,
    /// Cooperative deadline/cancellation, polled once per SMC round or
    /// rejection attempt. Defaults to unlimited.
    pub deadline: Deadline,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            particles: 1000,
            max_global_steps: 1_000_000,
            seed: 0x0BA1_04E7,
            deadline: Deadline::default(),
        }
    }
}

/// Errors from approximate inference.
#[derive(Debug)]
pub enum ApproxError {
    /// A semantic error in the model.
    Semantics(SemanticsError),
    /// Traces failed to terminate within the step bound.
    Unterminated,
    /// Every particle/sample was rejected by observations.
    AllRejected,
    /// The run was cut short by its [`Deadline`] (timeout or cancellation).
    Interrupted {
        /// Samples or SMC rounds completed before the interruption.
        completed: u64,
    },
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::Semantics(e) => write!(f, "semantic error: {e}"),
            ApproxError::Unterminated => {
                f.write_str("sampled traces did not terminate within the step bound")
            }
            ApproxError::AllRejected => {
                f.write_str("all samples were rejected by observations (Ẑ ≈ 0)")
            }
            ApproxError::Interrupted { completed } => write!(
                f,
                "approximate inference interrupted by deadline (after {completed} rounds)"
            ),
        }
    }
}

impl std::error::Error for ApproxError {}

impl From<SemanticsError> for ApproxError {
    fn from(e: SemanticsError) -> Self {
        ApproxError::Semantics(e)
    }
}

/// A Monte-Carlo estimate.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Point estimate of the query value.
    pub value: f64,
    /// Standard error of the estimate (0 when degenerate).
    pub std_error: f64,
    /// Number of samples/particles contributing.
    pub samples: usize,
    /// Estimated surviving mass `Ẑ` (1 without observations).
    pub z_estimate: f64,
}

impl Estimate {
    fn from_values(values: &[f64], z_estimate: f64) -> Estimate {
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Estimate {
            value: mean,
            std_error: (var / n as f64).sqrt(),
            samples: n,
            z_estimate,
        }
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({} samples)",
            self.value, self.std_error, self.samples
        )
    }
}

fn query_value_on(
    model: &Model,
    query: &CompiledQuery,
    cfg: &GlobalConfig,
) -> Result<Option<f64>, SemanticsError> {
    let states = |node: usize, slot: usize| cfg.nodes[node].state[slot].clone();
    let mut driver = NoChoiceDriver;
    Ok(match query.kind {
        QueryKind::Probability => {
            let v = eval_query_expr(model, &query.expr, &states, &mut driver)?;
            Some(if truth_of(&v, &mut driver)? { 1.0 } else { 0.0 })
        }
        QueryKind::Expectation => {
            if cfg.has_error() {
                None // expectations exclude error terminals
            } else {
                let v = eval_query_expr(model, &query.expr, &states, &mut driver)?;
                let r = v.as_rat().ok_or_else(|| {
                    SemanticsError::SymbolicValueInConcreteContext(
                        "expectation of a symbolic value".into(),
                    )
                })?;
                Some(r.to_f64())
            }
        }
    })
}

/// Sequential Monte Carlo inference (the paper's WebPPL configuration).
///
/// All particles advance one global step per round; particles killed by a
/// failed `observe` are resampled from the survivors, and the survival
/// fraction multiplies the running estimate of `Z`.
///
/// # Errors
///
/// See [`ApproxError`].
pub fn smc(
    model: &Model,
    scheduler: &dyn Scheduler,
    query: &CompiledQuery,
    opts: &ApproxOptions,
) -> Result<Estimate, ApproxError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = opts.particles;
    let mut particles: Vec<GlobalConfig> = (0..n)
        .map(|_| sample_initial(model, &mut rng))
        .collect::<Result<_, _>>()?;
    let mut z_estimate = 1.0f64;

    for round in 0..opts.max_global_steps {
        if opts.deadline.expired() {
            return Err(ApproxError::Interrupted { completed: round });
        }
        let mut all_terminal = true;
        let mut dead: Vec<usize> = Vec::new();
        for (i, p) in particles.iter_mut().enumerate() {
            match sample_step(model, scheduler, p, &mut rng)? {
                StepOutcome::AlreadyTerminal => {}
                StepOutcome::Stepped => {
                    if !p.is_terminal() {
                        all_terminal = false;
                    }
                }
                StepOutcome::ObserveFailed => dead.push(i),
            }
        }
        if !dead.is_empty() {
            let alive = n - dead.len();
            if alive == 0 {
                return Err(ApproxError::AllRejected);
            }
            z_estimate *= alive as f64 / n as f64;
            // Resample dead particles uniformly from the survivors.
            let survivors: Vec<GlobalConfig> = particles
                .iter()
                .enumerate()
                .filter(|(i, _)| !dead.contains(i))
                .map(|(_, p)| p.clone())
                .collect();
            for i in dead {
                let pick = rng.gen_range(0..survivors.len());
                particles[i] = survivors[pick].clone();
                if !particles[i].is_terminal() {
                    all_terminal = false;
                }
            }
        }
        if all_terminal {
            let mut values = Vec::with_capacity(n);
            for p in &particles {
                if let Some(v) = query_value_on(model, query, p)? {
                    values.push(v);
                }
            }
            if values.is_empty() {
                return Err(ApproxError::AllRejected);
            }
            return Ok(Estimate::from_values(&values, z_estimate));
        }
    }
    Err(ApproxError::Unterminated)
}

/// Plain rejection sampling: sample complete traces, discard those that
/// violate an `observe`, and average the query over accepted terminals.
///
/// # Errors
///
/// See [`ApproxError`].
pub fn rejection(
    model: &Model,
    scheduler: &dyn Scheduler,
    query: &CompiledQuery,
    opts: &ApproxOptions,
) -> Result<Estimate, ApproxError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut values = Vec::with_capacity(opts.particles);
    let mut attempts = 0usize;
    while values.len() < opts.particles {
        attempts += 1;
        if attempts > opts.particles.saturating_mul(1000) {
            return Err(ApproxError::AllRejected);
        }
        if opts.deadline.expired() {
            return Err(ApproxError::Interrupted {
                completed: values.len() as u64,
            });
        }
        let Some(cfg) = sample_trace(model, scheduler, opts, &mut rng)? else {
            continue; // rejected by an observation
        };
        if let Some(v) = query_value_on(model, query, &cfg)? {
            values.push(v);
        }
    }
    let z = values.len() as f64 / attempts as f64;
    Ok(Estimate::from_values(&values, z))
}

/// Samples one complete trace to a terminal configuration; `None` when the
/// trace is rejected by a failed observation.
///
/// # Errors
///
/// Propagates semantic errors; reports non-termination past the step bound.
pub fn sample_trace(
    model: &Model,
    scheduler: &dyn Scheduler,
    opts: &ApproxOptions,
    rng: &mut StdRng,
) -> Result<Option<GlobalConfig>, ApproxError> {
    let mut cfg = sample_initial(model, rng)?;
    for _ in 0..opts.max_global_steps {
        match sample_step(model, scheduler, &mut cfg, rng)? {
            StepOutcome::ObserveFailed => return Ok(None),
            StepOutcome::AlreadyTerminal => return Ok(Some(cfg)),
            StepOutcome::Stepped => {
                if cfg.is_terminal() {
                    return Ok(Some(cfg));
                }
            }
        }
    }
    Err(ApproxError::Unterminated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_mean_and_standard_error() {
        let e = Estimate::from_values(&[0.0, 1.0, 0.0, 1.0], 1.0);
        assert_eq!(e.value, 0.5);
        assert_eq!(e.samples, 4);
        // Sample variance = 1/3; std error = sqrt(1/12).
        assert!((e.std_error - (1.0f64 / 12.0).sqrt()).abs() < 1e-12);
        assert_eq!(e.z_estimate, 1.0);
    }

    #[test]
    fn estimate_degenerate_cases() {
        let single = Estimate::from_values(&[2.5], 0.5);
        assert_eq!(single.value, 2.5);
        assert_eq!(single.std_error, 0.0);
        let constant = Estimate::from_values(&[3.0; 10], 1.0);
        assert_eq!(constant.value, 3.0);
        assert_eq!(constant.std_error, 0.0);
    }

    #[test]
    fn estimate_display_is_compact() {
        let e = Estimate::from_values(&[0.25, 0.75], 1.0);
        let text = e.to_string();
        assert!(text.contains("0.5000"), "{text}");
        assert!(text.contains("2 samples"), "{text}");
    }
}
