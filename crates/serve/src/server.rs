//! The TCP server: accept loop, bounded job queue, fixed worker pool.
//!
//! The accept thread pushes connections into a bounded crossbeam channel;
//! `threads` workers pull from it, each reading one request, running it
//! through the shared [`Service`], and writing the response. When the queue
//! is full the accept thread answers `503 Service Unavailable` with a
//! `Retry-After` header itself, so overload sheds load in microseconds
//! instead of stacking latency.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bayonet_exact::ComputePool;
use crossbeam::channel::{self, TrySendError};

use crate::http::{read_request, RequestError, Response};
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, DEFAULT_CACHE_MAX_BYTES};
use crate::service::{Service, ServiceOptions, DEFAULT_CACHE_ENTRIES};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8645`. Port 0 picks an ephemeral port
    /// (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing inference jobs.
    pub threads: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Bounded queue capacity; connections beyond this get `503`.
    pub queue_capacity: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Directory for the persistent result cache; `None` (the default)
    /// keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Segment-file size that triggers compaction when persistence is
    /// enabled.
    pub cache_max_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8645".to_string(),
            threads: 4,
            cache_entries: DEFAULT_CACHE_ENTRIES,
            queue_capacity: 64,
            io_timeout: Duration::from_secs(30),
            cache_dir: None,
            cache_max_bytes: DEFAULT_CACHE_MAX_BYTES,
        }
    }
}

/// A handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Signals shutdown and joins all threads. In-flight requests finish;
    /// queued connections are drained and served.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. forever, absent
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Starts the server: binds, spawns the worker pool and the accept loop.
///
/// # Errors
///
/// Fails if the address cannot be bound, or if `cache_dir` is set and the
/// persistent cache segment cannot be created or opened (corrupt segment
/// *contents* are skipped and counted, never fatal).
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // One shared compute pool, sized to the worker count: a large request
    // can borrow threads that would otherwise sit idle in the HTTP pool,
    // and under full load everyone degrades to single-threaded.
    let threads = config.threads.max(1);
    let service = Arc::new(Service::with_options(ServiceOptions {
        cache_entries: config.cache_entries,
        pool: Some(ComputePool::new(threads)),
        persist: config.cache_dir.as_ref().map(|dir| PersistConfig {
            dir: dir.clone(),
            max_bytes: config.cache_max_bytes,
        }),
    })?);
    let metrics = service.metrics();
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::bounded::<TcpStream>(config.queue_capacity);

    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let rx = rx.clone();
        let service = Arc::clone(&service);
        let io_timeout = config.io_timeout;
        workers.push(std::thread::spawn(move || {
            while let Ok(stream) = rx.recv() {
                service.metrics().queue_depth_add(-1);
                serve_connection(&service, stream, io_timeout);
            }
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let accept_metrics = Arc::clone(&metrics);
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break; // tx drops here; workers drain and exit
            }
            let Ok(stream) = stream else { continue };
            accept_metrics.queue_depth_add(1);
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    accept_metrics.queue_depth_add(-1);
                    let resp = Response::json(
                        503,
                        r#"{"ok":false,"error":{"kind":"overloaded","message":"job queue is full"}}"#,
                    )
                    .with_header("Retry-After", "1");
                    let _ = resp.write_to(&mut stream);
                    accept_metrics.record_request("_queue", 503, Duration::ZERO);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
    });

    Ok(ServerHandle {
        addr,
        metrics,
        shutdown,
        accept: Some(accept),
        workers,
    })
}

fn serve_connection(service: &Service, mut stream: TcpStream, io_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let response = match read_request(&mut stream) {
        // Batch requests stream per-item results over chunked transfer
        // encoding as they complete, so they bypass the buffered path.
        Ok(req) if req.method == "POST" && req.path == "/v1/batch" => {
            let _ = service.handle_batch(&req, &mut stream);
            return;
        }
        Ok(req) => service.handle(&req),
        Err(RequestError::Malformed("empty request")) => return, // probe/shutdown poke
        Err(RequestError::Io(_)) => return,
        Err(RequestError::TooLarge) => Response::json(
            413,
            r#"{"ok":false,"error":{"kind":"too_large","message":"request exceeds size limits"}}"#,
        ),
        Err(e @ RequestError::Malformed(_)) => Response::json(
            400,
            format!(r#"{{"ok":false,"error":{{"kind":"bad_request","message":"{e}"}}}}"#),
        ),
    };
    let _ = response.write_to(&mut stream);
}
