//! The Bayonet probabilistic network programming language (PLDI'18).
//!
//! This crate is the language front-end of the Bayonet reproduction: lexer,
//! parser, AST, pretty-printer, and the static integrity checks of paper §4.
//! A Bayonet source file declares
//!
//! * `packet_fields { ... }` — the packet header fields,
//! * `parameters { ... }` — symbolic configuration parameters (for
//!   synthesis, §2.3),
//! * `topology { nodes { ... } links { ... } }` — the network graph,
//! * `programs { Node -> prog, ... }` — which program each node runs,
//! * `queue_capacity N;` / `num_steps N;` / `scheduler ...;` — execution
//!   configuration,
//! * `init { packet -> (Node, ptK) { field = v }; ... }` — packets present
//!   at time zero,
//! * `query probability(b);` / `query expectation(e);` — the questions to
//!   answer (Figure 8), and
//! * `def prog(pkt, pt) state x(init) { ... }` — probabilistic
//!   packet-processing programs (Figure 4).
//!
//! # Examples
//!
//! ```
//! use bayonet_lang::{parse, check};
//!
//! let program = parse(r#"
//!     packet_fields { dst }
//!     topology {
//!         nodes { H0, H1 }
//!         links { (H0, pt1) <-> (H1, pt1) }
//!     }
//!     programs { H0 -> send, H1 -> recv }
//!     init { packet -> (H0, pt1); }
//!     query probability(got@H1 == 1);
//!
//!     def send(pkt, pt) {
//!         if flip(1/2) { fwd(1); } else { drop; }
//!     }
//!     def recv(pkt, pt) state got(0) {
//!         got = 1;
//!         drop;
//!     }
//! "#)?;
//! let report = check(&program).expect("integrity checks pass");
//! assert!(report.warnings.is_empty());
//! # Ok::<(), bayonet_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod check;
mod error;
mod lexer;
mod parser;
mod pretty;
pub mod testgen;
pub mod token;

pub use ast::{
    BinOp, Endpoint, Expr, Ident, InitPacket, Link, NodeDef, Program, Query, SchedulerSpec, Stmt,
    Topology,
};
pub use check::{check, const_eval, CheckReport, Warning};
pub use error::{LangError, Phase};
pub use lexer::lex;
pub use parser::{parse, parse_expr};
pub use pretty::{pretty_expr, pretty_program, pretty_stmts};
