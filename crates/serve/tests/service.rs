//! End-to-end tests of the HTTP server: a real `TcpListener` on an
//! ephemeral port, real sockets, concurrent clients.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig};

mod common;

const GOSSIP: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

/// Gossip on K4 (examples/bay/gossip_k4.bay): heavy enough that a 1 ms
/// deadline reliably expires mid-exploration.
const GOSSIP_K4: &str = r#"
    packet_fields { dst }
    topology {
        nodes { S0, S1, S2, S3 }
        links {
            (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
            (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
            (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
        }
    }
    programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
    init { packet -> (S0, pt1); }
    query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
    def seed(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); }
        else { drop; }
    }
    def gossip(pkt, pt) state infected(0) {
        if infected == 0 {
            infected = 1;
            dup;
            fwd(uniformInt(1, 3));
            fwd(uniformInt(1, 3));
        } else { drop; }
    }
"#;

/// One-shot HTTP exchange: returns (status, headers, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

fn run_body(source: &str) -> String {
    Json::obj(vec![("source", Json::Str(source.into()))]).to_string()
}

#[test]
fn concurrent_clients_all_get_exact_answers() {
    let handle = start(ServerConfig {
        threads: 4,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, _, body) = http(addr, "POST", "/v1/run", &run_body(GOSSIP));
                (status, body)
            })
        })
        .collect();
    for client in clients {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let doc = bayonet_serve::parse_json(&body).expect("json body");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("1/3"), "{text}");
    }
    handle.shutdown();
}

#[test]
fn repeat_requests_hit_the_cache_per_metrics() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let (status, _, first) = http(addr, "POST", "/v1/run", &run_body(GOSSIP));
    assert_eq!(status, 200, "{first}");
    let (status, _, second) = http(addr, "POST", "/v1/run", &run_body(GOSSIP));
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second);

    let (status, head, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "Prometheus content type: {head}"
    );
    // The second run was a cache hit: the engine ran exactly once.
    assert!(metrics.contains("bayonet_cache_hits_total 1"), "{metrics}");
    assert!(
        metrics.contains("bayonet_cache_misses_total 1"),
        "{metrics}"
    );
    // Prometheus text sanity: TYPE lines and nonzero counters.
    assert!(
        metrics.contains("# TYPE bayonet_requests_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains(r#"bayonet_requests_total{endpoint="/v1/run",status="200"} 2"#),
        "{metrics}"
    );
    assert!(
        metrics.contains("bayonet_engine_expansions_total"),
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn expired_deadline_returns_structured_timeout() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let body = Json::obj(vec![
        ("source", Json::Str(GOSSIP_K4.into())),
        ("timeout_ms", Json::Num(1.0)),
    ])
    .to_string();
    let (status, _, payload) = http(addr, "POST", "/v1/run", &body);
    assert_eq!(status, 504, "{payload}");
    let doc = bayonet_serve::parse_json(&payload).expect("json body");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    let error = doc.get("error").unwrap();
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("timeout"));
    assert!(
        error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("interrupted by deadline"),
        "{payload}"
    );
    handle.shutdown();
}

#[test]
fn overloaded_queue_sheds_load_with_503() {
    // One worker, a one-slot queue, and a short I/O timeout so the
    // stalled connection cannot wedge the test.
    let handle = start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        io_timeout: Duration::from_secs(5),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Occupy the worker: connect but never send a request, so the worker
    // blocks reading this socket.
    let stall = TcpStream::connect(addr).expect("stall connection");
    std::thread::sleep(Duration::from_millis(200));
    // Fill the queue's single slot the same way.
    let parked = TcpStream::connect(addr).expect("parked connection");
    std::thread::sleep(Duration::from_millis(100));

    // The next connection is rejected by the accept loop before any
    // request bytes are read.
    let mut conn = TcpStream::connect(addr).expect("overflow connection");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 503");
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("Retry-After: 1"), "{raw}");
    assert!(raw.contains(r#""kind":"overloaded""#), "{raw}");

    // Release the worker and the queued slot so shutdown joins cleanly.
    drop(stall);
    drop(parked);
    handle.shutdown();
}
