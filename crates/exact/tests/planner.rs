//! Golden tests for the static cost-model planner.
//!
//! A table of curated programs pins (a) the engine the planner routes each
//! one to and (b) that the predicted enumeration cost stays within a
//! **documented factor of 32** of the measured expansion count from the
//! engine's own statistics (the CLI's `--stats`). The model is calibrated,
//! not clairvoyant: it systematically overestimates small state spaces
//! (merging is most effective there), so the tolerance is wide but the
//! *routing* — the thing posteriors and deadlines depend on — is pinned
//! exactly.

use std::time::Duration;

use bayonet_exact::{
    analyze, plan_model, EngineKind, ExactOptions, PlanDecision, PlanEngine, PlannerConfig,
};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model};

mod common;

/// Documented accuracy bound: predicted expansions stay within this factor
/// of the measured count, in both directions (see docs/PERFORMANCE.md).
const COST_FACTOR: f64 = 32.0;

const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

/// Local copy of the `bayonet::scenarios` gossip generator (the core crate
/// depends on this one, so the test cannot import it).
fn gossip_source(n: usize) -> String {
    let nodes: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    let mut links = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            links.push(format!("(S{i}, pt{}) <-> (S{j}, pt{})", j, i + 1));
        }
    }
    let mut programs = vec!["S0 -> seed".to_string()];
    for node in nodes.iter().skip(1) {
        programs.push(format!("{node} -> gossip"));
    }
    let sum = (0..n)
        .map(|i| format!("infected@S{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let deg = n - 1;
    format!(
        r#"
packet_fields {{ dst }}
topology {{ nodes {{ {nodes} }} links {{ {links} }} }}
programs {{ {programs} }}
queue_capacity 2;
init {{ packet -> (S0, pt1); }}
query expectation({sum});
def seed(pkt, pt) state infected(0) {{
    if infected == 0 {{ infected = 1; fwd(uniformInt(1, {deg})); }} else {{ drop; }}
}}
def gossip(pkt, pt) state infected(0) {{
    if infected == 0 {{
        infected = 1; dup; fwd(uniformInt(1, {deg})); fwd(uniformInt(1, {deg}));
    }} else {{ drop; }}
}}
"#,
        nodes = nodes.join(", "),
        links = links.join(",\n        "),
        programs = programs.join(", "),
    )
}

/// A deterministic relay chain of `n` nodes: one packet hops end to end.
/// With `n > 64` the BDD backend's `u128` packing bound rules it out, so
/// the planner must fall back to enumeration no matter how symmetric the
/// program sharing is.
fn chain_source(n: usize) -> String {
    let nodes: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
    let links: Vec<String> = (0..n - 1)
        .map(|i| format!("(N{i}, pt2) <-> (N{}, pt1)", i + 1))
        .collect();
    let mut programs = vec![format!("N0 -> relay"), format!("N{} -> sink", n - 1)];
    for node in nodes.iter().take(n - 1).skip(1) {
        programs.push(format!("{node} -> relay"));
    }
    format!(
        r#"
packet_fields {{ dst }}
topology {{ nodes {{ {nodes} }} links {{ {links} }} }}
programs {{ {programs} }}
scheduler roundrobin;
init {{ packet -> (N0, pt1); }}
query probability(done@N{last} == 1);
def relay(pkt, pt) {{ fwd(2); }}
def sink(pkt, pt) state done(0) {{ done = 1; drop; }}
"#,
        nodes = nodes.join(", "),
        links = links.join(",\n        "),
        programs = programs.join(", "),
        last = n - 1,
    )
}

fn model_of(source: &str) -> Model {
    compile(&parse(source).expect("parse")).expect("compile")
}

fn measured_expansions(model: &Model, engine: EngineKind) -> u64 {
    let opts = ExactOptions {
        engine,
        ..ExactOptions::default()
    };
    let analysis = analyze(model, &*scheduler_for(model), &opts).expect("analyze");
    analysis.stats.expansions
}

/// The golden table: program → pinned engine, with predicted-vs-measured
/// accuracy asserted for every row cheap enough to run under the debug
/// profile (`measure: false` rows pin routing only; gossip_k5 enumerates
/// half a million configurations, which the release-mode `regress` harness
/// times instead).
#[test]
fn golden_table_pins_routing_and_cost_accuracy() {
    struct Row {
        name: &'static str,
        source: String,
        expect: PlanEngine,
        measure: bool,
    }
    let rows = [
        Row {
            name: "tiny",
            source: TINY.to_string(),
            expect: PlanEngine::Enum,
            measure: true,
        },
        Row {
            name: "gossip_k4",
            source: gossip_source(4),
            expect: PlanEngine::Bdd,
            measure: true,
        },
        Row {
            name: "gossip_k5",
            source: gossip_source(5),
            expect: PlanEngine::Bdd,
            measure: false,
        },
        Row {
            name: "chain_70_fallback",
            source: chain_source(70),
            expect: PlanEngine::Enum,
            measure: true,
        },
    ];
    let cfg = PlannerConfig::default();
    for row in &rows {
        let model = model_of(&row.source);
        let plan = plan_model(&model, &cfg, None);
        assert_eq!(
            plan.engine(),
            Some(row.expect),
            "{}: wrong route\n{}",
            row.name,
            plan.explain()
        );
        if row.expect == PlanEngine::Bdd {
            assert!(
                plan.signals.shared_program_nodes >= 2,
                "{}: bdd route must rest on the symmetry signal",
                row.name
            );
        }
        if row.name == "chain_70_fallback" {
            assert!(
                plan.signals.nodes > 64 && plan.est_bdd_ns.is_none(),
                "{}: >64 nodes must make bdd ineligible\n{}",
                row.name,
                plan.explain()
            );
        }
        if row.measure {
            let engine = match row.expect {
                PlanEngine::Bdd => EngineKind::Bdd,
                _ => EngineKind::Enum,
            };
            let measured = measured_expansions(&model, engine).max(1);
            let ratio = plan.est_expansions as f64 / measured as f64;
            assert!(
                (1.0 / COST_FACTOR..=COST_FACTOR).contains(&ratio),
                "{}: predicted {} vs measured {} expansions (ratio {:.2}) \
                 outside the documented {}x envelope\n{}",
                row.name,
                plan.est_expansions,
                measured,
                ratio,
                COST_FACTOR,
                plan.explain()
            );
        }
    }
}

/// `EngineKind::Auto` resolves through the planner inside `analyze`, and
/// the posterior is bit-identical to the explicitly chosen backend.
#[test]
fn auto_engine_matches_explicit_choice() {
    for source in [TINY.to_string(), gossip_source(4)] {
        let model = model_of(&source);
        let auto = analyze(
            &model,
            &*scheduler_for(&model),
            &ExactOptions {
                engine: EngineKind::Auto,
                ..ExactOptions::default()
            },
        )
        .expect("auto analyze");
        let chosen = match plan_model(&model, &PlannerConfig::default(), None).engine() {
            Some(PlanEngine::Bdd) => EngineKind::Bdd,
            _ => EngineKind::Enum,
        };
        let explicit = analyze(
            &model,
            &*scheduler_for(&model),
            &ExactOptions {
                engine: chosen,
                ..ExactOptions::default()
            },
        )
        .expect("explicit analyze");
        assert_eq!(auto.terminals, explicit.terminals);
        assert_eq!(auto.discarded, explicit.discarded);
        assert_eq!(auto.stats.steps, explicit.stats.steps);
        assert_eq!(auto.stats.expansions, explicit.stats.expansions);
    }
}

/// Deadline admission: a budget nothing can meet is rejected up front; a
/// budget only sampling can meet routes to SMC with the error-bounded
/// particle count; symbolic parameters keep the request on exact engines.
#[test]
fn budget_routing_and_admission() {
    let k5 = model_of(&gossip_source(5));
    let cfg = PlannerConfig::default();

    // Exact estimates for gossip_k5 are far beyond 1 s, but SMC is linear
    // and fits: the planner falls back to sampling.
    let plan = plan_model(&k5, &cfg, Some(Duration::from_secs(1)));
    assert_eq!(plan.engine(), Some(PlanEngine::Smc), "{}", plan.explain());
    let expected_n = (0.25 / (cfg.target_std_error * cfg.target_std_error)).ceil() as usize;
    assert_eq!(
        plan.particles,
        Some(expected_n.clamp(cfg.min_particles, cfg.max_particles))
    );

    // A nanosecond budget admits nothing: structured rejection, with the
    // cheapest estimate attached so the caller can report what was needed.
    let plan = plan_model(&k5, &cfg, Some(Duration::from_nanos(1)));
    match plan.decision {
        PlanDecision::Infeasible { needed_ns } => assert!(needed_ns > 1),
        other => panic!("expected infeasible, got {other:?}\n{}", plan.explain()),
    }

    // Unlimited budget: exact inference is preferred whenever its estimate
    // sits under the SMC cutover, even when sampling would be cheaper.
    let plan = plan_model(&k5, &cfg, None);
    assert_eq!(plan.engine(), Some(PlanEngine::Bdd), "{}", plan.explain());

    // Symbolic parameters rule sampling out entirely.
    let ecmp = model_of(
        &std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/bay/ecmp_costs.bay"
        ))
        .expect("read ecmp_costs.bay"),
    );
    let plan = plan_model(&ecmp, &cfg, None);
    assert!(plan.signals.symbolic_params);
    assert!(plan.est_smc_ns.is_none() && plan.particles.is_none());
}
