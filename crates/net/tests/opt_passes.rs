//! Per-pass unit tests for the model-optimization pipeline
//! (`bayonet_net::opt`): constant/guard folding, loop-invariant hoisting,
//! dead-flip elimination, and topology symmetry detection — each pinned
//! through its `OptReport` counters on a program built to trigger exactly
//! that rewrite. Whole-posterior equivalence of the optimized model is
//! pinned separately by `crates/exact/tests/opt_differential.rs`.

use bayonet_lang::parse;
use bayonet_net::opt::{model_facts, optimize, optimize_with, OptReport, PassConfig};
use bayonet_net::{compile, Model};

fn model(src: &str) -> Model {
    compile(&parse(src).expect("parses")).expect("compiles")
}

fn report(src: &str) -> (Model, OptReport) {
    let optimized = optimize(&model(src));
    let report = optimized
        .opt_info()
        .expect("optimize attaches opt_info")
        .report
        .clone();
    (optimized, report)
}

/// Two-node skeleton with handler bodies spliced in.
fn two_node(a_body: &str, b_body: &str) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        parameters {{ P }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> a, B -> b }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def a(pkt, pt) {a_body}
        def b(pkt, pt) {b_body}
        "#
    )
}

const RECV: &str = "state got(0) { got = 1; drop; }";

#[test]
fn constant_guards_fold() {
    let (_, r) = report(&two_node("{ if 1 < 2 { fwd(1); } else { drop; } }", RECV));
    assert!(r.guards_folded >= 1, "{r:?}");
    assert!(r.pass_runs >= 1, "{r:?}");
}

#[test]
fn constant_subexpressions_fold() {
    let (_, r) = report(&two_node(
        "state x(0) { x = 1 + 2 + 3; if x > 0 { fwd(1); } else { drop; } }",
        RECV,
    ));
    assert!(r.consts_folded >= 1, "{r:?}");
}

#[test]
fn parameter_guards_never_fold() {
    // Binding independence: `P` must survive every pass so one optimized
    // model serves all sweep points and batch bindings.
    let (optimized, r) = report(&two_node("{ if P < 5 { fwd(1); } else { drop; } }", RECV));
    assert_eq!(r.guards_folded, 0, "{r:?}");
    assert!(optimized.has_symbolic_params());
}

#[test]
fn loop_invariant_binding_hoists() {
    let (_, r) = report(&two_node(
        "state s(0), n(0) {
            while n < 2 { cost = P + 1; s = s + cost; n = n + 1; }
            if s > 0 { fwd(1); } else { drop; }
        }",
        RECV,
    ));
    assert!(r.hoisted >= 1, "{r:?}");
}

#[test]
fn dead_flip_assignment_is_eliminated() {
    // `junk` is written with randomness but never read by any statement or
    // query: the flip site must disappear (fewer random branches for the
    // engines) without touching the live `got` path.
    let (_, r) = report(&two_node(
        "state junk(0) { junk = flip(1/2); fwd(1); }",
        RECV,
    ));
    assert!(r.flips_eliminated >= 1, "{r:?}");
    assert!(r.dead_stmts >= 1, "{r:?}");
}

#[test]
fn dead_randomized_initializer_is_zeroed() {
    let (_, r) = report(&two_node("state junk(flip(1/2)) { fwd(1); }", RECV));
    assert!(r.inits_zeroed >= 1, "{r:?}");
    // Per the field contract, zeroed initializers count as eliminated
    // random sites too.
    assert!(r.flips_eliminated >= r.inits_zeroed, "{r:?}");
}

#[test]
fn live_flips_are_never_eliminated() {
    let (_, r) = report(&two_node(
        "state coin(0) { coin = flip(1/2); if coin == 1 { fwd(1); } else { drop; } }",
        RECV,
    ));
    assert_eq!(r.flips_eliminated, 0, "{r:?}");
}

const GOSSIP_K4: &str = r#"
    packet_fields { dst }
    topology {
        nodes { S0, S1, S2, S3 }
        links {
            (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
            (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
            (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
        }
    }
    programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
    init { packet -> (S0, pt1); }
    query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
    def seed(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); } else { drop; }
    }
    def gossip(pkt, pt) state infected(0) {
        if infected == 0 {
            infected = 1; dup;
            fwd(uniformInt(1, 3)); fwd(uniformInt(1, 3));
        } else { drop; }
    }
"#;

#[test]
fn gossip_k4_has_the_full_peer_symmetry() {
    // S1, S2, S3 are interchangeable (same program, complete graph, and
    // the query sums over all of them): the group is S_3 acting on the
    // peers, order 6, one non-trivial orbit {S1, S2, S3}.
    let (optimized, r) = report(GOSSIP_K4);
    assert_eq!(r.group_order, 6, "{}", r.symmetry_note);
    assert_eq!(r.orbits, vec![vec![1, 2, 3]], "{r:?}");
    let info = optimized.opt_info().unwrap();
    let group = info.symmetry.as_ref().expect("non-trivial group kept");
    assert_eq!(group.order(), 6);
    assert_eq!(group.largest_orbit(), 3);
}

#[test]
fn asymmetric_gossip_variant_has_trivial_orbits() {
    // The same K4 gossip shape, but every peer runs a *different* program:
    // no node permutation can preserve behavior, so the symmetry pass must
    // report the trivial group rather than merging observably distinct
    // states.
    let src = GOSSIP_K4.replace(
        "programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }",
        "programs { S0 -> seed, S1 -> gossip, S2 -> eager, S3 -> lazy }",
    ) + r#"
    def eager(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; dup; fwd(1); fwd(2); } else { drop; }
    }
    def lazy(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); } else { drop; }
    }
"#;
    let (optimized, r) = report(&src);
    assert_eq!(r.group_order, 1, "{}", r.symmetry_note);
    assert!(r.orbits.is_empty(), "{r:?}");
    assert!(optimized.opt_info().unwrap().symmetry.is_none());
}

#[test]
fn node_state_in_the_query_blocks_asymmetric_permutations() {
    // Querying a single peer's state breaks the S1/S2/S3 symmetry down to
    // the stabilizer of S1: only the {S2, S3} swap survives.
    let src = GOSSIP_K4.replace(
        "query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);",
        "query expectation(infected@S1);",
    );
    let (_, r) = report(&src);
    assert_eq!(r.group_order, 2, "{}", r.symmetry_note);
    assert_eq!(r.orbits, vec![vec![2, 3]], "{r:?}");
}

#[test]
fn disabling_individual_passes_skips_their_rewrites() {
    let src = two_node(
        "state junk(0) { junk = flip(1/2); if 1 < 2 { fwd(1); } else { drop; } }",
        RECV,
    );
    let m = model(&src);
    let no_fold = optimize_with(
        &m,
        &PassConfig {
            fold: false,
            ..PassConfig::default()
        },
    );
    let r = &no_fold.opt_info().unwrap().report;
    assert_eq!(r.guards_folded + r.consts_folded + r.hoisted, 0, "{r:?}");
    let no_dead = optimize_with(
        &m,
        &PassConfig {
            dead_flip: false,
            ..PassConfig::default()
        },
    );
    let r = &no_dead.opt_info().unwrap().report;
    assert_eq!(r.dead_stmts + r.flips_eliminated, 0, "{r:?}");
    let no_sym = optimize_with(
        &m,
        &PassConfig {
            symmetry: false,
            ..PassConfig::default()
        },
    );
    let info = no_sym.opt_info().unwrap();
    assert_eq!(info.report.group_order, 1);
    assert!(info.symmetry.is_none());
}

#[test]
fn attached_facts_describe_the_optimized_model() {
    // The planner consumes `opt_info.facts` instead of re-walking the
    // model; they must equal a fresh traversal of the *optimized* model
    // (dead flips removed), not of the input.
    let src = two_node(
        "state junk(0) { junk = flip(1/2); coin = flip(1/2);
          if coin == 1 { fwd(1); } else { drop; } }",
        RECV,
    );
    let optimized = optimize(&model(&src));
    let cached = &optimized.opt_info().unwrap().facts;
    let fresh = model_facts(&optimized);
    assert_eq!(cached.flip_sites, fresh.flip_sites);
    assert_eq!(cached.uniform_sites, fresh.uniform_sites);
    assert_eq!(cached.dup_sites, fresh.dup_sites);
    assert_eq!(cached.shared_program_nodes, fresh.shared_program_nodes);
    assert!((cached.handler_branching - fresh.handler_branching).abs() < 1e-12);
    // And the dead flip is really gone from the cost model's view: only
    // the live coin flip remains on node A.
    assert_eq!(cached.flip_sites, 1, "{cached:?}");
}

#[test]
fn canonicalize_maps_an_orbit_to_one_representative() {
    use bayonet_net::{initial_config, Val};
    let optimized = optimize(&model(GOSSIP_K4));
    let info = optimized.opt_info().unwrap();
    let group = info.symmetry.as_ref().expect("gossip has a group");
    let zeros: Vec<Vec<Val>> = optimized
        .programs
        .iter()
        .map(|p| vec![Val::zero(); p.state_names.len()])
        .collect();
    // "S2 infected" and "S3 infected" lie in one orbit (the peers are
    // interchangeable): both must canonicalize to the same representative.
    let mut s2_hot = initial_config(&optimized, zeros.clone()).unwrap();
    s2_hot.nodes[2].state[0] = Val::one();
    let mut s3_hot = initial_config(&optimized, zeros).unwrap();
    s3_hot.nodes[3].state[0] = Val::one();
    assert_ne!(s2_hot, s3_hot);
    group.canonicalize(&mut s2_hot);
    group.canonicalize(&mut s3_hot);
    assert_eq!(s2_hot, s3_hot);
    // Canonicalizing a representative again is a no-op.
    let mut again = s2_hot.clone();
    assert!(!group.canonicalize(&mut again));
    assert_eq!(again, s2_hot);
}
