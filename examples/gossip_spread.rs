//! Gossip protocols (paper §5.3): expected number of nodes reached by a
//! randomized epidemic broadcast on complete graphs — exact for small
//! networks, SMC for the paper's 20- and 30-node sizes.
//!
//! Run with: `cargo run --release --example gossip_spread`

use bayonet::{scenarios, ApproxOptions, Sched};

fn main() -> Result<(), bayonet::Error> {
    // Exact on K3, K4, K5 (K4 is the paper's 94/27 ≈ 3.4815).
    println!("exact expectation of infected nodes:");
    for n in [3usize, 4, 5] {
        let network = scenarios::gossip(n, Sched::Uniform)?;
        let report = network.exact()?;
        let e = report.results[0].rat();
        println!(
            "  K{n:<2}  E[#infected] = {e} ≈ {:.4}   ({} terminal configs)",
            e.to_f64(),
            report.stats.terminal_configs
        );
    }

    // The paper asks for the *distribution* of infected nodes (§5.3):
    let k4 = scenarios::gossip(4, Sched::Uniform)?;
    println!("\n  distribution of #infected on K4:");
    for (value, prob) in k4.distribution(0)? {
        println!("    P(#infected = {value}) = {prob} ≈ {:.4}", prob.to_f64());
    }
    println!();

    // The deterministic scheduler gives the same expectation (Table 1).
    let det = scenarios::gossip(4, Sched::Deterministic)?;
    println!(
        "  K4 under det. scheduler       = {} (scheduler-independent)",
        det.exact()?.results[0].rat()
    );

    // SMC for the scaled sizes of Table 1 (1000 particles, like WebPPL).
    println!("\nSMC estimates (1000 particles):");
    for n in [10usize, 20, 30] {
        let network = scenarios::gossip(n, Sched::Uniform)?;
        let est = network.smc(
            0,
            &ApproxOptions {
                particles: 1000,
                seed: 1,
                ..Default::default()
            },
        )?;
        println!("  K{n:<2}  E[#infected] ≈ {est}");
    }
    println!("\n(Paper Table 1: K20 ≈ 16.0, K30 ≈ 24.0.)");
    Ok(())
}
