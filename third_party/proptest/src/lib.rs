//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the strategy-combinator subset of proptest it actually uses:
//! `proptest!`, `prop_compose!`, `prop_oneof!`, the `prop_assert*` /
//! `prop_assume!` macros, integer-range and string-pattern strategies,
//! `any::<T>()`, `proptest::collection::vec`, `proptest::bool::ANY`, tuples,
//! `Just`, and the `prop_map` / `prop_flat_map` / `prop_recursive`
//! combinators.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (derived from file/line, overridable via `PROPTEST_CASES` for the
//! count), there is **no shrinking** (failures report the failing input via
//! `Debug` where available, but do not minimize it), and string strategies
//! accept only the simple `class{lo,hi}` regex form the workspace uses.

#![forbid(unsafe_code)]

use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving test-case production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator for one test case, derived from a stable identifier
    /// (e.g. file/line) and the case index.
    pub fn for_case(ident: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in ident.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption violated) with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs one generated case: samples `strategy` and feeds the value to `f`.
///
/// Used by `proptest!` instead of an immediately-invoked closure so the
/// closure's parameter type is pinned to `S::Value` up front (otherwise
/// inference can commit to an unsized type from a `&pattern` use in the
/// body before seeing the call site).
pub fn exec_case<S, F>(strategy: &S, rng: &mut TestRng, f: F) -> TestCaseResult
where
    S: Strategy,
    F: FnOnce(S::Value) -> TestCaseResult,
{
    f(strategy.sample(rng))
}

/// Number of cases per property (default 64; override with
/// `PROPTEST_CASES`).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

// ---------------------------------------------------------------------------
// The Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + 'static,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case, and `f` wraps
    /// an inner strategy into a composite one, applied up to `depth` times.
    /// The `_desired_size`/`_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so expansion terminates.
            let expanded = f(current).boxed();
            current = one_of(vec![leaf.clone(), expanded]);
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + 'static,
    T: 'static,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }.boxed()
}

struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// Integer and float ranges -------------------------------------------------

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = rng.next_u128() % span;
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let v = rng.next_u128() % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128).wrapping_sub(self.start as i128) as u128 + 1;
                let v = rng.next_u128() % span;
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128/u128 need widening beyond i128, so they get dedicated impls.
impl Strategy for core::ops::RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let v = rng.next_u128();
        if v >= self.start {
            v
        } else {
            self.start + v % (u128::MAX - self.start + 1)
        }
    }
}

impl Strategy for core::ops::Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

// Tuples -------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// String patterns ----------------------------------------------------------

/// `&'static str` acts as a string strategy for the simple pattern form
/// `class{lo,hi}` where `class` is `.` or a `[...]` character class with
/// `a-z`-style ranges; exactly the forms used in this workspace.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest;
    let mut chars: Vec<char> = Vec::new();
    if let Some(body) = pat.strip_prefix('[') {
        let close = body.find(']')?;
        let class: Vec<char> = body[..close].chars().collect();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        rest = &body[close + 1..];
    } else if let Some(r) = pat.strip_prefix('.') {
        // Printable ASCII plus whitespace and a few multi-byte scalars, to
        // exercise non-ASCII handling.
        chars.extend((0x20u8..0x7F).map(char::from));
        chars.extend(['\n', '\t', '\r', 'é', 'λ', '≈', '🦀']);
        rest = r;
    } else {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((chars, lo.parse().ok()?, hi.parse().ok()?))
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type (see [`Arbitrary`]).
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// Boolean strategies.
pub mod bool {
    /// The strategy producing either boolean with equal probability.
    pub struct BoolAny;

    impl super::Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Yields `true` or `false` uniformly.
    pub const ANY: BoolAny = BoolAny;
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive size specification for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let cases = $crate::case_count();
                let ident = concat!(file!(), "::", stringify!($name));
                let mut rejected = 0u64;
                let mut case = 0u64;
                let mut run = 0u64;
                while run < cases {
                    let mut rng = $crate::TestRng::for_case(ident, case);
                    case += 1;
                    let outcome = $crate::exec_case(&strategy, &mut rng, |($($pat,)+)| {
                        $body
                        Ok(())
                    });
                    match outcome {
                        Ok(()) => run += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > cases * 16 {
                                panic!("too many prop_assume! rejections in {}", stringify!($name));
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                case - 1, stringify!($name), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy-building function:
/// `fn name(args)(pat in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), left, right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), format!($($fmt)+), left, right
                );
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    left != right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a),
                    stringify!($b),
                    left
                );
            }
        }
    };
}

/// Skips the current case (without failing) when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::{
        any, one_of, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("self", 0);
        for _ in 0..500 {
            let v = (-3i64..=3).sample(&mut rng);
            assert!((-3..=3).contains(&v));
            let u = (1u8..4).sample(&mut rng);
            assert!((1..4).contains(&u));
            let w = (1u128..).sample(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::TestRng::for_case("self", 1);
        let strat = "[a-c0-1 -]{2,5}";
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars().all(|c| "abc01 -".contains(c)),
                "unexpected char in {s:?}"
            );
        }
    }

    #[test]
    fn vec_and_tuple_and_oneof_compose() {
        let strat = crate::collection::vec((0i64..10).prop_map(|v| v * 2), 1..4);
        let mut rng = crate::TestRng::for_case("self", 2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|x| x % 2 == 0 && (0..20).contains(x)));
        }
        let choice = prop_oneof![Just(1u8), Just(2u8)];
        let got = choice.sample(&mut rng);
        assert!(got == 1 || got == 2);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
                    .boxed()
            });
        let mut rng = crate::TestRng::for_case("self", 3);
        for _ in 0..200 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }

    prop_compose! {
        fn arb_even()(half in 0i64..50) -> i64 { half * 2 }
    }

    proptest! {
        #[test]
        fn composed_strategies_apply_their_body(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }
    }
}
