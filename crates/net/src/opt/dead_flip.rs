//! Dead-flip / dead-assignment elimination.
//!
//! A state slot is *live* when some handler expression reads it or some
//! declared query mentions it via `x@Node`; a local is live when some
//! handler expression reads it. An assignment to a dead slot can be removed
//! when its right-hand side is **droppable**: evaluation is total (no error
//! branch disappears) and introduces no `decide_sign` case split. Droppable
//! RHSes may still branch (`flip`, `uniformInt` with constant bounds) —
//! removing such a site is sound because the branches differ only in a
//! value nothing ever reads, so their continuations are isomorphic and the
//! probability masses re-merge in every query and in `Z`. That merge is the
//! exponential win: one removed flip halves the frontier.
//!
//! Serve-side queries are always indexes into the model's declared queries
//! (`check_query_index`), so the declared list is the complete liveness
//! source — there is no ad-hoc query path that could read a dead slot.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use bayonet_lang::BinOp;
use bayonet_num::Rat;

use crate::compile::{CExpr, CStmt, CompiledProgram, Model, QExpr};

use super::OptReport;

/// Runs the pass over every program, preserving `Arc` sharing. Returns
/// whether anything changed.
pub(super) fn run(model: &mut Model, report: &mut OptReport) -> bool {
    // Liveness contributed by declared queries, per shared program: a query
    // on any node using program P keeps that slot alive for every node
    // sharing P (they share one rewritten body).
    let mut query_live: HashMap<*const CompiledProgram, BTreeSet<usize>> = HashMap::new();
    for q in &model.queries {
        collect_query_slots(&q.expr, &mut |node, slot| {
            if let Some(prog) = model.programs.get(node) {
                query_live
                    .entry(Arc::as_ptr(prog))
                    .or_default()
                    .insert(slot);
            }
        });
    }
    let mut rewritten: Vec<(*const CompiledProgram, Arc<CompiledProgram>)> = Vec::new();
    let mut changed = false;
    for prog in &mut model.programs {
        let ptr = Arc::as_ptr(prog);
        if let Some((_, new)) = rewritten.iter().find(|(p, _)| *p == ptr) {
            *prog = new.clone();
            continue;
        }
        let empty = BTreeSet::new();
        let live_from_queries = query_live.get(&ptr).unwrap_or(&empty);
        let new = transform(prog, live_from_queries, report);
        let new_arc = match new {
            Some(p) => {
                changed = true;
                Arc::new(p)
            }
            None => prog.clone(),
        };
        rewritten.push((ptr, new_arc.clone()));
        *prog = new_arc;
    }
    changed
}

fn collect_query_slots(e: &QExpr, f: &mut impl FnMut(usize, usize)) {
    match e {
        QExpr::At { node, slot } => f(*node, *slot),
        QExpr::Binary(_, a, b) => {
            collect_query_slots(a, f);
            collect_query_slots(b, f);
        }
        QExpr::Not(x) | QExpr::Neg(x) => collect_query_slots(x, f),
        QExpr::Const(_) | QExpr::Param(_) => {}
    }
}

fn transform(
    p: &CompiledProgram,
    live_from_queries: &BTreeSet<usize>,
    report: &mut OptReport,
) -> Option<CompiledProgram> {
    // Reads are collected over the whole current body, including statements
    // this round removes; cascades (a dead slot read only by another dead
    // assignment) resolve over the pass-manager fixpoint rounds.
    let mut state_read = BTreeSet::new();
    let mut local_read = BTreeSet::new();
    for s in &p.body {
        collect_stmt_reads(s, &mut state_read, &mut local_read);
    }
    let live_state: BTreeSet<usize> = state_read.union(live_from_queries).copied().collect();

    let mut removed = 0u64;
    let mut sites = 0u64;
    let body = strip_block(&p.body, &live_state, &local_read, &mut removed, &mut sites);

    // Dead slots whose initializer draws randomness branch the state-init
    // product; replace with 0 (any constant works — nothing reads it).
    let mut inits_zeroed = 0u64;
    let mut init_sites = 0u64;
    let state_init: Vec<CExpr> = p
        .state_init
        .iter()
        .enumerate()
        .map(|(slot, e)| {
            if !live_state.contains(&slot) && droppable(e) && count_random_sites(e) > 0 {
                inits_zeroed += 1;
                init_sites += count_random_sites(e);
                CExpr::Const(Rat::zero())
            } else {
                e.clone()
            }
        })
        .collect();

    if removed == 0 && inits_zeroed == 0 {
        return None;
    }
    report.dead_stmts += removed;
    report.flips_eliminated += sites + init_sites;
    report.inits_zeroed += inits_zeroed;
    Some(CompiledProgram {
        name: p.name.clone(),
        state_names: p.state_names.clone(),
        state_init,
        local_names: p.local_names.clone(),
        body,
    })
}

fn strip_block(
    stmts: &[CStmt],
    live_state: &BTreeSet<usize>,
    local_read: &BTreeSet<usize>,
    removed: &mut u64,
    sites: &mut u64,
) -> Vec<CStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            // Replaced by `Skip` rather than deleted: the interpreter ticks
            // once per statement, and the local step limit makes tick counts
            // observable, so rewrites must be tick-neutral.
            CStmt::AssignState(slot, e) if !live_state.contains(slot) && droppable(e) => {
                *removed += 1;
                *sites += count_random_sites(e);
                out.push(CStmt::Skip);
            }
            CStmt::AssignLocal(slot, e) if !local_read.contains(slot) && droppable(e) => {
                *removed += 1;
                *sites += count_random_sites(e);
                out.push(CStmt::Skip);
            }
            CStmt::If(c, t, f) => out.push(CStmt::If(
                c.clone(),
                strip_block(t, live_state, local_read, removed, sites),
                strip_block(f, live_state, local_read, removed, sites),
            )),
            CStmt::While(c, b) => out.push(CStmt::While(
                c.clone(),
                strip_block(b, live_state, local_read, removed, sites),
            )),
            other => out.push(other.clone()),
        }
    }
    out
}

fn collect_stmt_reads(s: &CStmt, state: &mut BTreeSet<usize>, local: &mut BTreeSet<usize>) {
    match s {
        CStmt::Fwd(e)
        | CStmt::AssignState(_, e)
        | CStmt::AssignLocal(_, e)
        | CStmt::FieldAssign(_, e)
        | CStmt::Assert(e)
        | CStmt::Observe(e) => collect_expr_reads(e, state, local),
        CStmt::If(c, t, f) => {
            collect_expr_reads(c, state, local);
            for s in t.iter().chain(f) {
                collect_stmt_reads(s, state, local);
            }
        }
        CStmt::While(c, b) => {
            collect_expr_reads(c, state, local);
            for s in b {
                collect_stmt_reads(s, state, local);
            }
        }
        CStmt::New | CStmt::Drop | CStmt::Dup | CStmt::Skip => {}
    }
}

fn collect_expr_reads(e: &CExpr, state: &mut BTreeSet<usize>, local: &mut BTreeSet<usize>) {
    match e {
        CExpr::State(s) => {
            state.insert(*s);
        }
        CExpr::Local(l) => {
            local.insert(*l);
        }
        CExpr::Flip(a) | CExpr::Not(a) | CExpr::Neg(a) => collect_expr_reads(a, state, local),
        CExpr::UniformInt(a, b) | CExpr::Binary(_, a, b) => {
            collect_expr_reads(a, state, local);
            collect_expr_reads(b, state, local);
        }
        CExpr::Const(_) | CExpr::Param(_) | CExpr::Field(_) | CExpr::Port => {}
    }
}

/// Whether evaluating `e` is total (no reachable error) and free of
/// `decide_sign` case splits, so the statement around it can vanish without
/// changing any trace's error disposition or symbolic guard cells.
///
/// Deliberately conservative: division and multiplication can fail on
/// symbolic operands, comparisons and boolean operators case-split on
/// symbolic values, `flip`/`uniformInt` with non-constant arguments can
/// raise bound errors, and `Field`/`Port` reads require a queued packet.
fn droppable(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Param(_) | CExpr::State(_) | CExpr::Local(_) => true,
        CExpr::Flip(p) => match p.as_ref() {
            // flip(c) errors unless 0 <= c <= 1.
            CExpr::Const(c) => !c.is_negative() && *c <= Rat::one(),
            _ => false,
        },
        CExpr::UniformInt(lo, hi) => match (lo.as_ref(), hi.as_ref()) {
            // uniformInt(a, b) needs integer bounds with a <= b.
            (CExpr::Const(a), CExpr::Const(b)) => match (a.to_i64(), b.to_i64()) {
                (Some(ia), Some(ib)) => ia <= ib,
                _ => false,
            },
            _ => false,
        },
        CExpr::Binary(BinOp::Add | BinOp::Sub, a, b) => droppable(a) && droppable(b),
        CExpr::Neg(a) => droppable(a),
        _ => false,
    }
}

/// Number of branching random sites (`flip` with 0 < p < 1, `uniformInt`
/// with a non-degenerate constant range) in a droppable expression.
fn count_random_sites(e: &CExpr) -> u64 {
    match e {
        CExpr::Flip(p) => match p.as_ref() {
            CExpr::Const(c) if c.is_zero() || c.is_one() => 0,
            _ => 1,
        },
        CExpr::UniformInt(lo, hi) => match (lo.as_ref(), hi.as_ref()) {
            (CExpr::Const(a), CExpr::Const(b)) if a == b => 0,
            _ => 1,
        },
        CExpr::Binary(_, a, b) => count_random_sites(a) + count_random_sites(b),
        CExpr::Not(a) | CExpr::Neg(a) => count_random_sites(a),
        _ => 0,
    }
}
