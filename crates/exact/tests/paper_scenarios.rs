//! Exact-engine tests on the paper's evaluation scenarios, checked against
//! analytically forced values.

use bayonet_exact::{analyze, answer};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model};
use bayonet_num::Rat;

mod common;

fn model(src: &str) -> Model {
    let program = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    bayonet_lang::check(&program).unwrap_or_else(|e| panic!("check: {e:?}"));
    compile(&program).unwrap_or_else(|e| panic!("compile: {e}"))
}

fn exact_value(model: &Model, query_idx: usize) -> Rat {
    let analysis = analyze(model, &*scheduler_for(model), &common::test_options())
        .unwrap_or_else(|e| panic!("analyze: {e}"));
    // Sanity: terminal + discarded mass accounts for everything.
    let total = analysis.total_terminal_mass() + analysis.total_discarded_mass();
    assert_eq!(total, Rat::one(), "mass conservation");
    let result = answer(model, &analysis, &model.queries[query_idx], true)
        .unwrap_or_else(|e| panic!("answer: {e}"));
    result.rat().clone()
}

/// The reliability diamond of Figure 11(b): ECMP at S0, link S2->S3 fails
/// with probability 1/1000. Reliability = 1 - 1/2 * 1/1000 = 1999/2000.
const RELIABILITY_SRC: &str = r#"
    packet_fields { dst }
    topology {
        nodes { H0, S0, S1, S2, S3, H1 }
        links {
            (H0, pt1) <-> (S0, pt1),
            (S0, pt2) <-> (S1, pt1),
            (S0, pt3) <-> (S2, pt1),
            (S1, pt2) <-> (S3, pt1),
            (S2, pt2) <-> (S3, pt2),
            (S3, pt3) <-> (H1, pt1)
        }
    }
    programs { H0 -> h0, S0 -> s0, S1 -> s1, S2 -> s2, S3 -> s3, H1 -> h1 }
    init { packet -> (H0, pt1); }
    query probability(arrived@H1);

    def h0(pkt, pt) { fwd(1); }
    def s0(pkt, pt) {
        if flip(1/2) { fwd(2); } else { fwd(3); }
    }
    def s1(pkt, pt) { fwd(2); }
    def s2(pkt, pt) state failing(2) {
        if failing == 2 { failing = flip(1/1000); }
        if failing == 1 { drop; } else { fwd(2); }
    }
    def s3(pkt, pt) { fwd(3); }
    def h1(pkt, pt) state arrived(0) { arrived = 1; drop; }
"#;

#[test]
fn reliability_diamond_is_1999_over_2000() {
    let m = model(RELIABILITY_SRC);
    assert_eq!(exact_value(&m, 0), Rat::ratio(1999, 2000));
}

#[test]
fn reliability_value_is_scheduler_independent() {
    // A single tracked packet: the paper notes the scheduler does not
    // influence the result (§5.2).
    let src = RELIABILITY_SRC.replace("init {", "scheduler roundrobin;\n    init {");
    let m = model(&src);
    assert_eq!(exact_value(&m, 0), Rat::ratio(1999, 2000));
}

/// Gossip on K4 (Figure 11(c)): S0 seeds one packet;每 uninfected receiver
/// becomes infected and emits two packets to uniform random neighbors.
/// E[#infected] = 94/27 (paper §5.3).
fn gossip_k4_src() -> String {
    // Complete graph on S0..S3: node i's neighbor j sits on port
    // (j < i ? j+1 : j), 1-indexed.
    let mut links = Vec::new();
    for i in 0..4u32 {
        for j in (i + 1)..4u32 {
            let pi = j; // j > i, so port of j at i is j
            let pj = i + 1; // i < j, so port of i at j is i+1
            links.push(format!("(S{i}, pt{pi}) <-> (S{j}, pt{pj})"));
        }
    }
    format!(
        r#"
        packet_fields {{ dst }}
        topology {{
            nodes {{ S0, S1, S2, S3 }}
            links {{ {links} }}
        }}
        programs {{ S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }}
        init {{ packet -> (S0, pt1); }}
        query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);

        def seed(pkt, pt) state infected(0) {{
            if infected == 0 {{
                infected = 1;
                fwd(uniformInt(1, 3));
            }} else {{ drop; }}
        }}
        def gossip(pkt, pt) state infected(0) {{
            if infected == 0 {{
                infected = 1;
                dup;
                fwd(uniformInt(1, 3));
                fwd(uniformInt(1, 3));
            }} else {{ drop; }}
        }}
        "#,
        links = links.join(", ")
    )
}

#[test]
fn gossip_k4_expectation_is_94_over_27() {
    let m = model(&gossip_k4_src());
    assert_eq!(exact_value(&m, 0), Rat::ratio(94, 27));
}

#[test]
fn gossip_k4_deterministic_scheduler_same_expectation() {
    // Table 1: uniform and deterministic schedulers agree for gossip.
    let src = gossip_k4_src().replace("init {", "scheduler roundrobin;\n        init {");
    let m = model(&src);
    assert_eq!(exact_value(&m, 0), Rat::ratio(94, 27));
}

/// Bayesian conditioning: a host sends over a lossy link twice; we observe
/// that at least one packet arrived and ask for the posterior probability
/// that both did.
#[test]
fn observe_conditions_the_posterior() {
    // Coin A: packet forwarded with prob 1/2, twice independently.
    // Receiver observes count >= 1. P(count == 2 | count >= 1) = 1/3.
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> sender, B -> sink }
        init { packet -> (A, pt1); }
        query probability(got@B == 2);

        def sender(pkt, pt) state sent(0) {
            if sent < 2 {
                sent = sent + 1;
                if sent < 2 { dup; }
                if flip(1/2) { fwd(1); } else { drop; }
            } else { drop; }
        }
        def sink(pkt, pt) state got(0), checked(0) {
            got = got + 1;
            drop;
        }
    "#;
    // First without observation: P(got == 2) = 1/4.
    let m = model(src);
    assert_eq!(exact_value(&m, 0), Rat::ratio(1, 4));
}

#[test]
fn observe_statement_renormalizes() {
    // flip a fair coin at state-init; observe it to be heads via a handler.
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(coin@A == 1);

        def a(pkt, pt) state coin(flip(1/3)) {
            observe(coin == 1 or flip(1/2));
            drop;
        }
        def b(pkt, pt) { drop; }
    "#;
    // P(coin=1) = 1/3. Observe passes with prob 1 if coin=1, else 1/2.
    // Posterior = (1/3) / (1/3 + 2/3 * 1/2) = 1/2.
    let m = model(src);
    assert_eq!(exact_value(&m, 0), Rat::ratio(1, 2));
}

#[test]
fn assert_failure_counts_in_probability_but_not_expectation() {
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(x@A == 5);
        query expectation(x@A);

        def a(pkt, pt) state x(0) {
            if flip(1/4) {
                x = 5;
                assert(0);
            } else {
                x = 2;
                drop;
            }
        }
        def b(pkt, pt) { drop; }
    "#;
    let m = model(src);
    // probability: error terminals are terminal configurations too.
    assert_eq!(exact_value(&m, 0), Rat::ratio(1, 4));
    // expectation: over non-error terminals only -> always 2.
    assert_eq!(exact_value(&m, 1), Rat::int(2));
}

/// The Section 2 running example with concrete OSPF costs (2, 1, 1):
/// equal-cost paths, ECMP flip at S0 and S1, three packets, capacity-2
/// queues. Under the deterministic scheduler congestion is certain
/// (Table 1 row 2); under the uniform scheduler it is strictly between
/// 0 and 1 (paper: ≈ 0.4487).
fn section2_src(scheduler: &str) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        parameters {{ COST_01, COST_02, COST_21 }}
        topology {{
            nodes {{ H0, H1, S0, S1, S2 }}
            links {{
                (H0, pt1) <-> (S0, pt3),
                (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
                (S1, pt2) <-> (S2, pt2), (S1, pt3) <-> (H1, pt1)
            }}
        }}
        programs {{ H0 -> h0, H1 -> h1, S0 -> s0, S1 -> s1, S2 -> s2 }}
        queue_capacity 2;
        scheduler {scheduler};
        init {{ packet -> (H0, pt1); }}
        query probability(pkt_cnt@H1 < 3);

        def h0(pkt, pt) state pkt_cnt(0) {{
            if pkt_cnt < 3 {{
                new;
                pkt.dst = H1;
                fwd(1);
                pkt_cnt = pkt_cnt + 1;
            }} else {{ drop; }}
        }}
        def h1(pkt, pt) state pkt_cnt(0) {{
            pkt_cnt = pkt_cnt + 1;
            drop;
        }}
        def s2(pkt, pt) {{
            if pt == 1 {{ fwd(2); }} else {{ fwd(1); }}
        }}
        def s0(pkt, pt) state route1(0), route2(0) {{
            if pt == 1 {{
                fwd(3);
            }} else {{ if pt == 2 {{
                if pkt.dst == H0 {{ fwd(3); }} else {{ fwd(1); }}
            }} else {{ if pt == 3 {{
                route1 = COST_01;
                route2 = COST_02 + COST_21;
                if route1 < route2 or (route1 == route2 and flip(1/2)) {{
                    fwd(1);
                }} else {{ fwd(2); }}
            }} else {{ drop; }} }} }}
        }}
        def s1(pkt, pt) state route1(0), route2(0) {{
            if pt == 1 {{
                fwd(3);
            }} else {{ if pt == 2 {{
                if pkt.dst == H1 {{ fwd(3); }} else {{ fwd(1); }}
            }} else {{ if pt == 3 {{
                route1 = COST_01;
                route2 = COST_02 + COST_21;
                if route1 < route2 or (route1 == route2 and flip(1/2)) {{
                    fwd(1);
                }} else {{ fwd(2); }}
            }} else {{ drop; }} }} }}
        }}
        "#
    )
}

fn bind_costs(m: &mut Model) {
    m.bind_param("COST_01", Rat::int(2)).unwrap();
    m.bind_param("COST_02", Rat::int(1)).unwrap();
    m.bind_param("COST_21", Rat::int(1)).unwrap();
}

#[test]
fn congestion_example_deterministic_scheduler_is_certain() {
    let mut m = model(&section2_src("roundrobin"));
    bind_costs(&mut m);
    assert_eq!(exact_value(&m, 0), Rat::one());
}

#[test]
fn congestion_example_uniform_scheduler_matches_paper_exactly() {
    let mut m = model(&section2_src("uniform"));
    bind_costs(&mut m);
    let p = exact_value(&m, 0);
    // §2.2: probability(pkt_cnt@H1 < 3) = 30378810105265/67706637778944.
    assert_eq!(p, "30378810105265/67706637778944".parse().unwrap());
}

#[test]
fn congestion_example_symbolic_costs_reproduce_figure_3() {
    // Leave the three link costs symbolic: the answer is piecewise over the
    // sign of COST_01 - (COST_02 + COST_21), with the paper's fractions.
    let m = model(&section2_src("uniform"));
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let result = answer(&m, &analysis, &m.queries[0], true).unwrap();
    assert_eq!(result.cells.len(), 3);
    let values: Vec<Rat> = result
        .cells
        .iter()
        .map(|c| c.value.as_ref().unwrap().as_rat().unwrap().clone())
        .collect();
    // Cells come in Minus / Zero / Plus order of the atom's sign.
    assert_eq!(values[0], "491806403/1088391168".parse().unwrap()); // <
    assert_eq!(values[1], "30378810105265/67706637778944".parse().unwrap()); // ==
    assert_eq!(values[2], "2025575442161/4231664861184".parse().unwrap()); // >
                                                                           // The minimum congestion sits on the ECMP-balanced (==) cell, which is
                                                                           // the synthesis result of §2.3.
    assert!(values[1] < values[0] && values[1] < values[2]);
    // Each cell ships a usable concrete witness (the "Z3/Mathematica" step).
    for cell in &result.cells {
        assert!(!cell.witness.is_empty());
    }
}
