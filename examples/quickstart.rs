//! Quickstart: write a tiny probabilistic network, run exact and
//! approximate inference, and peek at the generated PSI program.
//!
//! Run with: `cargo run --example quickstart`

use bayonet::{ApproxOptions, Network};

fn main() -> Result<(), bayonet::Error> {
    // A sender forwards a packet over a lossy link with probability 3/4;
    // the receiver records whether anything arrived.
    let network = Network::from_source(
        r#"
        packet_fields { dst }
        topology {
            nodes { H0, H1 }
            links { (H0, pt1) <-> (H1, pt1) }
        }
        programs { H0 -> send, H1 -> recv }
        init { packet -> (H0, pt1); }
        query probability(got@H1 == 1);
        query expectation(got@H1);

        def send(pkt, pt) {
            if flip(3/4) { fwd(1); } else { drop; }
        }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
        "#,
    )?;

    // Exact inference (the paper's PSI backend): exact rationals.
    let report = network.exact()?;
    for result in &report.results {
        print!("{result}");
    }
    println!(
        "explored {} configurations in {} steps ({} merge hits)",
        report.stats.expansions, report.stats.steps, report.stats.merge_hits
    );

    // Approximate inference (the paper's WebPPL/SMC backend).
    let est = network.smc(0, &ApproxOptions::default())?;
    println!("SMC estimate: {est}");

    // The PSI backend: check the translated program agrees.
    let via_psi = network.infer_via_psi(0)?;
    println!("via mini-PSI backend: {via_psi}");

    // And the generated PSI source a user would hand to the external solver:
    println!("\n--- generated PSI (excerpt) ---");
    for line in network.to_psi().lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
