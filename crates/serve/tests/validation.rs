//! Table-driven request-validation tests: malformed `threads` and
//! `timeout_ms` values, unknown fields, and malformed `/v1/batch` bodies
//! must all produce structured `400` responses — never a panic, never a
//! half-written chunked body, and never a silent fall-back to a default.

use std::net::SocketAddr;

use bayonet_serve::{parse_json, start, Json, ServerConfig, MAX_BATCH_ITEMS};

mod common;
use common::TINY;

fn http(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, _, payload) = common::http(addr, "POST", "/v1/run", body);
    (status, payload)
}

/// Raw request body with `source` set to the tiny program and one extra
/// field spliced in verbatim (so the table can express wrong types,
/// fractions, and negatives that `Json` builders would normalize away).
fn body_with(field: &str) -> String {
    let source = Json::Str(TINY.into()).to_string();
    format!("{{\"source\":{source},{field}}}")
}

#[test]
fn malformed_knobs_are_structured_400s() {
    #[rustfmt::skip]
    let cases: &[(&str, &str)] = &[
        // (raw field, expected message fragment)
        ("\"threads\":0",            "`threads` must be between 1 and 64, got 0"),
        ("\"threads\":65",           "`threads` must be between 1 and 64, got 65"),
        ("\"threads\":1000000000",   "`threads` must be between 1 and 64"),
        ("\"threads\":-1",           "`threads` must be a nonnegative integer"),
        ("\"threads\":1.5",          "`threads` must be a nonnegative integer"),
        ("\"threads\":\"four\"",     "`threads` must be a nonnegative integer"),
        ("\"threads\":true",         "`threads` must be a nonnegative integer"),
        ("\"threads\":[2]",          "`threads` must be a nonnegative integer"),
        ("\"timeout_ms\":0",         "`timeout_ms` must be between 1 and 600000, got 0"),
        ("\"timeout_ms\":600001",    "`timeout_ms` must be between 1 and 600000"),
        ("\"timeout_ms\":-5",        "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":0.25",      "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":\"1s\"",    "`timeout_ms` must be a nonnegative integer"),
        ("\"timeout_ms\":{}",        "`timeout_ms` must be a nonnegative integer"),
        ("\"thread\":2",             "unknown request field `thread`"),
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    for (field, expected) in cases {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 400, "case {field}: expected 400, got body {body}");
        let doc =
            parse_json(&body).unwrap_or_else(|e| panic!("case {field}: bad json {e}: {body}"));
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(false),
            "case {field}: {body}"
        );
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {field}: no error object: {body}"));
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {field}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(
            message.contains(expected),
            "case {field}: message {message:?} does not mention {expected:?}"
        );
    }

    handle.shutdown();
}

/// Unknown top-level fields (typos like `"cache": false`) must be loud
/// structured 400s, never silently ignored: the error names the offending
/// key both in the message and machine-readably in `error.field`.
#[test]
fn unknown_fields_are_named_structured_400s() {
    #[rustfmt::skip]
    let cases: &[(&str, &str)] = &[
        // (raw extra field, expected `error.field`)
        ("\"cache\":false",        "cache"),
        ("\"Source\":\"x\"",       "Source"),
        ("\"time_out_ms\":5",      "time_out_ms"),
        ("\"particle\":100",       "particle"),
        ("\"binding\":{}",         "binding"),
        ("\"extra\":null",         "extra"),
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    for (field, name) in cases {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 400, "case {field}: expected 400, got body {body}");
        let doc = parse_json(&body).expect("json body");
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {field}: no error object: {body}"));
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {field}: {body}"
        );
        assert_eq!(
            error.get("field").and_then(Json::as_str),
            Some(*name),
            "case {field}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(
            message.contains(&format!("unknown request field `{name}`")),
            "case {field}: message {message:?}"
        );
        // The message also lists the accepted fields, so a typo is
        // self-correcting from the error alone.
        assert!(
            message.contains("known fields: source, engine"),
            "{message}"
        );
    }

    // Known fields with the error-producing values spliced *as values* are
    // not unknown-field errors; sanity-check one to pin the distinction.
    let (status, body) = http(addr, &body_with("\"engine\":\"warp\""));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("unknown engine"), "{body}");

    handle.shutdown();
}

/// Every way `engine` can be wrong — unknown names, case mismatches,
/// empty strings, and non-string JSON values — is a structured 400 with
/// `error.field == "engine"` and a message that lists the known engines,
/// so the caller can fix the request from the error alone. The same table
/// is replayed as `/v1/batch` items, where the rejection must arrive as a
/// per-item 400 frame with the identical error shape.
#[test]
fn engine_validation_is_table_driven_across_run_and_batch() {
    #[rustfmt::skip]
    let cases: &[&str] = &[
        // Unknown engine names.
        "\"engine\":\"warp\"",
        "\"engine\":\"exhaustive\"",
        // Known names are matched case-sensitively and unpadded.
        "\"engine\":\"BDD\"",
        "\"engine\":\"Enum\"",
        "\"engine\":\" bdd\"",
        "\"engine\":\"\"",
        // Wrong JSON types are the same error, not a type error.
        "\"engine\":5",
        "\"engine\":null",
        "\"engine\":true",
        "\"engine\":[\"bdd\"]",
        "\"engine\":{\"name\":\"bdd\"}",
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let check_error = |case: &str, error: &Json, body: &str| {
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {case}: {body}"
        );
        assert_eq!(
            error.get("field").and_then(Json::as_str),
            Some("engine"),
            "case {case}: {body}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(message.contains("unknown engine"), "case {case}: {message}");
        assert!(
            message.contains("known engines: exact, enum, bdd, smc, rejection, auto"),
            "case {case}: {message}"
        );
    };

    for case in cases {
        // `/v1/run`: a buffered structured 400.
        let (status, body) = http(addr, &body_with(case));
        assert_eq!(status, 400, "case {case}: {body}");
        let doc = parse_json(&body).unwrap_or_else(|e| panic!("case {case}: bad json {e}: {body}"));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {case}: no error object: {body}"));
        check_error(case, error, &body);

        // `/v1/batch`: the same table entry as an item-level field becomes
        // a per-item 400 frame; the healthy sibling item still completes.
        let source = Json::Str(TINY.into()).to_string();
        let batch = format!(r#"{{"source":{source},"items":[{{{case}}},{{}}]}}"#);
        let (status, payload) = common::post_batch(addr, &batch);
        assert_eq!(status, 200, "case {case}: {payload}");
        let frames = common::parse_frames(&payload);
        assert_eq!(frames.len(), 2, "case {case}: {payload}");
        let bad = frames.iter().find(|f| f.index == 0).unwrap();
        assert_eq!(bad.status, 400, "case {case}: {}", bad.body);
        let doc = parse_json(&bad.body).expect("frame body json");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {case}: frame has no error: {}", bad.body));
        check_error(case, error, &bad.body);
        let good = frames.iter().find(|f| f.index == 1).unwrap();
        assert_eq!(good.status, 200, "case {case}: {}", good.body);
    }

    // The accepted spellings, for contrast: each runs and echoes its
    // canonical engine name back (`enum` is an alias for `exact`).
    for (spelling, echoed) in [
        ("\"engine\":\"exact\"", "exact"),
        ("\"engine\":\"enum\"", "exact"),
        ("\"engine\":\"bdd\"", "bdd"),
    ] {
        let (status, body) = http(addr, &body_with(spelling));
        assert_eq!(status, 200, "case {spelling}: {body}");
        let doc = parse_json(&body).expect("json body");
        assert_eq!(
            doc.get("engine").and_then(Json::as_str),
            Some(echoed),
            "case {spelling}: {body}"
        );
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("1/3"), "case {spelling}: {text}");
    }

    handle.shutdown();
}

#[test]
fn edge_values_are_accepted_not_rejected() {
    let handle = start(ServerConfig {
        threads: 2,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Boundary values inside the contract must work; `threads` beyond the
    // pool is clamped (not rejected), and `null` means "not provided".
    for field in [
        "\"threads\":1",
        "\"threads\":64",
        "\"threads\":null",
        "\"timeout_ms\":600000",
        "\"timeout_ms\":null",
    ] {
        let (status, body) = http(addr, &body_with(field));
        assert_eq!(status, 200, "case {field}: {body}");
        let doc = parse_json(&body).expect("json body");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "case {field}: {body}"
        );
        let text = doc.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("1/3"), "case {field}: {text}");
    }

    handle.shutdown();
}

/// Malformed `/v1/batch` bodies are rejected *before* any chunk is
/// written: a buffered 400 naming the offending field in `error.field`.
#[test]
fn malformed_batches_are_structured_400s() {
    let source = Json::Str(TINY.into()).to_string();
    let over_cap = format!(
        r#"{{"source":{source},"items":[{}]}}"#,
        vec!["{}"; MAX_BATCH_ITEMS + 1].join(",")
    );
    #[rustfmt::skip]
    let cases: &[(String, &str, &str)] = &[
        // (raw body, expected `error.field`, expected message fragment)
        (r#"{"items":[]}"#.into(), "items",
         "`items` must contain between 1 and 256 items, got 0"),
        (over_cap, "items",
         "`items` must contain between 1 and 256 items, got 257"),
        (format!(r#"{{"source":{source}}}"#), "items",
         "missing required array field `items`"),
        (format!(r#"{{"source":{source},"items":{{}}}}"#), "items",
         "`items` must be an array"),
        (format!(r#"{{"source":{source},"items":[{{}},4]}}"#), "items[1]",
         "batch item 1 must be a JSON object"),
        (format!(r#"{{"source":{source},"items":[{{"source":"x"}}]}}"#), "items[0].source",
         "batch item 0 sets `source` while the batch has a shared top-level `source`"),
        (format!(r#"{{"source":{source},"items":[{{}}],"engine":"smc"}}"#), "engine",
         "unknown batch field `engine`"),
        (format!(r#"{{"source":{source},"items":[{{}}],"timeout_ms":0}}"#), "timeout_ms",
         "`timeout_ms` must be between 1 and 600000, got 0"),
        (r#"{"source":7,"items":[{}]}"#.into(), "source",
         "`source` must be a string"),
    ];

    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    for (body, field, expected) in cases {
        let (status, payload) = common::post_batch(addr, body);
        assert_eq!(status, 400, "case {field}: got {status}: {payload}");
        let doc = parse_json(&payload)
            .unwrap_or_else(|e| panic!("case {field}: bad json {e}: {payload}"));
        let error = doc
            .get("error")
            .unwrap_or_else(|| panic!("case {field}: no error object: {payload}"));
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("bad_request"),
            "case {field}: {payload}"
        );
        assert_eq!(
            error.get("field").and_then(Json::as_str),
            Some(*field),
            "case {field}: {payload}"
        );
        let message = error.get("message").and_then(Json::as_str).unwrap_or("");
        assert!(
            message.contains(expected),
            "case {field}: message {message:?} does not mention {expected:?}"
        );
    }

    // None of the rejected batches may have recorded batch work.
    let text = common::metrics(addr);
    assert_eq!(common::metric(&text, "bayonet_batch_requests_total"), 0);
    assert_eq!(common::metric(&text, "bayonet_batch_items_total"), 0);

    handle.shutdown();
}

/// Per-item problems — unknown item fields, bad item types, a missing
/// source — become per-item error frames with the exact `/v1/run` error
/// shape, and never abort sibling items.
#[test]
fn invalid_items_fail_individually_without_aborting_siblings() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    let source = Json::Str(TINY.into()).to_string();
    let body = format!(
        r#"{{"source":{source},"items":[{{}},{{"fuel":1}},{{"threads":0}},{{"engine":"warp"}}]}}"#
    );
    let (status, payload) = common::post_batch(addr, &body);
    assert_eq!(status, 200, "{payload}");
    let frames = common::parse_frames(&payload);
    assert_eq!(frames.len(), 4, "{payload}");

    let by_index = |i: u64| frames.iter().find(|f| f.index == i).unwrap();
    assert_eq!(by_index(0).status, 200, "{}", by_index(0).body);
    assert!(by_index(0).body.contains("1/3"), "{}", by_index(0).body);

    for (i, fragment) in [
        (1, "unknown request field `fuel`"),
        (2, "`threads` must be between 1 and 64, got 0"),
        (3, "unknown engine"),
    ] {
        let frame = by_index(i);
        assert_eq!(frame.status, 400, "{}", frame.body);
        let doc = parse_json(&frame.body).expect("frame body json");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("");
        assert!(
            message.contains(fragment),
            "item {i}: message {message:?} does not mention {fragment:?}"
        );
    }

    // An item with no source at all (and no shared source) gets the same
    // missing-field error a bare `/v1/run` would.
    let (status, payload) = common::post_batch(addr, r#"{"items":[{"seed":1}]}"#);
    assert_eq!(status, 200, "{payload}");
    let frames = common::parse_frames(&payload);
    assert_eq!(frames[0].status, 400);
    assert!(
        frames[0]
            .body
            .contains("missing required string field `source`"),
        "{}",
        frames[0].body
    );

    let text = common::metrics(addr);
    assert_eq!(common::metric(&text, "bayonet_batch_requests_total"), 2);
    assert_eq!(common::metric(&text, "bayonet_batch_items_total"), 5);
    assert_eq!(common::metric(&text, "bayonet_batch_item_errors_total"), 4);

    handle.shutdown();
}
