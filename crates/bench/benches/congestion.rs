//! Benchmarks for Table 1's congestion rows: exact and SMC inference on the
//! §2 example (5 nodes), the 6-node diamond, and the 30-node deterministic
//! chain.

use criterion::{criterion_group, criterion_main, Criterion};

use bayonet::{scenarios, ApproxOptions, Sched};

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/congestion");
    group.sample_size(10);

    let uni5 = scenarios::congestion_example(Sched::Uniform).unwrap();
    group.bench_function("exact_uniform_5", |b| {
        b.iter(|| uni5.exact().unwrap().results[0].rat().clone())
    });

    let det5 = scenarios::congestion_example(Sched::Deterministic).unwrap();
    group.bench_function("exact_det_5", |b| {
        b.iter(|| det5.exact().unwrap().results[0].rat().clone())
    });

    let uni6 = scenarios::congestion_chain(1, Sched::Uniform).unwrap();
    group.bench_function("exact_uniform_6", |b| {
        b.iter(|| uni6.exact().unwrap().results[0].rat().clone())
    });

    let det30 = scenarios::congestion_chain(7, Sched::Deterministic).unwrap();
    group.bench_function("exact_det_30", |b| {
        b.iter(|| det30.exact().unwrap().results[0].rat().clone())
    });

    let opts = ApproxOptions {
        particles: 1000,
        seed: 1,
        ..Default::default()
    };
    group.bench_function("smc1000_uniform_5", |b| {
        b.iter(|| uni5.smc(0, &opts).unwrap().value)
    });

    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
