//! Builders for every network scenario of the paper's evaluation (§5).
//!
//! Each function generates Bayonet source text for a benchmark — the §2
//! running example, the Figure 11 topologies, and their scaled variants —
//! and returns it compiled into a [`Network`]. The `*_source` variants
//! expose the raw text (useful for code-size comparisons and docs).

use bayonet_num::Rat;

use crate::error::Error;
use crate::network::Network;

/// Scheduler selection for scenario builders (Table 1's "uni."/"det.").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sched {
    /// Uniform over enabled actions (paper Figure 6).
    Uniform,
    /// Deterministic fixed-priority scan (Table 1 "det.").
    Deterministic,
}

impl Default for Sched {
    /// The paper's primary scheduler.
    fn default() -> Self {
        Sched::Uniform
    }
}

impl Sched {
    fn keyword(self) -> &'static str {
        match self {
            Sched::Uniform => "uniform",
            Sched::Deterministic => "roundrobin",
        }
    }
}

/// Source of the §2 running example (5 nodes, OSPF/ECMP with symbolic link
/// costs COST_01, COST_02, COST_21; H0 sends three packets; capacity-2
/// queues).
pub fn congestion_example_source(sched: Sched) -> String {
    format!(
        r#"// Paper §2 running example: OSPF costs + ECMP, 3 packets, capacity 2.
packet_fields {{ dst }}
parameters {{ COST_01, COST_02, COST_21 }}
topology {{
    nodes {{ H0, H1, S0, S1, S2 }}
    links {{
        (H0, pt1) <-> (S0, pt3),
        (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
        (S1, pt2) <-> (S2, pt2), (S1, pt3) <-> (H1, pt1)
    }}
}}
programs {{ H0 -> h0, H1 -> h1, S0 -> s0, S1 -> s1, S2 -> s2 }}
queue_capacity 2;
scheduler {sched};
init {{ packet -> (H0, pt1); }}
query probability(pkt_cnt@H1 < 3);
query expectation(pkt_cnt@H1);

def h0(pkt, pt) state pkt_cnt(0) {{
    if pkt_cnt < 3 {{
        new;
        pkt.dst = H1;
        fwd(1);
        pkt_cnt = pkt_cnt + 1;
    }} else {{ drop; }}
}}
def h1(pkt, pt) state pkt_cnt(0) {{
    pkt_cnt = pkt_cnt + 1;
    drop;
}}
def s2(pkt, pt) {{
    if pt == 1 {{ fwd(2); }} else {{ fwd(1); }}
}}
def s0(pkt, pt) state route1(0), route2(0) {{
    if pt == 1 {{
        fwd(3);
    }} else {{ if pt == 2 {{
        if pkt.dst == H0 {{ fwd(3); }} else {{ fwd(1); }}
    }} else {{
        route1 = COST_01;
        route2 = COST_02 + COST_21;
        if route1 < route2 or (route1 == route2 and flip(1/2)) {{
            fwd(1);
        }} else {{ fwd(2); }}
    }} }}
}}
def s1(pkt, pt) state route1(0), route2(0) {{
    if pt == 1 {{
        fwd(3);
    }} else {{ if pt == 2 {{
        if pkt.dst == H1 {{ fwd(3); }} else {{ fwd(1); }}
    }} else {{
        route1 = COST_01;
        route2 = COST_02 + COST_21;
        if route1 < route2 or (route1 == route2 and flip(1/2)) {{
            fwd(1);
        }} else {{ fwd(2); }}
    }} }}
}}
"#,
        sched = sched.keyword()
    )
}

/// The §2 example with concrete equal-cost links (COST_01 = 2,
/// COST_02 = COST_21 = 1): Table 1 rows 1–2.
///
/// # Errors
///
/// Propagates front-end errors (none expected for generated sources).
pub fn congestion_example(sched: Sched) -> Result<Network, Error> {
    let mut n = Network::from_source(&congestion_example_source(sched))?;
    n.bind("COST_01", Rat::int(2))?;
    n.bind("COST_02", Rat::int(1))?;
    n.bind("COST_21", Rat::int(1))?;
    Ok(n)
}

/// The §2 example with the link costs left **symbolic** — the parameter
/// synthesis scenario of §2.3 / Figure 3.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn congestion_example_symbolic(sched: Sched) -> Result<Network, Error> {
    Network::from_source(&congestion_example_source(sched))
}

/// Source for congestion on a chain of ECMP diamonds with `num_diamonds`
/// diamonds (4 switches each) between two hosts: `2 + 4*D` nodes total.
/// `D = 1` is the Figure 11(a) 6-node topology; `D = 7` is the 30-node
/// benchmark of Table 1.
pub fn congestion_chain_source(num_diamonds: usize, sched: Sched) -> String {
    assert!(num_diamonds >= 1, "need at least one diamond");
    let mut nodes = vec!["H0".to_string()];
    for d in 0..num_diamonds {
        for role in ["A", "B", "C", "D"] {
            nodes.push(format!("{role}{d}"));
        }
    }
    nodes.push("H1".into());

    let mut links = vec!["(H0, pt1) <-> (A0, pt1)".to_string()];
    for d in 0..num_diamonds {
        links.push(format!("(A{d}, pt2) <-> (B{d}, pt1)"));
        links.push(format!("(A{d}, pt3) <-> (C{d}, pt1)"));
        links.push(format!("(B{d}, pt2) <-> (D{d}, pt1)"));
        links.push(format!("(C{d}, pt2) <-> (D{d}, pt2)"));
        if d + 1 < num_diamonds {
            links.push(format!("(D{d}, pt3) <-> (A{}, pt1)", d + 1));
        }
    }
    links.push(format!("(D{}, pt3) <-> (H1, pt1)", num_diamonds - 1));

    let mut programs = vec!["H0 -> h0".to_string(), "H1 -> h1".into()];
    for d in 0..num_diamonds {
        programs.push(format!("A{d} -> entry"));
        programs.push(format!("B{d} -> relay"));
        programs.push(format!("C{d} -> relay"));
        programs.push(format!("D{d} -> exit"));
    }

    format!(
        r#"// Congestion on {n} nodes: a chain of {num_diamonds} ECMP diamond(s).
packet_fields {{ dst }}
topology {{
    nodes {{ {nodes} }}
    links {{ {links} }}
}}
programs {{ {programs} }}
queue_capacity 2;
scheduler {sched};
init {{ packet -> (H0, pt1); }}
query probability(pkt_cnt@H1 < 3);
query expectation(pkt_cnt@H1);

def h0(pkt, pt) state pkt_cnt(0) {{
    if pkt_cnt < 3 {{
        new;
        fwd(1);
        pkt_cnt = pkt_cnt + 1;
    }} else {{ drop; }}
}}
def h1(pkt, pt) state pkt_cnt(0) {{
    pkt_cnt = pkt_cnt + 1;
    drop;
}}
def entry(pkt, pt) {{
    if flip(1/2) {{ fwd(2); }} else {{ fwd(3); }}
}}
def relay(pkt, pt) {{ fwd(2); }}
def exit(pkt, pt) {{ fwd(3); }}
"#,
        n = nodes.len(),
        nodes = nodes.join(", "),
        links = links.join(",\n        "),
        programs = programs.join(", "),
        sched = sched.keyword()
    )
}

/// Congestion on a chain of diamonds (Table 1 rows 3–5). 6 nodes for
/// `num_diamonds = 1` (Figure 11(a)), 30 nodes for `num_diamonds = 7`.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn congestion_chain(num_diamonds: usize, sched: Sched) -> Result<Network, Error> {
    Network::from_source(&congestion_chain_source(num_diamonds, sched))
}

/// Source for reliability on a chain of diamonds whose lower path contains
/// a link failing with probability `p_fail` (Figure 11(b) for one diamond;
/// 7 diamonds = the 30-node benchmark). One tracked packet.
pub fn reliability_chain_source(num_diamonds: usize, p_fail: &Rat, sched: Sched) -> String {
    assert!(num_diamonds >= 1, "need at least one diamond");
    let mut nodes = vec!["H0".to_string()];
    for d in 0..num_diamonds {
        for role in ["A", "B", "C", "D"] {
            nodes.push(format!("{role}{d}"));
        }
    }
    nodes.push("H1".into());

    let mut links = vec!["(H0, pt1) <-> (A0, pt1)".to_string()];
    for d in 0..num_diamonds {
        links.push(format!("(A{d}, pt2) <-> (B{d}, pt1)"));
        links.push(format!("(A{d}, pt3) <-> (C{d}, pt1)"));
        links.push(format!("(B{d}, pt2) <-> (D{d}, pt1)"));
        links.push(format!("(C{d}, pt2) <-> (D{d}, pt2)"));
        if d + 1 < num_diamonds {
            links.push(format!("(D{d}, pt3) <-> (A{}, pt1)", d + 1));
        }
    }
    links.push(format!("(D{}, pt3) <-> (H1, pt1)", num_diamonds - 1));

    let mut programs = vec!["H0 -> h0".to_string(), "H1 -> h1".into()];
    for d in 0..num_diamonds {
        programs.push(format!("A{d} -> entry"));
        programs.push(format!("B{d} -> relay"));
        programs.push(format!("C{d} -> lossy"));
        programs.push(format!("D{d} -> exit"));
    }

    format!(
        r#"// Reliability on {n} nodes: ECMP diamonds; the lower link of each
// diamond fails with probability {p_fail} (paper Figure 12).
packet_fields {{ dst }}
topology {{
    nodes {{ {nodes} }}
    links {{ {links} }}
}}
programs {{ {programs} }}
queue_capacity 2;
scheduler {sched};
init {{ packet -> (H0, pt1); }}
query probability(arrived@H1);

def h0(pkt, pt) {{ fwd(1); }}
def h1(pkt, pt) state arrived(0) {{ arrived = 1; drop; }}
def entry(pkt, pt) {{
    if flip(1/2) {{ fwd(2); }} else {{ fwd(3); }}
}}
def relay(pkt, pt) {{ fwd(2); }}
def lossy(pkt, pt) state failing(2) {{
    if failing == 2 {{ failing = flip({p_fail}); }}
    if failing == 1 {{ drop; }} else {{ fwd(2); }}
}}
def exit(pkt, pt) {{ fwd(3); }}
"#,
        n = nodes.len(),
        nodes = nodes.join(", "),
        links = links.join(",\n        "),
        programs = programs.join(", "),
        sched = sched.keyword(),
        p_fail = p_fail,
    )
}

/// Reliability of packet delivery (Table 1 rows 6–9): `num_diamonds = 1`
/// is the 6-node Figure 11(b), `num_diamonds = 7` the 30-node chain.
/// Exact reliability is `(1 - p_fail/2)^D`.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn reliability_chain(
    num_diamonds: usize,
    p_fail: &Rat,
    sched: Sched,
) -> Result<Network, Error> {
    Network::from_source(&reliability_chain_source(num_diamonds, p_fail, sched))
}

/// Source for the gossip protocol on the complete graph `K_n`
/// (Figure 11(c)): node `S0` seeds one packet; every uninfected receiver
/// becomes infected and emits two packets to uniformly random neighbors;
/// infected receivers drop.
pub fn gossip_source(n: usize, sched: Sched) -> String {
    assert!(n >= 2, "gossip needs at least two nodes");
    let nodes: Vec<String> = (0..n).map(|i| format!("S{i}")).collect();
    let mut links = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            // Node i's neighbor j sits on port (j < i ? j+1 : j), 1-based.
            links.push(format!("(S{i}, pt{}) <-> (S{j}, pt{})", j, i + 1));
        }
    }
    let mut programs = vec!["S0 -> seed".to_string()];
    for node in nodes.iter().skip(1) {
        programs.push(format!("{node} -> gossip"));
    }
    let sum = (0..n)
        .map(|i| format!("infected@S{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let deg = n - 1;
    format!(
        r#"// Gossip on the complete graph K{n} (paper §5.3).
packet_fields {{ dst }}
topology {{
    nodes {{ {nodes} }}
    links {{ {links} }}
}}
programs {{ {programs} }}
queue_capacity 2;
scheduler {sched};
init {{ packet -> (S0, pt1); }}
query expectation({sum});

def seed(pkt, pt) state infected(0) {{
    if infected == 0 {{
        infected = 1;
        fwd(uniformInt(1, {deg}));
    }} else {{ drop; }}
}}
def gossip(pkt, pt) state infected(0) {{
    if infected == 0 {{
        infected = 1;
        dup;
        fwd(uniformInt(1, {deg}));
        fwd(uniformInt(1, {deg}));
    }} else {{ drop; }}
}}
"#,
        nodes = nodes.join(", "),
        links = links.join(",\n        "),
        programs = programs.join(", "),
        sched = sched.keyword(),
    )
}

/// Gossip message propagation on `K_n` (Table 1 rows 10–13). For `n = 4`
/// the exact expectation is 94/27 ≈ 3.4815.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn gossip(n: usize, sched: Sched) -> Result<Network, Error> {
    Network::from_source(&gossip_source(n, sched))
}

/// The observation sequence of the first §5.5 load-balancing experiment
/// (mirrors from S1, S0, S0, S1, H1 — evidence for a *bad* hash).
pub const LB_OBS_BAD: &[&str] = &["S1", "S0", "S0", "S1", "H1"];

/// The observation sequence of the second §5.5 load-balancing experiment
/// (mirrors from H1, S0, S0, H1 — evidence for a *good* hash).
pub const LB_OBS_GOOD: &[&str] = &["H1", "S0", "S0", "H1"];

/// Source for the §5.5 load-balancing scenario (Figure 11(d)): S0 splits
/// three packets between a direct link to H1 and a path via S1; S0, S1, and
/// H1 mirror packets to a controller C with probability 1/2 each; the
/// controller observes `observed` as the exhaustive mirror sequence. The
/// prior on a bad hash (1/3–2/3 split instead of 1/2–1/2) is
/// Bernoulli(1/10).
///
/// Queries: `[0]` P(bad ∧ #mirrors = L), `[1]` P(#mirrors = L); the
/// posterior P(bad | evidence) is their ratio (see
/// [`bad_hash_posterior`]).
pub fn load_balancing_source(observed: &[&str]) -> String {
    let mut obs_chain = String::from("observe(0);");
    for (idx, src) in observed.iter().enumerate().rev() {
        obs_chain = format!(
            "if num_arr == {} {{ observe(pkt.src == {src}); }} else {{ {obs_chain} }}",
            idx + 1
        );
    }
    let len = observed.len();
    format!(
        r#"// §5.5 Bayesian load-balancing conformance (Figure 11(d)).
packet_fields {{ src }}
topology {{
    nodes {{ H0, S0, S1, H1, C }}
    links {{
        (H0, pt1) <-> (S0, pt1),
        (S0, pt2) <-> (H1, pt1),
        (S0, pt3) <-> (S1, pt1),
        (S1, pt2) <-> (H1, pt2),
        (S0, pt4) <-> (C, pt1),
        (S1, pt3) <-> (C, pt2),
        (H1, pt3) <-> (C, pt3)
    }}
}}
programs {{ H0 -> h0, S0 -> s0, S1 -> s1, H1 -> h1, C -> ctrl }}
queue_capacity 8;
scheduler uniform;
init {{ packet -> (H0, pt1); }}
query probability(bad_hash@S0 == 1 and num_arr@C == {len});
query probability(num_arr@C == {len});

def h0(pkt, pt) state pkt_cnt(0) {{
    if pkt_cnt < 3 {{
        new;
        fwd(1);
        pkt_cnt = pkt_cnt + 1;
    }} else {{ drop; }}
}}
def s0(pkt, pt) state bad_hash(flip(1/10)) {{
    if flip(1/2) {{ dup; pkt.src = S0; fwd(4); }}
    if bad_hash == 1 {{
        if flip(1/3) {{ fwd(2); }} else {{ fwd(3); }}
    }} else {{
        if flip(1/2) {{ fwd(2); }} else {{ fwd(3); }}
    }}
}}
def s1(pkt, pt) {{
    if flip(1/2) {{ dup; pkt.src = S1; fwd(3); }}
    fwd(2);
}}
def h1(pkt, pt) state num_got(0) {{
    num_got = num_got + 1;
    if flip(1/2) {{ dup; pkt.src = H1; fwd(3); }}
    drop;
}}
def ctrl(pkt, pt) state num_arr(0) {{
    num_arr = num_arr + 1;
    {obs_chain}
    drop;
}}
"#
    )
}

/// The §5.5 load-balancing scenario compiled.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn load_balancing(observed: &[&str]) -> Result<Network, Error> {
    Network::from_source(&load_balancing_source(observed))
}

/// Computes the posterior P(bad hash | mirror evidence) from the two
/// queries of [`load_balancing`] using one exact run.
///
/// # Errors
///
/// Propagates inference errors; fails if the evidence has probability 0.
pub fn bad_hash_posterior(network: &Network) -> Result<Rat, Error> {
    let report = network.exact()?;
    let joint = report.results[0].rat().clone();
    let evidence = report.results[1].rat().clone();
    joint
        .checked_div(&evidence)
        .ok_or_else(|| Error::Usage("evidence has probability zero".into()))
}

/// Source for the §5.5 reliability strategy-inference scenario: the
/// Figure 11(b) diamond with an *uncertain* forwarding strategy at S0
/// (rand with prior 1/2, always-S1 with 1/4, always-S2 with 1/4), three
/// numbered packets, and an exhaustive observed arrival sequence at H1
/// (`observed` lists the packet ids in arrival order, per Figure 13).
///
/// Queries `[0..3]`: joint probabilities of {rand, det S1, det S2} with the
/// evidence; query `[3]`: the evidence alone. Posteriors are the ratios
/// (see [`strategy_posterior`]).
pub fn reliability_strategy_source(observed: &[u64]) -> String {
    let mut obs_chain = String::from("observe(0);");
    for (idx, id) in observed.iter().enumerate().rev() {
        obs_chain = format!(
            "if num_arr == {} {{ observe(pkt.id == {id}); }} else {{ {obs_chain} }}",
            idx + 1
        );
    }
    let len = observed.len();
    format!(
        r#"// §5.5 Bayesian inference of S0's forwarding strategy (Figure 13).
packet_fields {{ id }}
topology {{
    nodes {{ H0, S0, S1, S2, S3, H1 }}
    links {{
        (H0, pt1) <-> (S0, pt1),
        (S0, pt2) <-> (S1, pt1),
        (S0, pt3) <-> (S2, pt1),
        (S1, pt2) <-> (S3, pt1),
        (S2, pt2) <-> (S3, pt2),
        (S3, pt3) <-> (H1, pt1)
    }}
}}
programs {{ H0 -> h0, S0 -> s0, S1 -> s1, S2 -> s2, S3 -> s3, H1 -> h1 }}
queue_capacity 3;
scheduler uniform;
init {{ packet -> (H0, pt1); }}
query probability(is_rand@S0 == 1 and num_arr@H1 == {len});
query probability(is_rand@S0 == 0 and dir@S0 == 1 and num_arr@H1 == {len});
query probability(is_rand@S0 == 0 and dir@S0 == 0 and num_arr@H1 == {len});
query probability(num_arr@H1 == {len});

def h0(pkt, pt) state pkt_cnt(0) {{
    if pkt_cnt < 3 {{
        new;
        pkt.id = pkt_cnt + 1;
        fwd(1);
        pkt_cnt = pkt_cnt + 1;
    }} else {{ drop; }}
}}
def s0(pkt, pt) state is_rand(flip(1/2)), dir(flip(1/2)) {{
    if is_rand == 1 {{
        if flip(1/2) {{ fwd(2); }} else {{ fwd(3); }}
    }} else {{
        if dir == 1 {{ fwd(2); }} else {{ fwd(3); }}
    }}
}}
def s1(pkt, pt) {{ fwd(2); }}
def s2(pkt, pt) state failing(2) {{
    if failing == 2 {{ failing = flip(1/1000); }}
    if failing == 1 {{ drop; }} else {{ fwd(2); }}
}}
def s3(pkt, pt) {{ fwd(3); }}
def h1(pkt, pt) state num_arr(0) {{
    num_arr = num_arr + 1;
    {obs_chain}
    drop;
}}
"#
    )
}

/// The §5.5 strategy-inference scenario compiled.
///
/// # Errors
///
/// Propagates front-end errors.
pub fn reliability_strategy(observed: &[u64]) -> Result<Network, Error> {
    Network::from_source(&reliability_strategy_source(observed))
}

/// Computes the posterior distribution over S0's strategies
/// `[rand, det S1, det S2]` from one exact run of [`reliability_strategy`].
///
/// # Errors
///
/// Propagates inference errors; fails if the evidence has probability 0.
pub fn strategy_posterior(network: &Network) -> Result<[Rat; 3], Error> {
    let report = network.exact()?;
    let evidence = report.results[3].rat().clone();
    if evidence.is_zero() {
        return Err(Error::Usage("evidence has probability zero".into()));
    }
    Ok([
        report.results[0].rat() / &evidence,
        report.results[1].rat() / &evidence,
        report.results[2].rat() / &evidence,
    ])
}
