//! Property-based tests validating bignum and rational arithmetic against
//! machine-integer models and algebraic laws.

use bayonet_num::{BigInt, BigUint, Rat};
use proptest::prelude::*;

fn biguint_from_u128(v: u128) -> BigUint {
    BigUint::from(v)
}

prop_compose! {
    /// A BigUint built from up to four random limbs (up to 256 bits).
    fn arb_biguint()(limbs in proptest::collection::vec(any::<u64>(), 0..4)) -> BigUint {
        BigUint::from_limbs(limbs)
    }
}

prop_compose! {
    fn arb_bigint()(mag in arb_biguint(), neg in any::<bool>()) -> BigInt {
        let v = BigInt::from(mag);
        if neg { -v } else { v }
    }
}

prop_compose! {
    fn arb_rat()(n in -1_000_000i64..1_000_000, d in 1i64..1000) -> Rat {
        Rat::ratio(n, d)
    }
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn biguint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn biguint_div_rem_invariant(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn biguint_div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = biguint_from_u128(a).div_rem(&biguint_from_u128(b));
        prop_assert_eq!(q, biguint_from_u128(a / b));
        prop_assert_eq!(r, biguint_from_u128(a % b));
    }

    #[test]
    fn biguint_gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn biguint_gcd_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        fn gcd128(mut a: u128, mut b: u128) -> u128 {
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        }
        prop_assert_eq!(
            biguint_from_u128(a).gcd(&biguint_from_u128(b)),
            biguint_from_u128(gcd128(a, b))
        );
    }

    #[test]
    fn biguint_display_parse_roundtrip(a in arb_biguint()) {
        let s = a.to_string();
        let back: BigUint = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn biguint_shift_roundtrip(a in arb_biguint(), bits in 0u64..200) {
        prop_assert_eq!(&(&a << bits) >> bits, a);
    }

    #[test]
    fn biguint_cmp_consistent_with_sub(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.checked_sub(&b).is_some(), a >= b);
    }

    #[test]
    fn bigint_ring_laws(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, BigInt::zero());
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&ba + &bb, BigInt::from(a as i128 + b as i128));
        prop_assert_eq!(&ba - &bb, BigInt::from(a as i128 - b as i128));
        prop_assert_eq!(&ba * &bb, BigInt::from(a as i128 * b as i128));
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q, BigInt::from(a as i128 / b as i128));
            prop_assert_eq!(r, BigInt::from(a as i128 % b as i128));
        }
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), (a as i128).cmp(&(b as i128)));
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
        prop_assert_eq!(&a - &a, Rat::zero());
    }

    #[test]
    fn rat_lowest_terms_invariant(a in arb_rat(), b in arb_rat()) {
        for v in [&a + &b, &a * &b, &a - &b] {
            let g = v.numer().magnitude().gcd(v.denom());
            prop_assert!(v.is_zero() || g.is_one(), "not reduced: {}", v);
            prop_assert!(!v.denom().is_zero());
        }
    }

    #[test]
    fn rat_ordering_matches_f64(a in arb_rat(), b in arb_rat()) {
        // With numerators < 2^20 and denominators < 2^10, f64 comparison is exact.
        let fa = a.to_f64();
        let fb = b.to_f64();
        if fa != fb {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_display_parse_roundtrip(a in arb_rat()) {
        let back: Rat = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in arb_rat()) {
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }
}
