//! Benchmarks for Table 1's reliability rows: packet-delivery probability on
//! chains of failing diamonds (6 and 30 nodes), exact and SMC.

use criterion::{criterion_group, criterion_main, Criterion};

use bayonet::{scenarios, ApproxOptions, Rat, Sched};

fn bench_reliability(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/reliability");
    group.sample_size(10);
    let p_fail = Rat::ratio(1, 1000);

    let six = scenarios::reliability_chain(1, &p_fail, Sched::Uniform).unwrap();
    group.bench_function("exact_6", |b| {
        b.iter(|| six.exact().unwrap().results[0].rat().clone())
    });

    let thirty = scenarios::reliability_chain(7, &p_fail, Sched::Uniform).unwrap();
    group.bench_function("exact_30", |b| {
        b.iter(|| thirty.exact().unwrap().results[0].rat().clone())
    });

    let opts = ApproxOptions {
        particles: 1000,
        seed: 1,
        ..Default::default()
    };
    group.bench_function("smc1000_6", |b| b.iter(|| six.smc(0, &opts).unwrap().value));
    group.bench_function("smc1000_30", |b| {
        b.iter(|| thirty.smc(0, &opts).unwrap().value)
    });

    group.finish();
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
