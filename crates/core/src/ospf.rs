//! OSPF control plane: generate Bayonet data planes from link costs.
//!
//! The paper's running example (§2) hand-writes the switch programs that
//! OSPF + ECMP would install: forward along least-cost paths, and split
//! uniformly when several least-cost next hops exist. This module automates
//! that control-plane step, as a network operator would expect from a
//! deployable tool: describe the topology with *link costs* and the traffic
//! flows, and [`OspfBuilder`] computes shortest-path DAGs (Dijkstra per
//! destination) and emits the corresponding Bayonet programs — ECMP draws
//! included — ready for inference.
//!
//! # Examples
//!
//! ```
//! use bayonet::ospf::OspfBuilder;
//!
//! // The §2 topology from its link costs: S0-S1 costs 2, S0-S2-S1 costs 1+1.
//! let network = OspfBuilder::new()
//!     .switch("S0").switch("S1").switch("S2")
//!     .host("H0", "S0").host("H1", "S1")
//!     .link("S0", "S1", 2)
//!     .link("S0", "S2", 1)
//!     .link("S2", "S1", 1)
//!     .flow("H0", "H1", 3)
//!     .build()?;
//! // Query 0: P(recvd@H1 < 3) — congestion for the flow.
//! # let _ = network;
//! # Ok::<(), bayonet::Error>(())
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::Error;
use crate::network::Network;
use crate::scenarios::Sched;

/// How equal-cost ties are split (paper §2: "we assume the load-balancing
/// decision is done for each packet individually; a per-flow decision is
/// easy to model").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EcmpMode {
    /// Each packet independently picks a uniform least-cost next hop.
    #[default]
    PerPacket,
    /// Each switch hashes the flow once: the first packet draws a next hop
    /// uniformly and every later packet of the flow follows it (modelled
    /// with a lazily-drawn state variable, like the paper's Figure 12).
    PerFlow,
}

/// A traffic flow: `packets` packets from `src` to `dst` (both hosts).
#[derive(Clone, Debug)]
struct Flow {
    src: String,
    dst: String,
    packets: u32,
}

/// Builder for OSPF/ECMP networks (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct OspfBuilder {
    switches: Vec<String>,
    /// `(host, attached switch)`.
    hosts: Vec<(String, String)>,
    /// `(switch a, switch b, cost)`.
    links: Vec<(String, String, u64)>,
    flows: Vec<Flow>,
    queue_capacity: u64,
    scheduler: Sched,
    ecmp: EcmpMode,
}

impl OspfBuilder {
    /// An empty builder (queue capacity 2, uniform scheduler).
    pub fn new() -> Self {
        OspfBuilder {
            queue_capacity: 2,
            ..Default::default()
        }
    }

    /// Declares a switch.
    #[must_use]
    pub fn switch(mut self, name: &str) -> Self {
        self.switches.push(name.to_string());
        self
    }

    /// Declares a host attached to `switch`.
    #[must_use]
    pub fn host(mut self, name: &str, switch: &str) -> Self {
        self.hosts.push((name.to_string(), switch.to_string()));
        self
    }

    /// Declares a bidirectional switch-to-switch link with an OSPF cost.
    #[must_use]
    pub fn link(mut self, a: &str, b: &str, cost: u64) -> Self {
        self.links.push((a.to_string(), b.to_string(), cost));
        self
    }

    /// Declares a flow of `packets` packets from host `src` to host `dst`.
    #[must_use]
    pub fn flow(mut self, src: &str, dst: &str, packets: u32) -> Self {
        self.flows.push(Flow {
            src: src.to_string(),
            dst: dst.to_string(),
            packets,
        });
        self
    }

    /// Sets the queue capacity (default 2, as in the paper's example).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: u64) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Selects the scheduler (default uniform).
    #[must_use]
    pub fn scheduler(mut self, sched: Sched) -> Self {
        self.scheduler = sched;
        self
    }

    /// Selects how ECMP ties are split (default per packet).
    #[must_use]
    pub fn ecmp(mut self, mode: EcmpMode) -> Self {
        self.ecmp = mode;
        self
    }

    /// Generates the Bayonet source: host programs for the flows, switch
    /// programs forwarding along least-cost paths with uniform ECMP splits,
    /// and per-flow queries `probability(recvd@DST < N)` and
    /// `expectation(recvd@DST)` in flow-declaration order.
    ///
    /// # Errors
    ///
    /// Fails on duplicate/unknown names, hosts sourcing multiple flows, or
    /// unreachable destinations.
    pub fn source(&self) -> Result<String, Error> {
        let usage = |m: String| Error::Usage(m);
        // -- validation
        let mut all_names: Vec<&str> = Vec::new();
        for s in &self.switches {
            all_names.push(s);
        }
        for (h, _) in &self.hosts {
            all_names.push(h);
        }
        for (i, n) in all_names.iter().enumerate() {
            if all_names[..i].contains(n) {
                return Err(usage(format!("duplicate node name `{n}`")));
            }
        }
        let switch_idx: HashMap<&str, usize> = self
            .switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i))
            .collect();
        for (h, sw) in &self.hosts {
            if !switch_idx.contains_key(sw.as_str()) {
                return Err(usage(format!(
                    "host `{h}` attached to unknown switch `{sw}`"
                )));
            }
        }
        for (a, b, cost) in &self.links {
            if !switch_idx.contains_key(a.as_str()) || !switch_idx.contains_key(b.as_str()) {
                return Err(usage(format!(
                    "link {a} <-> {b} references an unknown switch"
                )));
            }
            if *cost == 0 {
                return Err(usage(format!("link {a} <-> {b} must have positive cost")));
            }
        }
        let host_switch: HashMap<&str, &str> = self
            .hosts
            .iter()
            .map(|(h, s)| (h.as_str(), s.as_str()))
            .collect();
        let mut sources_seen: Vec<&str> = Vec::new();
        for f in &self.flows {
            for end in [&f.src, &f.dst] {
                if !host_switch.contains_key(end.as_str()) {
                    return Err(usage(format!("flow references unknown host `{end}`")));
                }
            }
            if sources_seen.contains(&f.src.as_str()) {
                return Err(usage(format!(
                    "host `{}` sources more than one flow",
                    f.src
                )));
            }
            sources_seen.push(&f.src);
            if f.packets == 0 {
                return Err(usage(format!(
                    "flow {} -> {} sends no packets",
                    f.src, f.dst
                )));
            }
        }

        // -- port assignment: per node, ports 1.. in declaration order of
        //    its incident edges (host attachments first, then links).
        let mut ports: HashMap<(String, String), u32> = HashMap::new(); // (node, peer) -> port
        let mut next_port: HashMap<String, u32> = HashMap::new();
        fn alloc(
            node: &str,
            peer: &str,
            ports: &mut HashMap<(String, String), u32>,
            next_port: &mut HashMap<String, u32>,
        ) -> u32 {
            let slot = next_port.entry(node.to_string()).or_insert(1);
            let p = *slot;
            *slot += 1;
            ports.insert((node.to_string(), peer.to_string()), p);
            p
        }
        let mut link_decls: Vec<String> = Vec::new();
        for (h, sw) in &self.hosts {
            let ph = alloc(h, sw, &mut ports, &mut next_port);
            let ps = alloc(sw, h, &mut ports, &mut next_port);
            link_decls.push(format!("({h}, pt{ph}) <-> ({sw}, pt{ps})"));
        }
        for (a, b, _) in &self.links {
            let pa = alloc(a, b, &mut ports, &mut next_port);
            let pb = alloc(b, a, &mut ports, &mut next_port);
            link_decls.push(format!("({a}, pt{pa}) <-> ({b}, pt{pb})"));
        }

        // -- adjacency over switches
        let n = self.switches.len();
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for (a, b, cost) in &self.links {
            let (ia, ib) = (switch_idx[a.as_str()], switch_idx[b.as_str()]);
            adj[ia].push((ib, *cost));
            adj[ib].push((ia, *cost));
        }

        // -- Dijkstra from a destination switch: dist to every switch.
        let dijkstra = |target: usize| -> Vec<Option<u64>> {
            let mut dist: Vec<Option<u64>> = vec![None; n];
            dist[target] = Some(0);
            let mut visited = vec![false; n];
            loop {
                let mut best: Option<(usize, u64)> = None;
                for (i, d) in dist.iter().enumerate() {
                    if let Some(d) = d {
                        if !visited[i] && best.is_none_or(|(_, bd)| *d < bd) {
                            best = Some((i, *d));
                        }
                    }
                }
                let Some((u, du)) = best else { break };
                visited[u] = true;
                for &(v, w) in &adj[u] {
                    let cand = du + w;
                    if dist[v].is_none_or(|dv| cand < dv) {
                        dist[v] = Some(cand);
                    }
                }
            }
            dist
        };

        // -- destinations are the flow sinks; compute next-hop sets.
        let mut dest_hosts: Vec<&str> = Vec::new();
        for f in &self.flows {
            if !dest_hosts.contains(&f.dst.as_str()) {
                dest_hosts.push(&f.dst);
            }
        }
        // next_hops[dest host][switch] = ports to forward out of (ECMP set),
        // or the host-attachment port when the switch is the target.
        let mut route_tables: HashMap<&str, Vec<Vec<u32>>> = HashMap::new();
        for dest in &dest_hosts {
            let target_switch = switch_idx[host_switch[*dest]];
            let dist = dijkstra(target_switch);
            let mut table: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (s, row) in table.iter_mut().enumerate() {
                if s == target_switch {
                    row.push(ports[&(self.switches[s].clone(), dest.to_string())]);
                    continue;
                }
                let Some(ds) = dist[s] else { continue };
                for &(v, w) in &adj[s] {
                    if let Some(dv) = dist[v] {
                        if dv + w == ds {
                            row.push(ports[&(self.switches[s].clone(), self.switches[v].clone())]);
                        }
                    }
                }
            }
            route_tables.insert(dest, table);
        }
        // Reachability check for every flow.
        for f in &self.flows {
            let table = &route_tables[f.dst.as_str()];
            let src_switch = switch_idx[host_switch[f.src.as_str()]];
            let target_switch = switch_idx[host_switch[f.dst.as_str()]];
            if src_switch != target_switch && table[src_switch].is_empty() {
                return Err(usage(format!(
                    "flow {} -> {}: destination unreachable from `{}`",
                    f.src,
                    f.dst,
                    host_switch[f.src.as_str()]
                )));
            }
        }

        // -- emit source text
        let mut out = String::new();
        let _ = writeln!(out, "// Generated by the OSPF control plane: least-cost");
        let _ = writeln!(out, "// forwarding with uniform ECMP splits on ties.");
        let _ = writeln!(out, "packet_fields {{ dst, kick }}");
        let _ = writeln!(out, "topology {{");
        let names: Vec<String> = self
            .hosts
            .iter()
            .map(|(h, _)| h.clone())
            .chain(self.switches.iter().cloned())
            .collect();
        let _ = writeln!(out, "    nodes {{ {} }}", names.join(", "));
        let _ = writeln!(
            out,
            "    links {{ {} }}",
            link_decls.join(",\n            ")
        );
        let _ = writeln!(out, "}}");
        let programs: Vec<String> = self
            .hosts
            .iter()
            .map(|(h, _)| format!("{h} -> host_{h}"))
            .chain(self.switches.iter().map(|s| format!("{s} -> sw_{s}")))
            .collect();
        let _ = writeln!(out, "programs {{ {} }}", programs.join(", "));
        let _ = writeln!(out, "queue_capacity {};", self.queue_capacity);
        let sched = match self.scheduler {
            Sched::Uniform => "uniform",
            Sched::Deterministic => "roundrobin",
        };
        let _ = writeln!(out, "scheduler {sched};");
        let _ = writeln!(out, "init {{");
        for f in &self.flows {
            let port = ports[&(f.src.clone(), host_switch[f.src.as_str()].to_string())];
            let _ = writeln!(out, "    packet -> ({}, pt{port}) {{ kick = 1 }};", f.src);
        }
        let _ = writeln!(out, "}}");
        for f in &self.flows {
            let _ = writeln!(out, "query probability(recvd@{} < {});", f.dst, f.packets);
            let _ = writeln!(out, "query expectation(recvd@{});", f.dst);
        }
        let _ = writeln!(out);

        // Host programs.
        for (h, sw) in &self.hosts {
            let _ = writeln!(out, "def host_{h}(pkt, pt) state sent(0), recvd(0) {{");
            if let Some(f) = self.flows.iter().find(|f| &f.src == h) {
                let port = ports[&(h.clone(), sw.clone())];
                let _ = writeln!(out, "    if pkt.kick == 1 {{");
                let _ = writeln!(out, "        if sent < {} {{", f.packets);
                let _ = writeln!(out, "            new;");
                let _ = writeln!(out, "            pkt.dst = {};", f.dst);
                let _ = writeln!(out, "            fwd({port});");
                let _ = writeln!(out, "            sent = sent + 1;");
                let _ = writeln!(out, "        }} else {{ drop; }}");
                let _ = writeln!(out, "    }} else {{");
                let _ = writeln!(out, "        recvd = recvd + 1;");
                let _ = writeln!(out, "        drop;");
                let _ = writeln!(out, "    }}");
            } else {
                let _ = writeln!(out, "    recvd = recvd + 1;");
                let _ = writeln!(out, "    drop;");
            }
            let _ = writeln!(out, "}}");
        }

        // Switch programs: dispatch on pkt.dst over the destinations.
        for (s_idx, s) in self.switches.iter().enumerate() {
            // Per-flow ECMP keeps one lazily-drawn pick per destination in
            // switch state (0 = not yet drawn), like Figure 12's lazy
            // failure draw.
            let mut state_decls: Vec<String> = Vec::new();
            if self.ecmp == EcmpMode::PerFlow {
                for (d_idx, dest) in dest_hosts.iter().enumerate() {
                    if route_tables[*dest][s_idx].len() > 1 {
                        state_decls.push(format!("pick_{d_idx}(0)"));
                    }
                }
            }
            if state_decls.is_empty() {
                let _ = writeln!(out, "def sw_{s}(pkt, pt) {{");
            } else {
                let _ = writeln!(
                    out,
                    "def sw_{s}(pkt, pt) state {} {{",
                    state_decls.join(", ")
                );
            }
            let mut chain = String::from("drop;"); // unroutable packets die
            for (d_idx, dest) in dest_hosts.iter().enumerate().rev() {
                let hops = &route_tables[*dest][s_idx];
                let action = match hops.len() {
                    0 => "drop;".to_string(), // unreachable from here
                    1 => format!("fwd({});", hops[0]),
                    k => {
                        // Uniform ECMP split over the least-cost next hops.
                        let selector = match self.ecmp {
                            EcmpMode::PerPacket => {
                                format!("hop = uniformInt(1, {k}); ")
                            }
                            EcmpMode::PerFlow => format!(
                                "if pick_{d_idx} == 0 {{ pick_{d_idx} = uniformInt(1, {k}); }}                                  hop = pick_{d_idx}; "
                            ),
                        };
                        let mut split = format!("fwd({});", hops[k - 1]);
                        for (i, p) in hops[..k - 1].iter().enumerate().rev() {
                            split =
                                format!("if hop == {} {{ fwd({p}); }} else {{ {split} }}", i + 1);
                        }
                        format!("{selector}{split}")
                    }
                };
                chain = format!("if pkt.dst == {dest} {{ {action} }} else {{ {chain} }}");
            }
            let _ = writeln!(out, "    {chain}");
            let _ = writeln!(out, "}}");
        }
        Ok(out)
    }

    /// Generates the source and compiles it into a [`Network`].
    ///
    /// # Errors
    ///
    /// As for [`OspfBuilder::source`], plus front-end errors (which indicate
    /// a generator bug).
    pub fn build(&self) -> Result<Network, Error> {
        Network::from_source(&self.source()?)
    }
}
