//! Recursive-descent parser for the Bayonet language.

use bayonet_num::{BigInt, Rat};

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Keyword as Kw, Span, Tok, Token};

/// Parses a complete Bayonet source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source position.
///
/// # Examples
///
/// ```
/// use bayonet_lang::parse;
///
/// let program = parse(r#"
///     packet_fields { dst }
///     topology {
///         nodes { H0, H1 }
///         links { (H0, pt1) <-> (H1, pt1) }
///     }
///     programs { H0 -> h0, H1 -> h1 }
///     init { packet -> (H0, pt1); }
///     query probability(got@H1 == 1);
///     def h0(pkt, pt) { fwd(1); }
///     def h1(pkt, pt) state got(0) { got = 1; drop; }
/// "#)?;
/// assert_eq!(program.topology.nodes.len(), 2);
/// # Ok::<(), bayonet_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

/// Parses a single expression (useful for tests and query strings).
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, LangError> {
        if *self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                format!("expected {tok}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<Ident, LangError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok(Ident { name, span })
            }
            other => Err(LangError::parse(
                format!("expected an identifier, found {other}"),
                self.span(),
            )),
        }
    }

    fn int(&mut self) -> Result<u64, LangError> {
        match self.peek().clone() {
            Tok::Int(digits) => {
                let span = self.span();
                self.bump();
                digits
                    .parse::<u64>()
                    .map_err(|_| LangError::parse("integer literal too large", span))
            }
            other => Err(LangError::parse(
                format!("expected an integer, found {other}"),
                self.span(),
            )),
        }
    }

    /// A port written either as a bare integer or as `pt<N>`.
    fn port(&mut self) -> Result<u32, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(_) => Ok(self.int()? as u32),
            Tok::Ident(name) if name.starts_with("pt") => {
                let digits = &name[2..];
                let n: u32 = digits
                    .parse()
                    .map_err(|_| LangError::parse(format!("invalid port `{name}`"), span))?;
                self.bump();
                Ok(n)
            }
            other => Err(LangError::parse(
                format!("expected a port (`ptN` or integer), found {other}"),
                span,
            )),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut packet_fields = Vec::new();
        let mut parameters = Vec::new();
        let mut topology = None;
        let mut programs = Vec::new();
        let mut queue_capacity = None;
        let mut num_steps = None;
        let mut scheduler = None;
        let mut init = Vec::new();
        let mut queries = Vec::new();
        let mut defs = Vec::new();

        loop {
            let span = self.span();
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Kw(Kw::PacketFields) => {
                    self.bump();
                    packet_fields.extend(self.ident_block()?);
                }
                Tok::Kw(Kw::Parameters) => {
                    self.bump();
                    parameters.extend(self.ident_block()?);
                }
                Tok::Kw(Kw::Topology) => {
                    if topology.is_some() {
                        return Err(LangError::parse("duplicate topology block", span));
                    }
                    topology = Some(self.topology()?);
                }
                Tok::Kw(Kw::Programs) => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        let node = self.ident()?;
                        self.expect(Tok::Arrow)?;
                        let prog = self.ident()?;
                        programs.push((node, prog));
                        if !self.eat(Tok::Comma) {
                            self.expect(Tok::RBrace)?;
                            break;
                        }
                    }
                }
                Tok::Kw(Kw::QueueCapacity) => {
                    self.bump();
                    if queue_capacity.is_some() {
                        return Err(LangError::parse("queue_capacity specified twice", span));
                    }
                    queue_capacity = Some(self.int()?);
                    self.expect(Tok::Semi)?;
                }
                Tok::Kw(Kw::NumSteps) => {
                    self.bump();
                    if num_steps.is_some() {
                        return Err(LangError::parse("num_steps specified twice", span));
                    }
                    num_steps = Some(self.int()?);
                    self.expect(Tok::Semi)?;
                }
                Tok::Kw(Kw::Scheduler) => {
                    self.bump();
                    if scheduler.is_some() {
                        return Err(LangError::parse("scheduler specified twice", span));
                    }
                    scheduler = Some(self.scheduler_spec()?);
                    self.expect(Tok::Semi)?;
                }
                Tok::Kw(Kw::Init) => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        init.push(self.init_packet()?);
                    }
                }
                Tok::Kw(Kw::Query) => {
                    self.bump();
                    queries.push(self.query()?);
                    self.expect(Tok::Semi)?;
                }
                Tok::Kw(Kw::Def) => {
                    self.bump();
                    defs.push(self.node_def()?);
                }
                other => {
                    return Err(LangError::parse(
                        format!("expected a top-level declaration, found {other}"),
                        span,
                    ));
                }
            }
        }

        let topology =
            topology.ok_or_else(|| LangError::parse("missing topology block", self.span()))?;
        Ok(Program {
            packet_fields,
            parameters,
            topology,
            programs,
            queue_capacity,
            num_steps,
            scheduler: scheduler.unwrap_or(SchedulerSpec::Uniform),
            init,
            queries,
            defs,
        })
    }

    fn ident_block(&mut self) -> Result<Vec<Ident>, LangError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(Tok::RBrace) {
            out.push(self.ident()?);
            if !self.eat(Tok::Comma) {
                self.expect(Tok::RBrace)?;
                break;
            }
        }
        Ok(out)
    }

    fn topology(&mut self) -> Result<Topology, LangError> {
        self.expect(Tok::Kw(Kw::Topology))?;
        self.expect(Tok::LBrace)?;
        let mut nodes = Vec::new();
        let mut links = Vec::new();
        while !self.eat(Tok::RBrace) {
            match self.peek().clone() {
                Tok::Kw(Kw::Nodes) => {
                    self.bump();
                    nodes.extend(self.ident_block()?);
                }
                Tok::Kw(Kw::Links) => {
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    while !self.eat(Tok::RBrace) {
                        let a = self.endpoint()?;
                        self.expect(Tok::BiArrow)?;
                        let b = self.endpoint()?;
                        links.push(Link { a, b });
                        if !self.eat(Tok::Comma) {
                            self.expect(Tok::RBrace)?;
                            break;
                        }
                    }
                }
                other => {
                    return Err(LangError::parse(
                        format!("expected `nodes` or `links`, found {other}"),
                        self.span(),
                    ));
                }
            }
        }
        Ok(Topology { nodes, links })
    }

    fn endpoint(&mut self) -> Result<Endpoint, LangError> {
        self.expect(Tok::LParen)?;
        let node = self.ident()?;
        self.expect(Tok::Comma)?;
        let port = self.port()?;
        self.expect(Tok::RParen)?;
        Ok(Endpoint { node, port })
    }

    fn scheduler_spec(&mut self) -> Result<SchedulerSpec, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Uniform) => {
                self.bump();
                Ok(SchedulerSpec::Uniform)
            }
            Tok::Kw(Kw::RoundRobin) => {
                self.bump();
                Ok(SchedulerSpec::RoundRobin)
            }
            Tok::Kw(Kw::Rotor) => {
                self.bump();
                Ok(SchedulerSpec::Rotor)
            }
            Tok::Kw(Kw::Weighted) => {
                self.bump();
                self.expect(Tok::LBrace)?;
                let mut weights = Vec::new();
                while !self.eat(Tok::RBrace) {
                    let node = self.ident()?;
                    self.expect(Tok::Arrow)?;
                    let w = self.int()?;
                    weights.push((node, w));
                    if !self.eat(Tok::Comma) {
                        self.expect(Tok::RBrace)?;
                        break;
                    }
                }
                Ok(SchedulerSpec::Weighted(weights))
            }
            other => Err(LangError::parse(
                format!("expected `uniform`, `roundrobin`, `rotor`, or `weighted`, found {other}"),
                self.span(),
            )),
        }
    }

    fn init_packet(&mut self) -> Result<InitPacket, LangError> {
        self.expect(Tok::Kw(Kw::Packet))?;
        self.expect(Tok::Arrow)?;
        let ep = self.endpoint()?;
        let mut fields = Vec::new();
        if self.eat(Tok::LBrace) {
            while !self.eat(Tok::RBrace) {
                let field = self.ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                fields.push((field, value));
                if !self.eat(Tok::Comma) {
                    self.expect(Tok::RBrace)?;
                    break;
                }
            }
        }
        self.expect(Tok::Semi)?;
        Ok(InitPacket {
            node: ep.node,
            port: ep.port,
            fields,
        })
    }

    fn query(&mut self) -> Result<Query, LangError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Probability) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Query::Probability(e))
            }
            Tok::Kw(Kw::Expectation) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Query::Expectation(e))
            }
            other => Err(LangError::parse(
                format!("expected `probability` or `expectation`, found {other}"),
                self.span(),
            )),
        }
    }

    fn node_def(&mut self) -> Result<NodeDef, LangError> {
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let has_params = if self.eat(Tok::RParen) {
            false
        } else {
            self.expect(Tok::Kw(Kw::Pkt))?;
            self.expect(Tok::Comma)?;
            self.expect(Tok::Kw(Kw::Pt))?;
            self.expect(Tok::RParen)?;
            true
        };
        let mut state = Vec::new();
        if self.eat(Tok::Kw(Kw::State)) {
            loop {
                let var = self.ident()?;
                self.expect(Tok::LParen)?;
                let init = self.expr()?;
                self.expect(Tok::RParen)?;
                state.push((var, init));
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        let body = self.block()?;
        Ok(NodeDef {
            name,
            has_params,
            state,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(Tok::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Kw(Kw::New) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::New(span))
            }
            Tok::Kw(Kw::Drop) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Drop(span))
            }
            Tok::Kw(Kw::Dup) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Dup(span))
            }
            Tok::Kw(Kw::Skip) => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Skip(span))
            }
            Tok::Kw(Kw::Fwd) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Fwd(e, span))
            }
            Tok::Kw(Kw::Assert) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assert(e, span))
            }
            Tok::Kw(Kw::Observe) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Observe(e, span))
            }
            Tok::Kw(Kw::Pkt) => {
                self.bump();
                self.expect(Tok::Dot)?;
                let field = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::FieldAssign(field, e))
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                let cond = self.expr()?;
                let then_body = self.block()?;
                let else_body = if self.eat(Tok::Kw(Kw::Else)) {
                    if *self.peek() == Tok::Kw(Kw::If) {
                        vec![self.stmt()?] // `else if` chain
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_body, else_body))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Ident(_) => {
                let var = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assign(var, e))
            }
            other => Err(LangError::parse(
                format!("expected a statement, found {other}"),
                span,
            )),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat(Tok::Kw(Kw::Or)) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.not_expr()?;
        while self.eat(Tok::Kw(Kw::And)) {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        if self.eat(Tok::Kw(Kw::Not)) {
            let e = self.not_expr()?;
            Ok(Expr::Not(Box::new(e), span))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        if self.eat(Tok::Minus) {
            let e = self.unary_expr()?;
            Ok(Expr::Neg(Box::new(e), span))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(digits) => {
                self.bump();
                let n: BigInt = digits
                    .parse()
                    .map_err(|_| LangError::parse("invalid integer literal", span))?;
                Ok(Expr::Num(Rat::from(n), span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Kw(Kw::Flip) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let p = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Flip(Box::new(p), span))
            }
            Tok::Kw(Kw::UniformInt) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let lo = self.expr()?;
                self.expect(Tok::Comma)?;
                let hi = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::UniformInt(Box::new(lo), Box::new(hi), span))
            }
            Tok::Kw(Kw::Pkt) => {
                self.bump();
                self.expect(Tok::Dot)?;
                let field = self.ident()?;
                Ok(Expr::Field(field))
            }
            Tok::Kw(Kw::Pt) => {
                self.bump();
                Ok(Expr::Port(span))
            }
            Tok::Ident(_) => {
                let id = self.ident()?;
                if self.eat(Tok::At) {
                    let node = self.ident()?;
                    Ok(Expr::At(id, node))
                } else {
                    Ok(Expr::Name(id))
                }
            }
            other => Err(LangError::parse(
                format!("expected an expression, found {other}"),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary(BinOp::Add, _, rhs) = e else {
            panic!("expected + at top")
        };
        assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)));

        let e = parse_expr("a < b or a == b and flip(1/2)").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn comparison_binds_tighter_than_and() {
        let e = parse_expr("x == 1 and y == 2").unwrap();
        let Expr::Binary(BinOp::And, lhs, rhs) = e else {
            panic!()
        };
        assert!(matches!(*lhs, Expr::Binary(BinOp::Eq, _, _)));
        assert!(matches!(*rhs, Expr::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn not_and_unary_minus() {
        assert!(matches!(parse_expr("not x").unwrap(), Expr::Not(_, _)));
        assert!(matches!(
            parse_expr("-x + 1").unwrap(),
            Expr::Binary(BinOp::Add, _, _)
        ));
        assert!(matches!(parse_expr("not not x").unwrap(), Expr::Not(_, _)));
    }

    #[test]
    fn at_expressions() {
        let e = parse_expr("pkt_cnt@H1 < 3").unwrap();
        let Expr::Binary(BinOp::Lt, lhs, _) = e else {
            panic!()
        };
        assert!(matches!(*lhs, Expr::At(_, _)));
    }

    #[test]
    fn fraction_literal_is_division() {
        let e = parse_expr("1/2").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Div, _, _)));
    }

    #[test]
    fn else_if_chain_desugars_to_nested_if() {
        let src = r#"
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a }
            query probability(1 == 1);
            def a(pkt, pt) {
                if pt == 1 { fwd(3); }
                else if pt == 2 { fwd(1); }
                else { drop; }
            }
        "#;
        let p = parse(src).unwrap();
        let Stmt::If(_, _, else_body) = &p.defs[0].body[0] else {
            panic!()
        };
        assert_eq!(else_body.len(), 1);
        let Stmt::If(_, _, inner_else) = &else_body[0] else {
            panic!("else-if should nest")
        };
        assert_eq!(inner_else.len(), 1);
    }

    #[test]
    fn full_paper_example_parses() {
        let src = r#"
            packet_fields { dst }
            parameters { COST_01, COST_02, COST_21 }
            topology {
                nodes { H0, H1, S0, S1, S2 }
                links {
                    (H0, pt1) <-> (S0, pt3),
                    (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
                    (S1, pt2) <-> (S2, pt2), (S1, pt3) <-> (H1, pt1)
                }
            }
            programs { H0 -> h0, H1 -> h1, S0 -> s0, S1 -> s1, S2 -> s2 }
            queue_capacity 2;
            scheduler uniform;
            init { packet -> (H0, pt1); }
            query probability(pkt_cnt@H1 < 3);

            def h0(pkt, pt) state pkt_cnt(0) {
                if pkt_cnt < 3 {
                    new;
                    pkt.dst = H1;
                    fwd(1);
                    pkt_cnt = pkt_cnt + 1;
                } else { drop; }
            }
            def h1(pkt, pt) state pkt_cnt(0) {
                pkt_cnt = pkt_cnt + 1;
                drop;
            }
            def s2(pkt, pt) {
                if pt == 1 { fwd(2); } else { fwd(1); }
            }
            def s0(pkt, pt) state route1(0), route2(0) {
                if pt == 1 { fwd(3); }
                else if pt == 2 {
                    if pkt.dst == H0 { fwd(3); } else { fwd(1); }
                } else if pt == 3 {
                    route1 = COST_01;
                    route2 = COST_02 + COST_21;
                    if route1 < route2 or (route1 == route2 and flip(1/2)) {
                        fwd(1);
                    } else { fwd(2); }
                }
            }
            def s1(pkt, pt) state route1(0), route2(0) {
                if pt == 1 { fwd(3); }
                else if pt == 2 {
                    if pkt.dst == H1 { fwd(3); } else { fwd(1); }
                } else if pt == 3 {
                    route1 = COST_01;
                    route2 = COST_02 + COST_21;
                    if route1 < route2 or (route1 == route2 and flip(1/2)) {
                        fwd(1);
                    } else { fwd(2); }
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.topology.nodes.len(), 5);
        assert_eq!(p.topology.links.len(), 5);
        assert_eq!(p.defs.len(), 5);
        assert_eq!(p.parameters.len(), 3);
        assert_eq!(p.queue_capacity, Some(2));
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.init.len(), 1);
    }

    #[test]
    fn init_with_field_values() {
        let src = r#"
            packet_fields { dst, id }
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a }
            init {
                packet -> (A, pt1) { dst = B, id = 3 };
                packet -> (B, 1);
            }
            query expectation(x@A);
            def a(pkt, pt) state x(0) { drop; }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.init.len(), 2);
        assert_eq!(p.init[0].fields.len(), 2);
        assert_eq!(p.init[1].port, 1);
    }

    #[test]
    fn weighted_scheduler_spec() {
        let src = r#"
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a }
            scheduler weighted { A -> 3, B -> 1 };
            query probability(1 == 1);
            def a(pkt, pt) { drop; }
        "#;
        let p = parse(src).unwrap();
        let SchedulerSpec::Weighted(w) = &p.scheduler else {
            panic!()
        };
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].1, 3);
    }

    #[test]
    fn duplicate_singletons_rejected() {
        let base = r#"
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a }
            query probability(1 == 1);
            def a(pkt, pt) { drop; }
        "#;
        assert!(parse(&format!("queue_capacity 2; queue_capacity 3; {base}")).is_err());
        assert!(parse(&format!("num_steps 5; num_steps 6; {base}")).is_err());
        assert!(parse(&format!("scheduler uniform; scheduler uniform; {base}")).is_err());
    }

    #[test]
    fn missing_topology_is_an_error() {
        assert!(parse("query probability(1 == 1);").is_err());
    }

    #[test]
    fn def_without_params() {
        let src = r#"
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a }
            query probability(1 == 1);
            def a() state n(0) { n = n + 1; drop; }
        "#;
        let p = parse(src).unwrap();
        assert!(!p.defs[0].has_params);
        assert_eq!(p.defs[0].state.len(), 1);
    }
}
