//! Sign cells: the piecewise case structure of a symbolic inference result.
//!
//! During symbolic execution different branches may split on different
//! expressions, so terminal guards are not a partition of parameter space.
//! To report a well-defined piecewise result (paper Figure 3), we collect
//! every canonical expression that occurs in any terminal guard and
//! enumerate all *feasible* full sign assignments — the **cells**. Each
//! terminal guard is then compatible with exactly the cells that extend it.

use bayonet_num::Sign;

use crate::cache::FeasibilityCache;
use crate::feasible::{feasibility, Assignment, Feasibility};
use crate::guard::Guard;
use crate::linexpr::LinExpr;
use crate::param::ParamTable;

/// A full sign assignment to a set of canonical expressions, represented as
/// a [`Guard`] that constrains every one of them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cell {
    guard: Guard,
}

impl Cell {
    /// The cell's guard (one atom per expression).
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// Returns `true` if `guard` holds everywhere in the cell, i.e. the
    /// cell's sign assignment extends the guard's atoms.
    pub fn admits(&self, guard: &Guard) -> bool {
        guard.implied_by(&self.guard)
    }

    /// A rational parameter assignment lying inside the cell.
    pub fn witness(&self) -> Assignment {
        match feasibility(&self.guard) {
            Feasibility::Sat(w) => w,
            Feasibility::Unsat => unreachable!("cells are feasible by construction"),
        }
    }

    /// Renders with parameter names from `table`.
    pub fn display<'a>(&'a self, table: &'a ParamTable) -> impl std::fmt::Display + 'a {
        self.guard.display(table)
    }
}

/// Collects the distinct canonical expressions occurring in `guards`.
pub fn atom_exprs(guards: &[Guard]) -> Vec<LinExpr> {
    let mut exprs: Vec<LinExpr> = Vec::new();
    for g in guards {
        for (e, _) in g.atoms() {
            if !exprs.contains(e) {
                exprs.push(e.clone());
            }
        }
    }
    exprs
}

/// Enumerates all feasible cells over `exprs` (up to `3^n` candidates,
/// pruned by feasibility as the assignment is extended).
///
/// # Examples
///
/// ```
/// use bayonet_symbolic::{enumerate_cells, LinExpr, ParamTable};
///
/// let mut t = ParamTable::new();
/// let x = LinExpr::param(t.intern("x"));
/// let cells = enumerate_cells(&[x]);
/// assert_eq!(cells.len(), 3); // x < 0, x == 0, x > 0
/// ```
pub fn enumerate_cells(exprs: &[LinExpr]) -> Vec<Cell> {
    enumerate_cells_cached(exprs, None)
}

/// [`enumerate_cells`] with the pruning feasibility checks routed through a
/// [`FeasibilityCache`], sharing memoized verdicts with the rest of a run.
pub fn enumerate_cells_cached(exprs: &[LinExpr], cache: Option<&FeasibilityCache>) -> Vec<Cell> {
    let is_sat = |g: &Guard| match cache {
        Some(c) => c.is_sat(g),
        None => feasibility(g).is_sat(),
    };
    let mut out = Vec::new();
    let mut stack = vec![(Guard::top(), 0usize)];
    while let Some((guard, i)) = stack.pop() {
        if i == exprs.len() {
            out.push(Cell { guard });
            continue;
        }
        for s in [Sign::Minus, Sign::Zero, Sign::Plus] {
            if let Some(extended) = guard.assume_sign(&exprs[i], s) {
                if is_sat(&extended) {
                    stack.push((extended, i + 1));
                }
            }
        }
    }
    out.reverse(); // DFS pushed in reverse sign order; restore Minus→Plus order
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamTable;
    use bayonet_num::Rat;

    #[test]
    fn one_expr_gives_three_cells() {
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let cells = enumerate_cells(std::slice::from_ref(&x));
        assert_eq!(cells.len(), 3);
        for c in &cells {
            let w = c.witness();
            assert!(c.admits(c.guard()));
            // witness satisfies the cell's own guard
            let v = x.eval(&|p| w.get(&p).cloned().unwrap_or_else(Rat::zero));
            let (e, s) = c.guard().atoms().next().unwrap();
            assert_eq!(e, &x);
            assert_eq!(v.sign(), s);
        }
    }

    #[test]
    fn dependent_exprs_prune_infeasible_cells() {
        // x and x - 1: sign(x) = Minus is incompatible with sign(x-1) = Plus etc.
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let xm1 = x.sub(&LinExpr::constant(Rat::one()));
        let cells = enumerate_cells(&[x.clone(), xm1.clone()]);
        // Feasible combinations: (-,-), (0,-), (+,-), (+,0), (+,+) = 5 of 9.
        assert_eq!(cells.len(), 5);
    }

    #[test]
    fn cells_admit_weaker_guards() {
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let y = LinExpr::param(t.intern("y"));
        let cells = enumerate_cells(&[x.clone(), y.clone()]);
        assert_eq!(cells.len(), 9);
        let gx_pos = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
        let admitting: Vec<_> = cells.iter().filter(|c| c.admits(&gx_pos)).collect();
        assert_eq!(admitting.len(), 3); // one per sign of y
                                        // The trivial guard is admitted by every cell.
        assert!(cells.iter().all(|c| c.admits(&Guard::top())));
    }

    #[test]
    fn atom_exprs_deduplicates() {
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let g1 = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
        let g2 = Guard::top()
            .assume_sign(&x.scale(&Rat::int(5)), Sign::Minus)
            .unwrap();
        let exprs = atom_exprs(&[g1, g2]);
        assert_eq!(exprs.len(), 1);
    }
}
