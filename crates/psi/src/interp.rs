//! Interpreter and exact/approximate inference for PSI-core programs.
//!
//! The interpreter is parameterized by the same [`ChoiceDriver`] the
//! network engines use, so PSI-core programs can be run under exhaustive
//! replay enumeration (exact posterior) or plain sampling. Exactness here
//! comes *without* state merging — it enumerates complete traces, like PSI
//! enumerates program paths — which keeps it an independent check on the
//! merged direct engine.

use std::fmt;

use bayonet_exact::enumerate_eval;
use bayonet_net::{ChoiceDriver, SemanticsError};
use bayonet_num::Rat;
use bayonet_symbolic::Guard;

use crate::ir::{BinOp, LValue, PExpr, PProgram, PStmt, PValue};

/// Errors raised by PSI-core execution.
#[derive(Debug)]
pub enum PsiError {
    /// Type confusion or out-of-bounds access (a translation bug).
    Runtime(String),
    /// An underlying semantics error (draws with bad arguments, ...).
    Semantics(SemanticsError),
    /// A loop exceeded the step budget.
    StepLimit(u64),
    /// All probability mass was discarded by observations.
    AllMassObservedOut,
}

impl fmt::Display for PsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsiError::Runtime(m) => write!(f, "psi-core runtime error: {m}"),
            PsiError::Semantics(e) => write!(f, "psi-core semantics error: {e}"),
            PsiError::StepLimit(n) => write!(f, "psi-core step limit exceeded ({n})"),
            PsiError::AllMassObservedOut => {
                f.write_str("all probability mass was discarded by observations (Z = 0)")
            }
        }
    }
}

impl std::error::Error for PsiError {}

impl From<SemanticsError> for PsiError {
    fn from(e: SemanticsError) -> Self {
        PsiError::Semantics(e)
    }
}

/// Default per-trace statement budget.
pub const DEFAULT_STEP_LIMIT: u64 = 1_000_000;

/// Outcome of one complete program execution.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// The program finished; here is the result value.
    Value(PValue),
    /// An `observe` failed; the trace is discarded.
    ObserveFailed,
}

/// Executes a PSI-core program once under the given driver.
///
/// # Errors
///
/// Returns [`SemanticsError`]s for bad draws and runtime errors as
/// `SemanticsError::SymbolicValueInConcreteContext` is never produced here;
/// type errors surface as panics guarded into errors.
pub fn run(
    program: &PProgram,
    driver: &mut dyn ChoiceDriver,
    step_limit: u64,
) -> Result<RunOutcome, SemanticsError> {
    let mut cx = Interp {
        globals: vec![PValue::int(0); program.num_globals()],
        steps: 0,
        step_limit,
    };
    for (slot, init) in program.init.iter().enumerate() {
        let v = cx.eval(init, driver)?;
        cx.globals[slot] = v;
    }
    if !cx.exec_block(&program.body, driver)? {
        return Ok(RunOutcome::ObserveFailed);
    }
    Ok(RunOutcome::Value(cx.eval(&program.result, driver)?))
}

/// The exact posterior of a PSI-core program by exhaustive trace
/// enumeration (no merging — the differential backend).
#[derive(Debug, Clone)]
pub struct PsiPosterior {
    /// `(result value, unnormalized mass)` per distinct result.
    pub support: Vec<(PValue, Rat)>,
    /// Mass discarded by observations.
    pub discarded: Rat,
}

impl PsiPosterior {
    /// Normalization constant (surviving mass).
    pub fn z(&self) -> Rat {
        self.support.iter().fold(Rat::zero(), |acc, (_, m)| acc + m)
    }

    /// Probability that the result is truthy (for probability queries).
    ///
    /// # Panics
    ///
    /// Panics if `Z = 0`.
    pub fn probability_true(&self) -> Rat {
        let z = self.z();
        assert!(!z.is_zero(), "undefined posterior (Z = 0)");
        let num = self
            .support
            .iter()
            .filter(|(v, _)| v.as_rat().is_some_and(|r| r.is_true()))
            .fold(Rat::zero(), |acc, (_, m)| acc + m);
        num / z
    }

    /// Expected value of a scalar result.
    ///
    /// # Panics
    ///
    /// Panics if `Z = 0` or a result is not scalar.
    pub fn expectation(&self) -> Rat {
        let z = self.z();
        assert!(!z.is_zero(), "undefined posterior (Z = 0)");
        let num = self.support.iter().fold(Rat::zero(), |acc, (v, m)| {
            acc + &(v.as_rat().expect("scalar result") * m)
        });
        num / z
    }
}

/// Runs exact inference on a PSI-core program by enumerating every trace.
///
/// # Errors
///
/// Propagates execution errors; reports `Z = 0` when every trace is
/// observed out.
pub fn infer_exact(program: &PProgram, step_limit: u64) -> Result<PsiPosterior, PsiError> {
    let branches = enumerate_eval(&Guard::top(), false, |driver| {
        run(program, driver, step_limit)
    })
    .map_err(PsiError::from)?;
    let mut support: Vec<(PValue, Rat)> = Vec::new();
    let mut discarded = Rat::zero();
    for b in branches {
        match b.result {
            RunOutcome::ObserveFailed => discarded += &b.weight,
            RunOutcome::Value(v) => {
                if let Some(entry) = support.iter_mut().find(|(sv, _)| *sv == v) {
                    entry.1 += &b.weight;
                } else {
                    support.push((v, b.weight));
                }
            }
        }
    }
    if support.is_empty() {
        return Err(PsiError::AllMassObservedOut);
    }
    Ok(PsiPosterior { support, discarded })
}

struct Interp {
    globals: Vec<PValue>,
    steps: u64,
    step_limit: u64,
}

impl Interp {
    fn tick(&mut self) -> Result<(), SemanticsError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            // Reuse the loop-limit error shape for step exhaustion.
            Err(SemanticsError::LoopLimitExceeded {
                node: usize::MAX,
                limit: self.step_limit,
            })
        } else {
            Ok(())
        }
    }

    /// Executes a block; `Ok(false)` signals a failed observation.
    fn exec_block(
        &mut self,
        stmts: &[PStmt],
        driver: &mut dyn ChoiceDriver,
    ) -> Result<bool, SemanticsError> {
        for s in stmts {
            self.tick()?;
            match s {
                PStmt::Assign(place, e) => {
                    let v = self.eval(e, driver)?;
                    let slot = self.resolve(place, driver)?;
                    *slot = v;
                }
                PStmt::If(c, t, els) => {
                    let cond = self.truthy(c, driver)?;
                    let branch = if cond { t } else { els };
                    if !self.exec_block(branch, driver)? {
                        return Ok(false);
                    }
                }
                PStmt::While(c, body) => loop {
                    self.tick()?;
                    if !self.truthy(c, driver)? {
                        break;
                    }
                    if !self.exec_block(body, driver)? {
                        return Ok(false);
                    }
                },
                PStmt::Observe(c) => {
                    if !self.truthy(c, driver)? {
                        return Ok(false);
                    }
                }
                PStmt::PushBack(place, e) => {
                    let v = self.eval(e, driver)?;
                    match self.resolve(place, driver)? {
                        PValue::Array(items) => items.push(v),
                        other => return Err(type_error("array", other)),
                    }
                }
                PStmt::PushFront(place, e) => {
                    let v = self.eval(e, driver)?;
                    match self.resolve(place, driver)? {
                        PValue::Array(items) => items.insert(0, v),
                        other => return Err(type_error("array", other)),
                    }
                }
                PStmt::Trap(msg) => {
                    return Err(SemanticsError::Trap(msg.clone()));
                }
                PStmt::PopFront { dest, queue } => {
                    let popped = match self.resolve(queue, driver)? {
                        PValue::Array(items) => {
                            if items.is_empty() {
                                return Err(SemanticsError::EmptyQueue { node: usize::MAX });
                            }
                            items.remove(0)
                        }
                        other => return Err(type_error("array", other)),
                    };
                    if let Some(place) = dest {
                        let slot = self.resolve(place, driver)?;
                        *slot = popped;
                    }
                }
            }
        }
        Ok(true)
    }

    fn truthy(&mut self, e: &PExpr, driver: &mut dyn ChoiceDriver) -> Result<bool, SemanticsError> {
        match self.eval(e, driver)? {
            PValue::Rat(r) => Ok(r.is_true()),
            other => Err(type_error("scalar condition", &other)),
        }
    }

    fn eval(&mut self, e: &PExpr, driver: &mut dyn ChoiceDriver) -> Result<PValue, SemanticsError> {
        Ok(match e {
            PExpr::Const(r) => PValue::Rat(r.clone()),
            PExpr::Var(slot) => self.globals[*slot].clone(),
            PExpr::Tuple(items) => PValue::Tuple(
                items
                    .iter()
                    .map(|i| self.eval(i, driver))
                    .collect::<Result<_, _>>()?,
            ),
            PExpr::ArrayLit(items) => PValue::Array(
                items
                    .iter()
                    .map(|i| self.eval(i, driver))
                    .collect::<Result<_, _>>()?,
            ),
            PExpr::Proj(t, idx) => match self.eval(t, driver)? {
                PValue::Tuple(items) => items
                    .get(*idx)
                    .cloned()
                    .ok_or_else(|| oob(*idx, items.len()))?,
                other => return Err(type_error("tuple", &other)),
            },
            PExpr::Index(a, i) => {
                let idx = self.eval_index(i, driver)?;
                match self.eval(a, driver)? {
                    PValue::Array(items) => items
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| oob(idx, items.len()))?,
                    other => return Err(type_error("array", &other)),
                }
            }
            PExpr::Len(a) => match self.eval(a, driver)? {
                PValue::Array(items) => PValue::int(items.len() as i64),
                other => return Err(type_error("array", &other)),
            },
            PExpr::Bin(op, a, b) => {
                let (av, bv) = (self.eval(a, driver)?, self.eval(b, driver)?);
                let (ar, br) = match (&av, &bv) {
                    (PValue::Rat(x), PValue::Rat(y)) => (x, y),
                    _ => return Err(type_error("scalar operands", &av)),
                };
                PValue::Rat(scalar_binop(*op, ar, br)?)
            }
            PExpr::Not(inner) => {
                let t = self.truthy(inner, driver)?;
                PValue::from_bool(!t)
            }
            PExpr::Neg(inner) => match self.eval(inner, driver)? {
                PValue::Rat(r) => PValue::Rat(-r),
                other => return Err(type_error("scalar", &other)),
            },
            PExpr::Flip(p) => {
                let pv = self.eval(p, driver)?;
                let pr = pv
                    .as_rat()
                    .ok_or_else(|| type_error_err("scalar probability"))?;
                if pr.is_negative() || *pr > Rat::one() {
                    return Err(SemanticsError::FlipProbabilityOutOfRange(pr.to_string()));
                }
                if pr.is_zero() {
                    PValue::from_bool(false)
                } else if pr.is_one() {
                    PValue::from_bool(true)
                } else {
                    PValue::from_bool(driver.flip(pr)?)
                }
            }
            PExpr::UniformInt(lo, hi) => {
                let lo = self.eval_int(lo, driver)?;
                let hi = self.eval_int(hi, driver)?;
                if lo > hi {
                    return Err(SemanticsError::UniformBoundsInvalid(format!(
                        "[{lo}, {hi}]"
                    )));
                }
                if lo == hi {
                    PValue::int(lo)
                } else {
                    PValue::int(driver.uniform_int(lo, hi)?)
                }
            }
        })
    }

    fn eval_int(
        &mut self,
        e: &PExpr,
        driver: &mut dyn ChoiceDriver,
    ) -> Result<i64, SemanticsError> {
        match self.eval(e, driver)? {
            PValue::Rat(r) => r
                .to_i64()
                .ok_or_else(|| SemanticsError::UniformBoundsInvalid(r.to_string())),
            other => Err(type_error("integer", &other)),
        }
    }

    fn eval_index(
        &mut self,
        e: &PExpr,
        driver: &mut dyn ChoiceDriver,
    ) -> Result<usize, SemanticsError> {
        let i = self.eval_int(e, driver)?;
        usize::try_from(i).map_err(|_| SemanticsError::PortNotInteger(i.to_string()))
    }

    /// Resolves an lvalue to a mutable slot.
    fn resolve(
        &mut self,
        place: &LValue,
        driver: &mut dyn ChoiceDriver,
    ) -> Result<&mut PValue, SemanticsError> {
        // Evaluate all indices first (they may read globals).
        fn walk<'a>(
            globals: &'a mut Vec<PValue>,
            place: &LValue,
            indices: &mut dyn FnMut(&PExpr) -> Result<usize, SemanticsError>,
        ) -> Result<&'a mut PValue, SemanticsError> {
            match place {
                LValue::Var(slot) => Ok(&mut globals[*slot]),
                LValue::Proj(inner, idx) => match walk(globals, inner, indices)? {
                    PValue::Tuple(items) => {
                        let len = items.len();
                        items.get_mut(*idx).ok_or_else(|| oob(*idx, len))
                    }
                    other => Err(type_error("tuple", other)),
                },
                LValue::Index(inner, idx_expr) => {
                    let idx = indices(idx_expr)?;
                    match walk(globals, inner, indices)? {
                        PValue::Array(items) => {
                            let len = items.len();
                            items.get_mut(idx).ok_or_else(|| oob(idx, len))
                        }
                        other => Err(type_error("array", other)),
                    }
                }
            }
        }
        // Pre-evaluate indices against an immutable snapshot by collecting
        // them in a first pass.
        let mut collected: Vec<usize> = Vec::new();
        collect_indices(self, place, driver, &mut collected)?;
        let mut iter = collected.into_iter();
        walk(&mut self.globals, place, &mut move |_| {
            Ok(iter.next().expect("index pre-collected"))
        })
    }
}

fn collect_indices(
    cx: &mut Interp,
    place: &LValue,
    driver: &mut dyn ChoiceDriver,
    out: &mut Vec<usize>,
) -> Result<(), SemanticsError> {
    match place {
        LValue::Var(_) => Ok(()),
        LValue::Proj(inner, _) => collect_indices(cx, inner, driver, out),
        LValue::Index(inner, idx) => {
            collect_indices(cx, inner, driver, out)?;
            let i = cx.eval_index(idx, driver)?;
            out.push(i);
            Ok(())
        }
    }
}

fn scalar_binop(op: BinOp, a: &Rat, b: &Rat) -> Result<Rat, SemanticsError> {
    Ok(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a.checked_div(b).ok_or(SemanticsError::DivisionByZero)?,
        BinOp::Eq => Rat::from_bool(a == b),
        BinOp::Ne => Rat::from_bool(a != b),
        BinOp::Lt => Rat::from_bool(a < b),
        BinOp::Le => Rat::from_bool(a <= b),
        BinOp::Gt => Rat::from_bool(a > b),
        BinOp::Ge => Rat::from_bool(a >= b),
        BinOp::And => Rat::from_bool(a.is_true() && b.is_true()),
        BinOp::Or => Rat::from_bool(a.is_true() || b.is_true()),
    })
}

fn type_error(expected: &str, got: &PValue) -> SemanticsError {
    SemanticsError::SymbolicValueInConcreteContext(format!(
        "psi-core type error: expected {expected}, got {got:?}"
    ))
}

fn type_error_err(expected: &str) -> SemanticsError {
    SemanticsError::SymbolicValueInConcreteContext(format!(
        "psi-core type error: expected {expected}"
    ))
}

fn oob(idx: usize, len: usize) -> SemanticsError {
    SemanticsError::SymbolicValueInConcreteContext(format!(
        "psi-core index {idx} out of bounds (len {len})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn c(v: i64) -> PExpr {
        PExpr::Const(Rat::int(v))
    }

    #[test]
    fn deterministic_program_runs() {
        // x = 2; y = x * 3 + 1; return y
        let p = PProgram {
            global_names: vec!["x".into(), "y".into()],
            init: vec![c(2), c(0)],
            body: vec![PStmt::Assign(
                LValue::Var(1),
                PExpr::Bin(
                    BinOp::Add,
                    Box::new(PExpr::Bin(
                        BinOp::Mul,
                        Box::new(PExpr::Var(0)),
                        Box::new(c(3)),
                    )),
                    Box::new(c(1)),
                ),
            )],
            result: PExpr::Var(1),
        };
        let post = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(post.support, vec![(PValue::int(7), Rat::one())]);
    }

    #[test]
    fn flip_posterior() {
        // return flip(1/4)
        let p = PProgram {
            global_names: vec![],
            init: vec![],
            body: vec![],
            result: PExpr::Flip(Box::new(PExpr::Const(Rat::ratio(1, 4)))),
        };
        let post = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(post.probability_true(), Rat::ratio(1, 4));
    }

    #[test]
    fn observe_renormalizes() {
        // x = uniformInt(1,3); observe(x != 2); return x == 3
        let p = PProgram {
            global_names: vec!["x".into()],
            init: vec![PExpr::UniformInt(Box::new(c(1)), Box::new(c(3)))],
            body: vec![PStmt::Observe(PExpr::Bin(
                BinOp::Ne,
                Box::new(PExpr::Var(0)),
                Box::new(c(2)),
            ))],
            result: PExpr::Bin(BinOp::Eq, Box::new(PExpr::Var(0)), Box::new(c(3))),
        };
        let post = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(post.discarded, Rat::ratio(1, 3));
        assert_eq!(post.probability_true(), Rat::ratio(1, 2));
    }

    #[test]
    fn while_loop_and_arrays() {
        // q = []; i = 0; while i < 4 { q.push_back(i); i = i + 1 }
        // q.pop_front(); return len(q) + q[0]
        let p = PProgram {
            global_names: vec!["q".into(), "i".into()],
            init: vec![PExpr::ArrayLit(vec![]), c(0)],
            body: vec![
                PStmt::While(
                    PExpr::Bin(BinOp::Lt, Box::new(PExpr::Var(1)), Box::new(c(4))),
                    vec![
                        PStmt::PushBack(LValue::Var(0), PExpr::Var(1)),
                        PStmt::Assign(
                            LValue::Var(1),
                            PExpr::Bin(BinOp::Add, Box::new(PExpr::Var(1)), Box::new(c(1))),
                        ),
                    ],
                ),
                PStmt::PopFront {
                    dest: None,
                    queue: LValue::Var(0),
                },
            ],
            result: PExpr::Bin(
                BinOp::Add,
                Box::new(PExpr::Len(Box::new(PExpr::Var(0)))),
                Box::new(PExpr::Index(Box::new(PExpr::Var(0)), Box::new(c(0)))),
            ),
        };
        let post = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(post.support, vec![(PValue::int(4), Rat::one())]); // 3 + 1
    }

    #[test]
    fn nested_lvalues() {
        // t = (0, [1, 2]); t.1[0] = 9; return t.1[0]
        let p = PProgram {
            global_names: vec!["t".into()],
            init: vec![PExpr::Tuple(vec![c(0), PExpr::ArrayLit(vec![c(1), c(2)])])],
            body: vec![PStmt::Assign(
                LValue::Index(Box::new(LValue::Proj(Box::new(LValue::Var(0)), 1)), c(0)),
                c(9),
            )],
            result: PExpr::Index(
                Box::new(PExpr::Proj(Box::new(PExpr::Var(0)), 1)),
                Box::new(c(0)),
            ),
        };
        let post = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(post.support, vec![(PValue::int(9), Rat::one())]);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = PProgram {
            global_names: vec![],
            init: vec![],
            body: vec![PStmt::While(c(1), vec![])],
            result: c(0),
        };
        assert!(infer_exact(&p, 1000).is_err());
    }
}
