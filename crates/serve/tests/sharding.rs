//! Shard-routing determinism for `--replicas N` mode.
//!
//! The router hashes the *canonical pretty-printed program* onto a
//! consistent-hash ring, so: the same program lands on the same replica
//! no matter the request order; textually different spellings of one
//! program land together; the mapping survives a full router restart; and
//! — the point of the whole design — per-replica cache metrics prove no
//! program is ever compiled on two replicas.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use bayonet_serve::{parse_json, start, Json, ServerConfig};

mod common;
use common::{metric_value, run_body};

/// Distinct programs, parameterized by flip weight.
fn program(k: u64) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> send, B -> recv }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def send(pkt, pt) {{ if flip(1/{k}) {{ fwd(1); }} else {{ drop; }} }}
        def recv(pkt, pt) state got(0) {{ got = 1; drop; }}
    "#
    )
}

/// A router config with `n` out-of-process replicas. The replica binary
/// is `bayonet-served` — a test harness `main` cannot host
/// `replica_entry`, so the fleet re-execs the real server binary.
fn router_config(n: usize) -> ServerConfig {
    ServerConfig {
        replicas: n,
        replica_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_bayonet-served"))),
        threads: 1,
        ..common::test_config()
    }
}

/// The replica index a proxied response came from.
fn replica_of(head: &str) -> usize {
    head.lines()
        .find_map(|l| l.strip_prefix("X-Bayonet-Replica: "))
        .unwrap_or_else(|| panic!("response head has no X-Bayonet-Replica:\n{head}"))
        .trim()
        .parse()
        .expect("numeric replica index")
}

/// Runs `program(k)` through the router; returns `(replica, payload)`.
fn route_run(addr: SocketAddr, k: u64) -> (usize, String) {
    let (status, head, payload) = common::http(addr, "POST", "/v1/run", &run_body(&program(k)));
    assert_eq!(status, 200, "{payload}");
    (replica_of(&head), payload)
}

/// The replica table from `GET /v1/replicas`.
fn replica_addrs(addr: SocketAddr) -> Vec<SocketAddr> {
    let (status, _, payload) = common::http(addr, "GET", "/v1/replicas", "");
    assert_eq!(status, 200, "{payload}");
    let doc = parse_json(&payload).expect("replicas json");
    let replicas = doc.get("replicas").expect("replicas array");
    let mut addrs = Vec::new();
    while let Some(entry) = replicas.get_index(addrs.len()) {
        let addr = entry
            .get("addr")
            .and_then(Json::as_str)
            .expect("replica addr");
        addrs.push(addr.parse().expect("parseable addr"));
    }
    addrs
}

#[test]
fn same_program_same_replica_and_caches_stay_disjoint() {
    let handle = start(router_config(3)).expect("start router");
    let addr = handle.addr();
    let programs: Vec<u64> = (2..=7).collect();

    // The router knows its fleet.
    let fleet = replica_addrs(addr);
    assert_eq!(fleet.len(), 3, "{fleet:?}");

    // Pass 1, forward order: record each program's home replica.
    let mut homes = Vec::new();
    for &k in &programs {
        homes.push(route_run(addr, k).0);
    }
    // Pass 2, reverse order: identical mapping — routing is a pure
    // function of the program, not of arrival order or warm caches.
    for (&k, &home) in programs.iter().rev().zip(homes.iter().rev()) {
        let (replica, payload) = route_run(addr, k);
        assert_eq!(replica, home, "program {k} moved replicas: {payload}");
    }

    // A reformatted spelling of program 2 — extra blank lines and
    // trailing spaces — is the *same* canonical program, so it must land
    // on program 2's home replica.
    let reformatted = program(2).replace(";", ";\n\n   ");
    let (status, head, payload) = common::http(addr, "POST", "/v1/run", &run_body(&reformatted));
    assert_eq!(status, 200, "{payload}");
    assert_eq!(
        replica_of(&head),
        homes[0],
        "reformatting split one program across replicas"
    );

    // The disjointness proof, from each replica's own mouth: every
    // program compiled (missed) exactly once fleet-wide — on its home
    // replica — and pass 2 was all cache hits. A program compiled on two
    // replicas would push total misses past the program count.
    let mut total_misses = 0.0;
    let mut total_hits = 0.0;
    for (i, replica_addr) in fleet.iter().enumerate() {
        let text = common::metrics(*replica_addr);
        let misses = metric_value(&text, "bayonet_cache_misses_total");
        let hits = metric_value(&text, "bayonet_cache_hits_total");
        let owned = homes.iter().filter(|&&h| h == i).count() as f64;
        assert_eq!(
            misses, owned,
            "replica {i} compiled {misses} programs but owns {owned}:\n{text}"
        );
        total_misses += misses;
        total_hits += hits;
    }
    assert_eq!(total_misses, programs.len() as f64, "duplicate compiles");
    // Pass 2 (6 repeats) + the reformatted spelling all hit.
    assert_eq!(total_hits, programs.len() as f64 + 1.0, "cold repeats");

    // The router's own metrics account for every proxied request (a
    // replica that owned no program simply has no line).
    let router_metrics = common::metrics(addr);
    let routed: f64 = (0..3)
        .map(|i| {
            let prefix = format!("bayonet_router_requests_total{{replica=\"{i}\"}} ");
            router_metrics
                .lines()
                .find_map(|l| l.strip_prefix(&prefix))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0.0)
        })
        .sum();
    assert_eq!(
        routed,
        2.0 * programs.len() as f64 + 1.0,
        "{router_metrics}"
    );

    handle.shutdown();
}

#[test]
fn routing_survives_a_router_restart() {
    let programs: Vec<u64> = (2..=6).collect();

    let first = start(router_config(2)).expect("start first router");
    let mut homes = Vec::new();
    for &k in &programs {
        homes.push(route_run(first.addr(), k).0);
    }
    first.shutdown();

    // A brand-new fleet: new processes, new ports, same replica count.
    // The ring hashes replica *indices*, so the mapping is reproducible
    // across restarts — a warm persistent cache shard stays correct.
    let second = start(router_config(2)).expect("start second router");
    for (&k, &home) in programs.iter().zip(homes.iter()) {
        let (replica, payload) = route_run(second.addr(), k);
        assert_eq!(
            replica, home,
            "program {k} changed replicas across restart: {payload}"
        );
    }
    let fleet = replica_addrs(second.addr());
    second.shutdown();

    // Sanity: with more than one replica the programs don't all pile
    // onto one shard (deterministic given the ring, so never flaky).
    let distinct: std::collections::BTreeSet<usize> = homes.into_iter().collect();
    assert!(distinct.len() > 1, "all programs routed to one replica");

    // Replicas die with the router: shutdown reaps the fleet, so the old
    // replica ports must refuse connections — no orphaned processes.
    for replica_addr in fleet {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match std::net::TcpStream::connect(replica_addr) {
                Err(_) => break,
                Ok(_) if std::time::Instant::now() >= deadline => {
                    panic!("replica on {replica_addr} outlived the router")
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }
}
