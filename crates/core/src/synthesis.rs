//! Parameter synthesis (paper §2.3).
//!
//! With symbolic configuration parameters, the exact engine returns a query
//! value per *cell* of parameter space. Synthesis picks the cell optimizing
//! the query and extracts a concrete parameter assignment from it — the
//! step the paper delegates to Mathematica or Z3, performed here by the
//! built-in Fourier–Motzkin witness extractor.

use bayonet_exact::{CellAnswer, QueryResult};
use bayonet_num::{Rat, Sign};
use bayonet_symbolic::{feasibility, Assignment, Feasibility, LinExpr};

use crate::error::Error;
use crate::network::Network;

/// Optimization direction for [`synthesize`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Pick the cell with the smallest query value (e.g. minimize the
    /// probability of congestion).
    Minimize,
    /// Pick the cell with the largest query value.
    Maximize,
}

/// The outcome of parameter synthesis.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The full piecewise result the choice was made from.
    pub result: QueryResult,
    /// Index of the optimal cell within `result.cells`.
    pub best_cell: usize,
    /// The optimal query value.
    pub value: Rat,
    /// A concrete parameter assignment achieving it.
    pub assignment: Assignment,
    /// Human-readable rendering of the optimal cell's constraint.
    pub constraint: String,
}

/// Options for [`synthesize_with`].
#[derive(Clone, Copy, Debug)]
pub struct SynthesisOptions {
    /// Optimization direction.
    pub objective: Objective,
    /// Require every parameter to be strictly positive in the witness
    /// (natural for link costs; plain cell witnesses may sit at 0).
    pub positive_params: bool,
}

/// Runs exact inference with symbolic parameters and synthesizes parameter
/// values optimizing query `query_idx`.
///
/// # Errors
///
/// Fails if inference fails, the query value is undefined or symbolic in
/// every cell, or `query_idx` is out of range.
///
/// # Examples
///
/// ```no_run
/// use bayonet::{scenarios, synthesize, Objective, Sched};
///
/// let network = scenarios::congestion_example_symbolic(Sched::Uniform)?;
/// let synthesis = synthesize(&network, 0, Objective::Minimize)?;
/// // Minimal congestion on the ECMP-balanced cell:
/// assert!(synthesis.constraint.contains("=="));
/// # Ok::<(), bayonet::Error>(())
/// ```
pub fn synthesize(
    network: &Network,
    query_idx: usize,
    objective: Objective,
) -> Result<Synthesis, Error> {
    synthesize_with(
        network,
        query_idx,
        SynthesisOptions {
            objective,
            positive_params: true,
        },
    )
}

/// Like [`synthesize`], with explicit options.
///
/// # Errors
///
/// As for [`synthesize`].
pub fn synthesize_with(
    network: &Network,
    query_idx: usize,
    opts: SynthesisOptions,
) -> Result<Synthesis, Error> {
    let objective = opts.objective;
    let report = network.exact()?;
    let result = report
        .results
        .get(query_idx)
        .ok_or_else(|| Error::Usage(format!("query index {query_idx} out of range")))?
        .clone();

    let defined: Vec<(usize, &CellAnswer, Rat)> = result
        .cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let v = c.value.as_ref()?.as_rat()?.clone();
            Some((i, c, v))
        })
        .collect();
    if defined.is_empty() {
        return Err(Error::Usage(
            "no cell has a defined rational value to optimize".into(),
        ));
    }
    let (best_cell, cell, value) = match objective {
        Objective::Minimize => defined
            .into_iter()
            .min_by(|a, b| a.2.cmp(&b.2))
            .expect("nonempty"),
        Objective::Maximize => defined
            .into_iter()
            .max_by(|a, b| a.2.cmp(&b.2))
            .expect("nonempty"),
    };
    let constraint = cell.constraint.clone();
    let assignment = if opts.positive_params {
        positive_witness(network, cell).unwrap_or_else(|| cell.witness.clone())
    } else {
        cell.witness.clone()
    };
    Ok(Synthesis {
        best_cell,
        value,
        assignment,
        constraint,
        result,
    })
}

/// Extends the cell's guard with `p > 0` for every declared parameter and
/// extracts a witness, if that stays feasible.
fn positive_witness(network: &Network, cell: &CellAnswer) -> Option<Assignment> {
    let params = &network.model().params;
    let mut guard = cell.guard.clone();
    for pid in params.iter() {
        guard = guard.assume_sign(&LinExpr::param(pid), Sign::Plus)?;
    }
    match feasibility(&guard) {
        Feasibility::Sat(mut w) => {
            // Parameters not mentioned in any atom default to 1, not 0.
            for pid in params.iter() {
                w.entry(pid).or_insert_with(Rat::one);
            }
            Some(w)
        }
        Feasibility::Unsat => None,
    }
}
