//! Single-trace simulation with event recording.
//!
//! The paper positions Bayonet against network simulators (§6): a simulator
//! produces *one* randomized run at a time, with no statistical guarantees.
//! This module provides exactly that mode — sample one schedule and one set
//! of random choices, and record every global step as a readable event —
//! which is invaluable for debugging network programs before running
//! inference on them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bayonet_net::{deliver, run_handler, Action, GlobalConfig, HandlerOutcome, Model, Scheduler};

use crate::driver::{sample_initial, SampleDriver};
use crate::engine::{ApproxError, ApproxOptions};

/// One recorded simulation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A node ran its handler on the head of its input queue.
    Ran {
        /// Global step index (1-based).
        step: u64,
        /// The node that ran.
        node: usize,
        /// How the handler ended.
        outcome: HandlerOutcome,
        /// Input/output queue lengths after the run.
        queues: (usize, usize),
    },
    /// A packet was delivered across a link.
    Delivered {
        /// Global step index (1-based).
        step: u64,
        /// Sending node.
        from: usize,
        /// Departure port.
        port: u32,
        /// Receiving node.
        to: usize,
        /// `false` when the destination queue was full and the packet was
        /// dropped (congestion!).
        accepted: bool,
    },
}

/// A recorded simulation: the event log and the terminal configuration
/// (`None` when the trace was discarded by a failed observation).
#[derive(Debug)]
pub struct Simulation {
    /// Events in execution order.
    pub events: Vec<SimEvent>,
    /// The terminal configuration, unless an observation failed.
    pub terminal: Option<GlobalConfig>,
}

impl Simulation {
    /// Renders the event log with node names from `model`.
    pub fn render(&self, model: &Model) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            match e {
                SimEvent::Ran {
                    step,
                    node,
                    outcome,
                    queues,
                } => {
                    let suffix = match outcome {
                        HandlerOutcome::Completed => "",
                        HandlerOutcome::AssertFailed => "  ** assert failed (⊥)",
                        HandlerOutcome::ObserveFailed => "  ** observation failed",
                    };
                    let _ = writeln!(
                        out,
                        "{step:>4}  Run  {:<6} (in={} out={}){suffix}",
                        model.node_names[*node], queues.0, queues.1
                    );
                }
                SimEvent::Delivered {
                    step,
                    from,
                    port,
                    to,
                    accepted,
                } => {
                    let _ = writeln!(
                        out,
                        "{step:>4}  Fwd  {:<6} --pt{}--> {:<6}{}",
                        model.node_names[*from],
                        port,
                        model.node_names[*to],
                        if *accepted {
                            ""
                        } else {
                            "  ** DROPPED (queue full)"
                        }
                    );
                }
            }
        }
        match &self.terminal {
            Some(cfg) if cfg.has_error() => {
                let _ = writeln!(out, "      terminal (error state ⊥)");
            }
            Some(_) => {
                let _ = writeln!(out, "      terminal");
            }
            None => {
                let _ = writeln!(out, "      trace discarded by a failed observation");
            }
        }
        out
    }
}

/// Simulates one complete run, recording every event.
///
/// # Errors
///
/// Propagates semantic errors; reports non-termination past the step bound.
pub fn simulate(
    model: &Model,
    scheduler: &dyn Scheduler,
    opts: &ApproxOptions,
) -> Result<Simulation, ApproxError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut cfg = sample_initial(model, &mut rng)?;
    let mut events = Vec::new();
    for step in 1..=opts.max_global_steps {
        if cfg.is_terminal() {
            return Ok(Simulation {
                events,
                terminal: Some(cfg),
            });
        }
        let enabled = cfg.enabled_actions();
        let dist = scheduler.distribution(cfg.sched_state, &enabled, model.num_nodes());
        let mut u = rng.gen::<f64>();
        let mut chosen = &dist[dist.len() - 1];
        for entry in &dist {
            let p = entry.1.to_f64();
            if u < p {
                chosen = entry;
                break;
            }
            u -= p;
        }
        let (action, _, sched_next) = chosen;
        cfg.sched_state = *sched_next;
        match *action {
            Action::Fwd(i) => {
                let port = cfg.nodes[i].q_out.head().expect("Fwd enabled").1;
                let (to, _) = model
                    .link_dest(i, port)
                    .ok_or(bayonet_net::SemanticsError::NoLinkOnPort { node: i, port })?;
                let accepted = deliver(model, &mut cfg, i)?;
                events.push(SimEvent::Delivered {
                    step,
                    from: i,
                    port,
                    to,
                    accepted,
                });
            }
            Action::Run(i) => {
                let mut driver = SampleDriver::new(&mut rng);
                let outcome = run_handler(model, i, &mut cfg.nodes[i], &mut driver)?;
                if outcome == HandlerOutcome::AssertFailed {
                    cfg.nodes[i].error = true;
                }
                events.push(SimEvent::Ran {
                    step,
                    node: i,
                    outcome,
                    queues: (cfg.nodes[i].q_in.len(), cfg.nodes[i].q_out.len()),
                });
                if outcome == HandlerOutcome::ObserveFailed {
                    return Ok(Simulation {
                        events,
                        terminal: None,
                    });
                }
            }
        }
    }
    if cfg.is_terminal() {
        Ok(Simulation {
            events,
            terminal: Some(cfg),
        })
    } else {
        Err(ApproxError::Unterminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayonet_lang::parse;
    use bayonet_net::{compile, scheduler_for};

    fn model(src: &str) -> Model {
        compile(&parse(src).unwrap()).unwrap()
    }

    const SRC: &str = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def send(pkt, pt) { fwd(1); }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
    "#;

    #[test]
    fn deterministic_network_records_expected_events() {
        let m = model(SRC);
        let sim = simulate(&m, &*scheduler_for(&m), &ApproxOptions::default()).unwrap();
        // Run A, Fwd A, Run B.
        assert_eq!(sim.events.len(), 3);
        assert!(matches!(sim.events[0], SimEvent::Ran { node: 0, .. }));
        assert!(matches!(
            sim.events[1],
            SimEvent::Delivered {
                from: 0,
                to: 1,
                accepted: true,
                ..
            }
        ));
        assert!(matches!(sim.events[2], SimEvent::Ran { node: 1, .. }));
        let terminal = sim.terminal.as_ref().unwrap();
        assert!(terminal.is_terminal());
        assert_eq!(terminal.nodes[1].state[0], bayonet_net::Val::int(1));
        let text = sim.render(&m);
        assert!(text.contains("Run  A"));
        assert!(text.contains("A      --pt1--> B"));
        assert!(text.contains("terminal"));
    }

    #[test]
    fn observation_failure_ends_the_trace() {
        let src = SRC.replace("got = 1;", "got = 1; observe(0);");
        let m = model(&src);
        let sim = simulate(&m, &*scheduler_for(&m), &ApproxOptions::default()).unwrap();
        assert!(sim.terminal.is_none());
        assert!(sim.render(&m).contains("discarded"));
    }

    #[test]
    fn congestion_shows_up_as_a_dropped_delivery() {
        let src = r#"
            packet_fields { dst }
            queue_capacity 1;
            scheduler roundrobin;
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> send, B -> recv }
            init { packet -> (A, pt1); }
            query probability(got@B <= 2);
            def send(pkt, pt) state n(0) {
                if n < 2 { n = n + 1; fwd(1); if n < 2 { new; } }
                else { drop; }
            }
            def recv(pkt, pt) state got(0) { got = got + 1; drop; }
        "#;
        let m = model(src);
        let sim = simulate(&m, &*scheduler_for(&m), &ApproxOptions::default()).unwrap();
        // Under the det. scheduler A runs twice first, but its own output
        // queue has capacity 1: the second fwd drops inside the handler.
        // Either way the log renders and the run terminates.
        assert!(sim.terminal.is_some());
    }
}
