//! In-process persistence tests: a server restarted on the same
//! `--cache-dir` must serve byte-identical cached results without
//! recomputing, and corrupt segment records must be skipped (counted,
//! never fatal).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig, SEGMENT_FILE};

mod common;

const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

/// A fresh, unique cache directory under the system temp dir.
fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bayonet-persist-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config_with_dir(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..common::test_config()
    }
}

fn request(addr: SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!("{head}Content-Length: {}\r\n\r\n{body}", body.len());
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

fn post_run(addr: SocketAddr, source: &str) -> (u16, String) {
    let body = Json::obj(vec![("source", Json::Str(source.into()))]).to_string();
    request(addr, "POST /v1/run HTTP/1.1\r\nHost: test\r\n", &body)
}

fn metrics(addr: SocketAddr) -> String {
    let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n", "");
    assert_eq!(status, 200, "{body}");
    body
}

/// Value of a plain `name value` Prometheus line; panics when absent.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not an integer: {e}"))
}

#[test]
fn warm_reload_serves_identical_bytes_without_recomputation() {
    let dir = unique_dir("warm");

    // First life: compute once, which must hit the engine and then be
    // persisted. Graceful shutdown flushes the write-behind queue.
    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, first) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{first}");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);
    handle.shutdown();

    let segment = dir.join(SEGMENT_FILE);
    assert!(segment.is_file(), "no segment at {}", segment.display());

    // Second life: the result comes back from disk — same bytes, zero
    // engine work, and the hit is visible in the metrics.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_corrupt_total"), 0);

    let (status, second) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second, "persisted result must be byte-identical");

    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_is_skipped_and_counted() {
    let dir = unique_dir("flip");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Flip one byte inside the record payload (header is 8 bytes, each
    // record carries an 8-byte frame and an 8-byte key before the body).
    let segment = dir.join(SEGMENT_FILE);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 32, "segment too small: {}", bytes.len());
    bytes[30] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("rewrite segment");

    // The damaged record is skipped — not loaded, not fatal — and the
    // server recomputes the same answer from scratch.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);

    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed, "recompute must match the original");
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 0);
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_the_server_recovers() {
    let dir = unique_dir("torn");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Chop a few bytes off the tail, as a crash mid-append would.
    let segment = dir.join(SEGMENT_FILE);
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 3]).expect("truncate");

    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);

    // The torn record was discarded and the segment re-framed: a new
    // result appends cleanly and survives the *next* restart.
    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed);
    handle.shutdown();

    let handle = start(config_with_dir(&dir)).expect("third start");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    let (status, replayed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(body, replayed);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistence_off_exposes_no_persist_metrics_and_writes_nothing() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    let text = metrics(handle.addr());
    assert!(!text.contains("bayonet_cache_persist_"), "{text}");
    // The always-on eviction counter is still exported.
    assert_eq!(metric(&text, "bayonet_cache_evictions_total"), 0);
    handle.shutdown();
}
