//! Shared helpers for the exact-engine integration suites.
//!
//! The whole suite can be re-run under the knowledge-compilation backend by
//! setting `BAYONET_TEST_ENGINE=bdd` (the CI test matrix has a leg that does
//! exactly that). Both backends promise bit-identical posteriors, so every
//! assertion on terminals, discarded mass, and step counts must hold
//! unchanged; only `merge_hits` is engine-specific.

use bayonet_exact::{EngineKind, ExactOptions};

/// The engine this test process runs under: `BAYONET_TEST_ENGINE=bdd`
/// selects the diagram backend, `auto` the planner-routed backend (the
/// cost model picks per model, deterministically), anything else (or
/// unset) the enumeration default. Unknown values are an error — a typo
/// silently falling back to the default would quietly skip the whole
/// matrix leg.
pub fn test_engine() -> EngineKind {
    match std::env::var("BAYONET_TEST_ENGINE") {
        Ok(v) if v == "bdd" => EngineKind::Bdd,
        Ok(v) if v == "auto" => EngineKind::Auto,
        Ok(v) if v == "enum" || v.is_empty() => EngineKind::Enum,
        Ok(v) => panic!("BAYONET_TEST_ENGINE must be `enum`, `bdd`, or `auto`, got `{v}`"),
        Err(_) => EngineKind::Enum,
    }
}

/// Whether this test process runs the model-optimization pass pipeline:
/// `BAYONET_TEST_PASSES=off` disables it, `on` (or unset) keeps the
/// default. The CI matrix runs both legs — posteriors must be identical.
/// Unknown values are an error for the same reason as [`test_engine`].
pub fn test_passes() -> bool {
    match std::env::var("BAYONET_TEST_PASSES") {
        Ok(v) if v == "off" => false,
        Ok(v) if v == "on" || v.is_empty() => true,
        Ok(v) => panic!("BAYONET_TEST_PASSES must be `on` or `off`, got `{v}`"),
        Err(_) => true,
    }
}

/// [`ExactOptions::default`] with the suite engine and pass toggle applied.
/// Use this (or struct-update from it) instead of `ExactOptions::default()`
/// so the `BAYONET_TEST_ENGINE=bdd` and `BAYONET_TEST_PASSES=off` CI legs
/// actually exercise their configurations.
#[allow(dead_code)]
pub fn test_options() -> ExactOptions {
    ExactOptions {
        engine: test_engine(),
        passes: test_passes(),
        ..ExactOptions::default()
    }
}
