//! End-to-end tests of the `bayonet` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bay_file(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/bay");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn grid_file(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/grids");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bayonet"))
        .args(args)
        .output()
        .expect("spawn bayonet CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_accepts_valid_files() {
    let (ok, stdout, _) = cli(&["check", &bay_file("gossip_k4.bay")]);
    assert!(ok);
    assert!(stdout.contains("ok: 0 warning(s)"), "{stdout}");
}

#[test]
fn run_exact_gossip() {
    let (ok, stdout, _) = cli(&["run", &bay_file("gossip_k4.bay")]);
    assert!(ok);
    assert!(stdout.contains("94/27"), "{stdout}");
}

#[test]
fn run_with_bind_and_smc() {
    let (ok, stdout, _) = cli(&[
        "run",
        &bay_file("lossy_link.bay"),
        "--bind",
        "P_LOSS=1/2",
        "--engine",
        "smc",
        "--particles",
        "500",
        "--seed",
        "9",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("got@H1"), "{stdout}");
}

#[test]
fn run_unbound_parameter_fails_cleanly() {
    let (ok, _, stderr) = cli(&["run", &bay_file("lossy_link.bay"), "--engine", "smc"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn synthesize_prints_the_figure3_table() {
    let (ok, stdout, _) = cli(&["synthesize", &bay_file("ecmp_costs.bay")]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("COST_01 - COST_02 - COST_21 == 0"),
        "{stdout}"
    );
    assert!(stdout.contains("30378810105265/67706637778944"), "{stdout}");
}

#[test]
fn codegen_targets() {
    let (ok, psi, _) = cli(&["codegen", &bay_file("gossip_k4.bay"), "--target", "psi"]);
    assert!(ok);
    assert!(psi.contains("dat Network"), "{psi}");
    let (ok, webppl, _) = cli(&["codegen", &bay_file("gossip_k4.bay"), "--target", "webppl"]);
    assert!(ok);
    assert!(webppl.contains("Infer({method: 'SMC'"), "{webppl}");
}

#[test]
fn pretty_is_reparseable_by_check() {
    let (ok, pretty, _) = cli(&["pretty", &bay_file("ecmp_costs.bay")]);
    assert!(ok);
    // Feed the pretty output back through the front-end.
    let program = bayonet::parse(&pretty).expect("pretty output parses");
    assert!(bayonet::check(&program).is_ok());
}

#[test]
fn simulate_renders_a_log() {
    let (ok, stdout, _) = cli(&[
        "run",
        &bay_file("gossip_k4.bay"),
        "--engine",
        "simulate",
        "--seed",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("Run  S0"), "{stdout}");
    assert!(stdout.contains("terminal"), "{stdout}");
}

#[test]
fn unknown_flags_and_commands_error() {
    let (ok, _, stderr) = cli(&["frobnicate", &bay_file("gossip_k4.bay")]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--engine", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"), "{stderr}");
}

#[test]
fn rejects_unknown_flags() {
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
    // Flags from other subcommands are unknown here too.
    let (ok, _, stderr) = cli(&["check", &bay_file("gossip_k4.bay"), "--engine", "exact"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--engine`"), "{stderr}");
    let (ok, _, stderr) = cli(&[
        "synthesize",
        &bay_file("ecmp_costs.bay"),
        "--particles",
        "9",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--particles`"), "{stderr}");
}

#[test]
fn rejects_missing_flag_values() {
    // Value missing at the end of the argument list.
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--engine"]);
    assert!(!ok);
    assert!(stderr.contains("--engine needs a value"), "{stderr}");
    // Another flag where the value should be.
    let (ok, _, stderr) = cli(&[
        "run",
        &bay_file("gossip_k4.bay"),
        "--seed",
        "--particles",
        "10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--seed needs a value"), "{stderr}");
}

#[test]
fn rejects_stray_positional_arguments() {
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "extra.bay"]);
    assert!(!ok);
    assert!(
        stderr.contains("unexpected argument `extra.bay`"),
        "{stderr}"
    );
}

#[test]
fn run_stats_flag_reports_to_stderr() {
    let (ok, stdout, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--stats"]);
    assert!(ok, "{stderr}");
    // stdout is unchanged by --stats.
    assert!(stdout.contains("94/27"), "{stdout}");
    assert!(!stdout.contains("stats:"), "{stdout}");
    assert!(stderr.contains("states expanded"), "{stderr}");
    assert!(stderr.contains("merged"), "{stderr}");
    assert!(stderr.contains("terminal mass"), "{stderr}");
    assert!(stderr.contains("ms wall"), "{stderr}");
}

#[test]
fn serve_rejects_bad_flags() {
    let (ok, _, stderr) = cli(&["serve", "--port", "80"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--port`"), "{stderr}");
    let (ok, _, stderr) = cli(&["serve", "--threads"]);
    assert!(!ok);
    assert!(stderr.contains("--threads needs a value"), "{stderr}");
    let (ok, _, stderr) = cli(&["serve", "--threads", "banana"]);
    assert!(!ok);
    assert!(stderr.contains("bad --threads value"), "{stderr}");
}

#[test]
fn run_auto_engine_routes_and_explains() {
    // gossip_k4 routes to the BDD backend; the posterior matches the
    // explicit run bit for bit and the plan goes to stderr only.
    let (ok, stdout, stderr) = cli(&[
        "run",
        &bay_file("gossip_k4.bay"),
        "--engine",
        "auto",
        "--explain-plan",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("94/27"), "{stdout}");
    assert!(!stdout.contains("plan:"), "{stdout}");
    assert!(stderr.contains("plan: engine=bdd"), "{stderr}");
    assert!(stderr.contains("est_cost="), "{stderr}");
    assert!(stderr.contains("shared_program_nodes="), "{stderr}");

    // --explain-plan also works with an explicit engine and never changes
    // what actually runs.
    let (ok, stdout, stderr) = cli(&[
        "run",
        &bay_file("gossip_k4.bay"),
        "--engine",
        "enum",
        "--explain-plan",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("94/27"), "{stdout}");
    assert!(stderr.contains("plan: engine=bdd"), "{stderr}");
}

#[test]
fn run_sweep_streams_one_frame_per_grid_point() {
    let (ok, stdout, stderr) = cli(&[
        "run",
        &bay_file("gossip_k4_sweep.bay"),
        "--sweep",
        &grid_file("gossip_k.json"),
    ]);
    assert!(ok, "{stderr}");
    let frames: Vec<&str> = stdout.lines().collect();
    assert_eq!(frames.len(), 4, "{stdout}");
    for (i, frame) in frames.iter().enumerate() {
        assert!(
            frame.contains(&format!("\"index\":{i},\"status\":200")),
            "frame {i}: {frame}"
        );
        assert!(
            frame.contains(&format!("\"point\":{{\"K\":\"{}\"}}", i + 1)),
            "frame {i}: {frame}"
        );
    }
    // K = 1: the seed node always infects itself, so the probability is 1,
    // and the query handlers never read K, so the route is symbolic.
    assert!(
        frames[0].contains("1 \\u{2248} 1.0000") || frames[0].contains("1 ≈ 1.0000"),
        "{}",
        frames[0]
    );
    assert!(
        frames[0].contains("\"route\":\"symbolic\""),
        "{}",
        frames[0]
    );
}

#[test]
fn run_sweep_rejects_incompatible_flags_and_bad_grids() {
    let source = bay_file("gossip_k4_sweep.bay");
    let grid = grid_file("gossip_k.json");
    let (ok, _, stderr) = cli(&["run", &source, "--sweep", &grid, "--batch"]);
    assert!(!ok);
    assert!(
        stderr.contains("--batch cannot be combined with --sweep"),
        "{stderr}"
    );
    let (ok, _, stderr) = cli(&["run", &source, "--sweep", &grid, "--stats"]);
    assert!(!ok);
    assert!(
        stderr.contains("--stats cannot be combined with --sweep"),
        "{stderr}"
    );
    let (ok, _, stderr) = cli(&["run", &source, "--sweep", "/no/such/grid.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read sweep grid"), "{stderr}");
    // A grid naming an undeclared parameter surfaces the structured 400.
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--sweep", &grid]);
    assert!(!ok);
    assert!(stderr.contains("unknown swept parameter `K`"), "{stderr}");
}
