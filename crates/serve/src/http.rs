//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The service needs exactly one shape of exchange: read one request with
//! an optional `Content-Length` body, write one response, close. No
//! keep-alive, no chunked encoding, no TLS. Limits on header and body sizes
//! guard against hostile or broken clients.

use std::io::{self, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Maximum accepted size of a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (uppercase, e.g. `GET`).
    pub method: String,
    /// Request path (no normalization; query strings are kept verbatim).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, RequestError> {
        std::str::from_utf8(&self.body).map_err(|_| RequestError::Malformed("body is not UTF-8"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Transport error (client went away, etc.).
    Io(io::Error),
    /// The request violates the subset of HTTP this server speaks.
    Malformed(&'static str),
    /// The head or body exceeded its size limit.
    TooLarge,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::TooLarge => f.write_str("request too large"),
        }
    }
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Parses a complete request head (everything before the blank line) into
/// a body-less [`Request`] plus the declared `Content-Length`.
fn parse_head(head: &[u8]) -> Result<(Request, usize), RequestError> {
    let head_text =
        std::str::from_utf8(head).map_err(|_| RequestError::Malformed("head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines
        .next()
        .ok_or(RequestError::Malformed("missing request line"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Malformed("missing method"))?
        .to_ascii_uppercase();
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(RequestError::Malformed("bad method"));
    }
    let path = parts
        .next()
        .ok_or(RequestError::Malformed("missing path"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(RequestError::Malformed("unsupported HTTP version")),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut content_length = None;
    for (k, v) in &headers {
        if k == "content-length" {
            let parsed: usize = v
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length"))?;
            // Duplicate Content-Length headers are a classic smuggling
            // vector; accept them only when they agree.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(RequestError::Malformed("conflicting Content-Length"));
            }
            content_length = Some(parsed);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }

    Ok((
        Request {
            method,
            path,
            headers,
            body: Vec::new(),
        },
        content_length,
    ))
}

/// What [`RequestParser::feed`] concluded after consuming more bytes.
#[derive(Debug)]
pub enum ParseStatus {
    /// The request is incomplete; feed more bytes when they arrive.
    NeedMore,
    /// One complete request. Any bytes past the declared body (pipelined
    /// garbage — this server speaks `Connection: close`) are discarded.
    Complete(Request),
}

/// An incremental, nonblocking-friendly request parser: the per-connection
/// read state machine of the event loop.
///
/// Bytes arrive in arbitrary fragments ([`RequestParser::feed`]); the
/// parser buffers them, finds the head/body boundary, enforces
/// [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`], and yields exactly one
/// [`Request`]. It is a one-shot machine — after `Complete` or an error
/// the parser is spent, matching the server's one-exchange connections.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Parsed head plus declared body length, once the blank line was seen.
    head: Option<(Request, usize)>,
    /// Offset of the first body byte in `buf`.
    body_start: usize,
}

impl RequestParser {
    /// A fresh parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Whether no byte has been consumed yet (a clean pre-request EOF is a
    /// probe, not an error worth answering).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty() && self.head.is_none()
    }

    /// Whether the head was fully received (an EOF after this point is a
    /// torn body rather than a torn head).
    pub fn head_complete(&self) -> bool {
        self.head.is_some()
    }

    /// Consumes the next fragment from the wire.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`read_request`]; once an error is returned the
    /// parser must be discarded (the connection answers 4xx and closes).
    pub fn feed(&mut self, bytes: &[u8]) -> Result<ParseStatus, RequestError> {
        if self.head.is_none() {
            // Resume the boundary scan a few bytes back, in case the blank
            // line straddles two fragments.
            let scan_from = self.buf.len().saturating_sub(3);
            self.buf.extend_from_slice(bytes);
            if let Some((head_len, sep_len)) = find_head_end(&self.buf, scan_from) {
                if head_len + sep_len > MAX_HEAD_BYTES {
                    return Err(RequestError::TooLarge);
                }
                let (request, content_length) = parse_head(&self.buf[..head_len + sep_len])?;
                self.head = Some((request, content_length));
                self.body_start = head_len + sep_len;
            } else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(RequestError::TooLarge);
                }
                return Ok(ParseStatus::NeedMore);
            }
        } else {
            self.buf.extend_from_slice(bytes);
        }

        let (_, content_length) = self.head.as_ref().expect("head parsed above");
        let content_length = *content_length;
        if self.buf.len() < self.body_start + content_length {
            return Ok(ParseStatus::NeedMore);
        }
        let (mut request, _) = self.head.take().expect("head parsed above");
        self.buf.truncate(self.body_start + content_length);
        request.body = self.buf.split_off(self.body_start);
        Ok(ParseStatus::Complete(request))
    }
}

/// Finds the head/body separator (`\r\n\r\n` or `\n\n`) at or after
/// `from`, returning `(head_len_including_separator_start, separator_len)`
/// — i.e. the head slice is `buf[..end]` where `end = head_len + sep_len`.
fn find_head_end(buf: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
        i += 1;
    }
    None
}

/// Reads one request from `stream` (blocking). A convenience wrapper over
/// [`RequestParser`] for synchronous callers — the CLI, tests, and the
/// replica-side of simple tooling.
///
/// # Errors
///
/// See [`RequestError`]. A clean EOF before any byte yields
/// `Malformed("empty request")` — callers usually just drop the connection.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if parser.is_empty() {
                return Err(RequestError::Malformed("empty request"));
            }
            if parser.head_complete() {
                return Err(RequestError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                )));
            }
            return Err(RequestError::Malformed("truncated request head"));
        }
        if let ParseStatus::Complete(request) = parser.feed(&chunk[..n])? {
            return Ok(request);
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Connection`, and `Content-Type`
    /// are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// Media type of `body`.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Overrides the media type.
    #[must_use]
    pub fn with_content_type(mut self, content_type: &'static str) -> Response {
        self.content_type = content_type;
        self
    }

    /// Serializes and writes the response.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// An in-progress chunked (streaming) HTTP response.
///
/// The batch endpoint streams per-item results as they complete, so it
/// cannot know `Content-Length` up front; instead the head advertises
/// `Transfer-Encoding: chunked` and each item result is written as one
/// self-delimiting chunk. Dropping the writer without [`ChunkedWriter::finish`]
/// leaves the body unterminated — the client sees a truncated transfer,
/// never a silently complete-looking one.
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the response head (status line + headers) and switches the
    /// connection into chunked transfer encoding.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn begin(
        stream: &'a mut W,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a, W>> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
             Connection: close\r\n\r\n",
            status,
            status_reason(status),
            content_type,
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it, so a slow batch still delivers
    /// every completed item promptly. Empty chunks are skipped: in chunked
    /// encoding a zero-length chunk terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body with the final zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/run");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(matches!(
            read_request(&mut &b""[..]),
            Err(RequestError::Malformed("empty request"))
        ));
        let raw = b"GET /x SPDY/9\r\n\r\n";
        assert!(read_request(&mut &raw[..]).is_err());
        let raw = b"GET /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n";
        assert!(read_request(&mut &raw[..]).is_err());
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"{\"index\":0}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped: would terminate the body early
        w.chunk(b"{\"index\":1}\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        let body = text.split_once("\r\n\r\n").unwrap().1;
        assert_eq!(
            body,
            "c\r\n{\"index\":0}\n\r\nc\r\n{\"index\":1}\n\r\n0\r\n\r\n"
        );
    }

    #[test]
    fn serializes_a_response() {
        let resp = Response::json(200, "{}").with_header("Retry-After", "1");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
