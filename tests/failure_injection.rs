//! Failure injection: semantic errors (as opposed to probabilistic
//! `assert`/`observe` failures) must surface as hard, descriptive errors —
//! consistently across the exact engine, the sampling engines, the
//! simulator, and the PSI backend — never as silently wrong posteriors.

use bayonet_repro::{ApproxOptions, Error, Network};

fn coin_with(body_a: &str) -> Network {
    Network::from_source(&format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> a, B -> b }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def a(pkt, pt) {{ {body_a} }}
        def b(pkt, pt) state got(0) {{ got = 1; drop; }}
        "#
    ))
    .unwrap()
}

fn assert_all_engines_fail(n: &Network, needle: &str) {
    let opts = ApproxOptions {
        particles: 50,
        seed: 1,
        ..Default::default()
    };
    for (engine, result) in [
        ("exact", n.exact().map(|_| ()).err()),
        ("smc", n.smc(0, &opts).map(|_| ()).err()),
        ("rejection", n.rejection(0, &opts).map(|_| ()).err()),
        ("simulate", n.simulate(&opts).map(|_| ()).err()),
        ("psi", n.infer_via_psi(0).map(|_| ()).err()),
    ] {
        let err = result.unwrap_or_else(|| panic!("{engine}: expected a hard error"));
        let text = format!("{err}");
        assert!(
            text.contains(needle),
            "{engine}: error {text:?} should mention {needle:?}"
        );
    }
}

#[test]
fn forwarding_to_an_unlinked_port_fails_everywhere() {
    // The static checker only warns (ports are data-dependent in general);
    // at runtime it is a hard error in every engine.
    let n = coin_with("fwd(7);");
    assert!(n
        .warnings()
        .iter()
        .any(|w| w.message.contains("no link on that port")));
    assert_all_engines_fail(&n, "no link");
    // A data-dependent bad port produces no warning but still fails hard.
    let dynamic = coin_with("fwd(pt + 6);");
    assert!(dynamic.warnings().is_empty());
    assert_all_engines_fail(&dynamic, "no link");
}

#[test]
fn runtime_division_by_zero_fails_everywhere() {
    let n = coin_with("x = 1 / (pt - 1); drop;"); // pt = 1 here
    assert_all_engines_fail(&n, "division by zero");
}

#[test]
fn diverging_while_loop_fails_everywhere() {
    let n = coin_with("while pt == 1 { skip; }");
    // exact / sampling: per-handler step limit; psi: per-trace step limit.
    let opts = ApproxOptions {
        particles: 10,
        seed: 1,
        ..Default::default()
    };
    assert!(n.exact().is_err());
    assert!(n.smc(0, &opts).is_err());
    assert!(n.infer_via_psi(0).is_err());
}

#[test]
fn draining_an_empty_queue_fails_everywhere() {
    let n = coin_with("drop; drop;");
    assert_all_engines_fail(&n, "input queue is empty");
}

#[test]
fn symbolic_probability_fails_cleanly() {
    let mut n = Network::from_source(
        r#"
        packet_fields { dst }
        parameters { P }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def a(pkt, pt) { if flip(P) { fwd(1); } else { drop; } }
        def b(pkt, pt) state got(0) { got = 1; drop; }
        "#,
    )
    .unwrap();
    // Unbound: every engine refuses (flip needs a concrete probability).
    assert!(matches!(
        n.exact(),
        Err(Error::Semantics(_)) | Err(Error::Exact(_))
    ));
    assert!(n.smc(0, &Default::default()).is_err());
    assert!(n.infer_via_psi(0).is_err());
    // Out-of-range binding: runtime range check fires.
    n.bind("P", bayonet_repro::Rat::ratio(3, 2)).unwrap();
    let err = n.exact().unwrap_err();
    assert!(format!("{err}").contains("outside [0, 1]"), "{err}");
}

#[test]
fn all_mass_observed_out_is_reported_not_divided_by_zero() {
    let n = coin_with("observe(0); drop;");
    let err = n.exact().unwrap_err();
    assert!(format!("{err}").contains("Z = 0"), "{err}");
    // Sampling engines report rejection of every particle.
    let err = n
        .smc(
            0,
            &ApproxOptions {
                particles: 20,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(
        format!("{err}").to_lowercase().contains("rejected"),
        "{err}"
    );
}

#[test]
fn nonlinear_symbolic_arithmetic_is_rejected() {
    let n = Network::from_source(
        r#"
        packet_fields { dst }
        parameters { P }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query expectation(x@A);
        def a(pkt, pt) state x(0) { x = P * P; drop; }
        def b(pkt, pt) { drop; }
        "#,
    )
    .unwrap();
    let err = n.exact().unwrap_err();
    assert!(format!("{err}").contains("nonlinear"), "{err}");
}
