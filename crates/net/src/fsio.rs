//! Crash-safe filesystem primitives: durable writes and atomic replace.
//!
//! The serve layer's persistent result cache (and anything else that wants
//! its on-disk state to survive `SIGKILL`) builds on two guarantees:
//!
//! * [`atomic_write`] — a whole-file replace that is all-or-nothing: the
//!   destination either keeps its old contents or holds the complete new
//!   bytes, never a torn mixture. Implemented as write-to-temp + `fsync` +
//!   `rename` + directory `fsync`.
//! * [`fsync_dir`] — flushes a directory so a freshly created or renamed
//!   entry survives power loss, not just the file data itself.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Flushes directory metadata so renames and newly created files within
/// `dir` are durable.
///
/// On platforms where directories cannot be opened for syncing this is a
/// no-op rather than an error.
///
/// # Errors
///
/// Propagates the underlying open/sync failure on Unix.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Atomically replaces `path` with `bytes`.
///
/// The bytes are written to a uniquely named temp file in the same
/// directory, synced to disk, and renamed over `path`; the directory is
/// then synced so the rename itself is durable. A crash at any point
/// leaves either the old file or the complete new one.
///
/// # Errors
///
/// Propagates I/O failures; on failure the temp file is removed
/// best-effort and `path` is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let base = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        base.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write_all = (|| {
        let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = write_all {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bayonet-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_creates_and_replaces() {
        let dir = temp_dir("replace");
        let path = dir.join("state.bin");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_rejects_bare_root() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
