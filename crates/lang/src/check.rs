//! Static integrity checking (paper §4).
//!
//! Before translating a program, Bayonet statically checks for common
//! network-definition problems: every node is assigned a proper program,
//! all nodes are linked, each interface belongs to at most one link, the
//! queue capacities are sensible, at least one query is declared, and so
//! on. These checks are domain-specific and cheap; they catch errors that a
//! general-purpose PPL would only surface as silent misbehaviour.

use std::collections::{HashMap, HashSet};

use bayonet_num::Rat;

use crate::ast::*;
use crate::error::LangError;
use crate::token::Span;

/// A non-fatal finding: the program is still runnable, but likely wrong.
#[derive(Clone, Debug)]
pub struct Warning {
    /// Human-readable description.
    pub message: String,
}

/// The outcome of a successful static check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Non-fatal findings.
    pub warnings: Vec<Warning>,
}

/// Evaluates a constant expression (no names, fields, or draws).
pub fn const_eval(e: &Expr) -> Option<Rat> {
    match e {
        Expr::Num(r, _) => Some(r.clone()),
        Expr::Neg(inner, _) => const_eval(inner).map(|v| -v),
        Expr::Not(inner, _) => const_eval(inner).map(|v| Rat::from_bool(!v.is_true())),
        Expr::Binary(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a.checked_div(&b)?,
                BinOp::Eq => Rat::from_bool(a == b),
                BinOp::Ne => Rat::from_bool(a != b),
                BinOp::Lt => Rat::from_bool(a < b),
                BinOp::Le => Rat::from_bool(a <= b),
                BinOp::Gt => Rat::from_bool(a > b),
                BinOp::Ge => Rat::from_bool(a >= b),
                BinOp::And => Rat::from_bool(a.is_true() && b.is_true()),
                BinOp::Or => Rat::from_bool(a.is_true() || b.is_true()),
            })
        }
        _ => None,
    }
}

/// Runs all static integrity checks on a parsed program.
///
/// # Errors
///
/// Returns every detected integrity violation (not just the first).
pub fn check(p: &Program) -> Result<CheckReport, Vec<LangError>> {
    let mut sink = Sink::default();
    check_unique_declarations(p, &mut sink);
    check_topology(p, &mut sink);
    check_program_assignment(p, &mut sink);
    check_queries(p, &mut sink);
    check_init(p, &mut sink);
    check_defs(p, &mut sink);
    check_scheduler(p, &mut sink);
    if sink.errors.is_empty() {
        Ok(CheckReport {
            warnings: sink.warnings,
        })
    } else {
        Err(sink.errors)
    }
}

#[derive(Default)]
struct Sink {
    errors: Vec<LangError>,
    warnings: Vec<Warning>,
}

impl Sink {
    fn error(&mut self, msg: impl Into<String>, span: Option<Span>) {
        self.errors.push(LangError::check(msg, span));
    }

    fn warn(&mut self, msg: impl Into<String>) {
        self.warnings.push(Warning {
            message: msg.into(),
        });
    }
}

fn node_names(p: &Program) -> HashSet<&str> {
    p.topology.nodes.iter().map(|n| n.name.as_str()).collect()
}

fn check_unique_declarations(p: &Program, sink: &mut Sink) {
    fn dup(items: &[Ident], kind: &str, sink: &mut Sink) {
        let mut seen = HashSet::new();
        for i in items {
            if !seen.insert(i.name.as_str()) {
                sink.error(format!("duplicate {kind} `{}`", i.name), Some(i.span));
            }
        }
    }
    dup(&p.topology.nodes, "node", sink);
    dup(&p.packet_fields, "packet field", sink);
    dup(&p.parameters, "parameter", sink);
    let def_names: Vec<Ident> = p.defs.iter().map(|d| d.name.clone()).collect();
    dup(&def_names, "program definition", sink);
    for d in &p.defs {
        let state_names: Vec<Ident> = d.state.iter().map(|(v, _)| v.clone()).collect();
        dup(&state_names, "state variable", sink);
    }
    // A name may not be simultaneously a node and a parameter: both are
    // referenced as bare identifiers inside handlers.
    let nodes = node_names(p);
    for param in &p.parameters {
        if nodes.contains(param.name.as_str()) {
            sink.error(
                format!(
                    "`{}` is declared both as a node and a parameter",
                    param.name
                ),
                Some(param.span),
            );
        }
    }
}

fn check_topology(p: &Program, sink: &mut Sink) {
    let nodes = node_names(p);
    let mut interface_count: HashMap<(String, u32), u32> = HashMap::new();
    for link in &p.topology.links {
        for ep in [&link.a, &link.b] {
            if !nodes.contains(ep.node.name.as_str()) {
                sink.error(
                    format!("link references undeclared node `{}`", ep.node.name),
                    Some(ep.node.span),
                );
            }
            if ep.port == 0 {
                sink.error(
                    format!("port numbers start at 1 (node `{}`)", ep.node.name),
                    Some(ep.node.span),
                );
            }
            *interface_count
                .entry((ep.node.name.clone(), ep.port))
                .or_insert(0) += 1;
        }
        if link.a.node == link.b.node && link.a.port == link.b.port {
            sink.error(
                format!(
                    "link connects interface ({}, pt{}) to itself",
                    link.a.node.name, link.a.port
                ),
                Some(link.a.node.span),
            );
        }
    }
    // Each interface participates in at most one link (paper Figure 4).
    for ((node, port), count) in &interface_count {
        if *count > 1 {
            sink.error(
                format!("interface ({node}, pt{port}) appears in {count} links"),
                None,
            );
        }
    }
    // Every node must be linked.
    let linked: HashSet<&str> = p
        .topology
        .links
        .iter()
        .flat_map(|l| [l.a.node.name.as_str(), l.b.node.name.as_str()])
        .collect();
    for n in &p.topology.nodes {
        if !linked.contains(n.name.as_str()) {
            sink.error(
                format!("node `{}` is not connected to any link", n.name),
                Some(n.span),
            );
        }
    }
}

fn check_program_assignment(p: &Program, sink: &mut Sink) {
    let nodes = node_names(p);
    let defs: HashSet<&str> = p.defs.iter().map(|d| d.name.name.as_str()).collect();
    let mut assigned: HashMap<&str, &str> = HashMap::new();
    for (node, prog) in &p.programs {
        if !nodes.contains(node.name.as_str()) {
            sink.error(
                format!("programs block references undeclared node `{}`", node.name),
                Some(node.span),
            );
        }
        if !defs.contains(prog.name.as_str()) {
            sink.error(
                format!(
                    "node `{}` is assigned undefined program `{}`",
                    node.name, prog.name
                ),
                Some(prog.span),
            );
        }
        if assigned.insert(&node.name, &prog.name).is_some() {
            sink.error(
                format!("node `{}` is assigned more than one program", node.name),
                Some(node.span),
            );
        }
    }
    for n in &p.topology.nodes {
        if !assigned.contains_key(n.name.as_str()) {
            sink.error(
                format!("node `{}` has no program assigned", n.name),
                Some(n.span),
            );
        }
    }
    // Unused defs are suspicious but not fatal.
    let used: HashSet<&str> = p.programs.iter().map(|(_, pr)| pr.name.as_str()).collect();
    for d in &p.defs {
        if !used.contains(d.name.name.as_str()) {
            sink.warn(format!(
                "program `{}` is defined but never assigned to a node",
                d.name.name
            ));
        }
    }
}

fn state_vars_of_node<'a>(p: &'a Program, node: &str) -> Option<HashSet<&'a str>> {
    let prog = p
        .programs
        .iter()
        .find(|(n, _)| n.name == node)?
        .1
        .name
        .as_str();
    let def = p.defs.iter().find(|d| d.name.name == prog)?;
    Some(def.state.iter().map(|(v, _)| v.name.as_str()).collect())
}

fn check_queries(p: &Program, sink: &mut Sink) {
    if p.queries.is_empty() {
        sink.error("at least one query must be declared", None);
    }
    let nodes = node_names(p);
    for q in &p.queries {
        q.expr().walk(&mut |e| match e {
            Expr::At(var, node) => {
                if !nodes.contains(node.name.as_str()) {
                    sink.error(
                        format!("query references undeclared node `{}`", node.name),
                        Some(node.span),
                    );
                } else if let Some(vars) = state_vars_of_node(p, &node.name) {
                    if !vars.contains(var.name.as_str()) {
                        sink.error(
                            format!(
                                "`{}` is not a state variable of node `{}`'s program",
                                var.name, node.name
                            ),
                            Some(var.span),
                        );
                    }
                }
            }
            Expr::Field(f) => {
                sink.error(
                    format!("queries cannot read packet fields (pkt.{})", f.name),
                    Some(f.span),
                );
            }
            Expr::Port(s) => {
                sink.error("queries cannot reference `pt`", Some(*s));
            }
            Expr::Flip(_, s) | Expr::UniformInt(_, _, s) => {
                sink.error(
                    "queries must be deterministic (no flip/uniformInt)",
                    Some(*s),
                );
            }
            Expr::Name(id) if !nodes.contains(id.name.as_str()) => {
                let is_param = p.parameters.iter().any(|pr| pr.name == id.name);
                if !is_param {
                    sink.error(
                        format!(
                            "query name `{}` is neither a node nor a parameter; \
                             use var@Node for node state",
                            id.name
                        ),
                        Some(id.span),
                    );
                }
            }
            _ => {}
        });
    }
}

fn check_init(p: &Program, sink: &mut Sink) {
    let nodes = node_names(p);
    let fields: HashSet<&str> = p.packet_fields.iter().map(|f| f.name.as_str()).collect();
    for ip in &p.init {
        if !nodes.contains(ip.node.name.as_str()) {
            sink.error(
                format!("init packet targets undeclared node `{}`", ip.node.name),
                Some(ip.node.span),
            );
        }
        for (f, e) in &ip.fields {
            if !fields.contains(f.name.as_str()) {
                sink.error(
                    format!("init packet sets undeclared field `{}`", f.name),
                    Some(f.span),
                );
            }
            if e.is_random() {
                sink.error(
                    "init packet fields must be deterministic expressions",
                    Some(e.span()),
                );
            }
        }
    }
    if p.init.is_empty() {
        sink.warn(
            "no init packets: the network terminates immediately unless state \
             initializers inject work",
        );
    }
}

fn check_scheduler(p: &Program, sink: &mut Sink) {
    if let SchedulerSpec::Weighted(ws) = &p.scheduler {
        let nodes = node_names(p);
        for (node, w) in ws {
            if !nodes.contains(node.name.as_str()) {
                sink.error(
                    format!("scheduler weight for undeclared node `{}`", node.name),
                    Some(node.span),
                );
            }
            if *w == 0 {
                sink.error(
                    format!("scheduler weight for `{}` must be positive", node.name),
                    Some(node.span),
                );
            }
        }
    }
}

fn check_defs(p: &Program, sink: &mut Sink) {
    let nodes = node_names(p);
    let params: HashSet<&str> = p.parameters.iter().map(|pr| pr.name.as_str()).collect();
    let fields: HashSet<&str> = p.packet_fields.iter().map(|f| f.name.as_str()).collect();

    for def in &p.defs {
        let state: HashSet<&str> = def.state.iter().map(|(v, _)| v.name.as_str()).collect();

        // State initializers may reference parameters/nodes and draw
        // randomness, but not other variables, pkt, or pt.
        for (var, init) in &def.state {
            init.walk(&mut |e| match e {
                Expr::Name(id)
                    if !params.contains(id.name.as_str()) && !nodes.contains(id.name.as_str()) =>
                {
                    sink.error(
                        format!(
                            "state initializer of `{}` references `{}`, which is neither \
                             a parameter nor a node",
                            var.name, id.name
                        ),
                        Some(id.span),
                    );
                }
                Expr::Field(f) => sink.error(
                    format!("state initializer of `{}` reads pkt.{}", var.name, f.name),
                    Some(f.span),
                ),
                Expr::Port(s) => sink.error(
                    format!("state initializer of `{}` reads pt", var.name),
                    Some(*s),
                ),
                Expr::At(_, n) => sink.error(
                    "x@Node expressions are only allowed in queries",
                    Some(n.span),
                ),
                _ => {}
            });
        }

        // Expression-level checks over the body.
        walk_exprs(&def.body, &mut |e| match e {
            Expr::At(_, n) => sink.error(
                "x@Node expressions are only allowed in queries",
                Some(n.span),
            ),
            Expr::Field(f) if !fields.contains(f.name.as_str()) => {
                sink.error(
                    format!("undeclared packet field `{}`", f.name),
                    Some(f.span),
                );
            }
            Expr::Flip(prob, s) => {
                if let Some(v) = const_eval(prob) {
                    if v.is_negative() || v > Rat::one() {
                        sink.error(format!("flip probability {v} is outside [0, 1]"), Some(*s));
                    }
                }
            }
            Expr::UniformInt(lo, hi, s) => {
                if let (Some(l), Some(h)) = (const_eval(lo), const_eval(hi)) {
                    if l > h {
                        sink.error(format!("uniformInt range [{l}, {h}] is empty"), Some(*s));
                    }
                    if !l.is_integer() || !h.is_integer() {
                        sink.error("uniformInt bounds must be integers", Some(*s));
                    }
                }
            }
            Expr::Binary(BinOp::Div, _, rhs) if const_eval(rhs).is_some_and(|v| v.is_zero()) => {
                sink.error("division by constant zero", Some(rhs.span()));
            }
            _ => {}
        });

        // Definite-assignment analysis for local (non-state) variables.
        let mut assigned: HashSet<String> = HashSet::new();
        definite_assignment(&def.body, &mut assigned, &state, &params, &nodes, def, sink);

        // Literal fwd ports should exist on some node running this def.
        let running_nodes: Vec<&str> = p
            .programs
            .iter()
            .filter(|(_, pr)| pr.name == def.name.name)
            .map(|(n, _)| n.name.as_str())
            .collect();
        walk_stmts(&def.body, &mut |s| {
            if let Stmt::Fwd(e, span) = s {
                if let Some(port) = const_eval(e).and_then(|v| v.to_i64()) {
                    for node in &running_nodes {
                        let has_link = p.topology.links.iter().any(|l| {
                            (l.a.node.name == *node && l.a.port as i64 == port)
                                || (l.b.node.name == *node && l.b.port as i64 == port)
                        });
                        if !has_link {
                            sink.warn(format!(
                                "program `{}` forwards to port {port}, but node `{node}` \
                                 has no link on that port (at {}:{})",
                                def.name.name, span.line, span.col
                            ));
                        }
                    }
                }
            }
        });
    }
}

/// Walks `stmts` tracking which local variables are definitely assigned,
/// reporting uses of possibly-unassigned locals. Updates `assigned` to the
/// set of variables definitely assigned after the block.
fn definite_assignment(
    stmts: &[Stmt],
    assigned: &mut HashSet<String>,
    state: &HashSet<&str>,
    params: &HashSet<&str>,
    nodes: &HashSet<&str>,
    def: &NodeDef,
    sink: &mut Sink,
) {
    fn check_expr(
        e: &Expr,
        assigned: &HashSet<String>,
        state: &HashSet<&str>,
        params: &HashSet<&str>,
        nodes: &HashSet<&str>,
        def: &NodeDef,
        sink: &mut Sink,
    ) {
        e.walk(&mut |sub| {
            if let Expr::Name(id) = sub {
                let known = state.contains(id.name.as_str())
                    || params.contains(id.name.as_str())
                    || nodes.contains(id.name.as_str())
                    || assigned.contains(&id.name);
                if !known {
                    sink.error(
                        format!(
                            "variable `{}` may be used before assignment in program `{}`",
                            id.name, def.name.name
                        ),
                        Some(id.span),
                    );
                }
            }
        });
    }
    for s in stmts {
        match s {
            Stmt::Assign(x, e) => {
                check_expr(e, assigned, state, params, nodes, def, sink);
                if nodes.contains(x.name.as_str()) || params.contains(x.name.as_str()) {
                    sink.error(
                        format!("cannot assign to `{}` (a node/parameter name)", x.name),
                        Some(x.span),
                    );
                }
                assigned.insert(x.name.clone());
            }
            Stmt::FieldAssign(_, e)
            | Stmt::Fwd(e, _)
            | Stmt::Assert(e, _)
            | Stmt::Observe(e, _) => {
                check_expr(e, assigned, state, params, nodes, def, sink);
            }
            Stmt::If(c, t, els) => {
                check_expr(c, assigned, state, params, nodes, def, sink);
                let mut a_then = assigned.clone();
                let mut a_else = assigned.clone();
                definite_assignment(t, &mut a_then, state, params, nodes, def, sink);
                definite_assignment(els, &mut a_else, state, params, nodes, def, sink);
                // Definitely assigned after = intersection of branches.
                *assigned = a_then.intersection(&a_else).cloned().collect();
            }
            Stmt::While(c, body) => {
                check_expr(c, assigned, state, params, nodes, def, sink);
                // The body may run zero times: its assignments don't count,
                // but uses inside are checked against the pre-state.
                let mut a_body = assigned.clone();
                definite_assignment(body, &mut a_body, state, params, nodes, def, sink);
            }
            Stmt::New(_) | Stmt::Drop(_) | Stmt::Dup(_) | Stmt::Skip(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn minimal(extra_topo: &str, defs: &str, queries: &str) -> String {
        format!(
            r#"
            packet_fields {{ dst }}
            topology {{
                nodes {{ A, B }}
                links {{ (A, pt1) <-> (B, pt1) {extra_topo} }}
            }}
            programs {{ A -> a, B -> b }}
            init {{ packet -> (A, pt1); }}
            {queries}
            {defs}
            "#
        )
    }

    fn check_src(src: &str) -> Result<CheckReport, Vec<LangError>> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn clean_program_passes() {
        let src = minimal(
            "",
            "def a(pkt, pt) { fwd(1); } def b(pkt, pt) state n(0) { n = n + 1; drop; }",
            "query probability(n@B == 1);",
        );
        let report = check_src(&src).unwrap();
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn missing_program_assignment() {
        let src = r#"
            topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a }
            query probability(1 == 1);
            def a(pkt, pt) { drop; }
        "#;
        let errs = check_src(src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("no program assigned")));
    }

    #[test]
    fn unlinked_node_detected() {
        let src = r#"
            topology { nodes { A, B, C } links { (A, pt1) <-> (B, pt1) } }
            programs { A -> a, B -> a, C -> a }
            query probability(1 == 1);
            def a(pkt, pt) { drop; }
        "#;
        let errs = check_src(src).unwrap_err();
        assert!(errs.iter().any(|e| e.message().contains("not connected")));
    }

    #[test]
    fn interface_in_two_links_detected() {
        let src = r#"
            topology {
                nodes { A, B, C }
                links { (A, pt1) <-> (B, pt1), (A, pt1) <-> (C, pt1) }
            }
            programs { A -> a, B -> a, C -> a }
            query probability(1 == 1);
            def a(pkt, pt) { drop; }
        "#;
        let errs = check_src(src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("appears in 2 links")));
    }

    #[test]
    fn missing_query_detected() {
        let src = minimal("", "def a(pkt, pt) { drop; } def b(pkt, pt) { drop; }", "");
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("at least one query")));
    }

    #[test]
    fn query_against_unknown_state_var() {
        let src = minimal(
            "",
            "def a(pkt, pt) { drop; } def b(pkt, pt) { drop; }",
            "query probability(missing@B == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("not a state variable")));
    }

    #[test]
    fn use_before_assignment_detected() {
        let src = minimal(
            "",
            "def a(pkt, pt) { x = y + 1; drop; } def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("used before assignment")));
    }

    #[test]
    fn branch_assignment_is_not_definite() {
        let src = minimal(
            "",
            "def a(pkt, pt) { if pt == 1 { x = 1; } x = x + 1; drop; } \
             def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("used before assignment")));
    }

    #[test]
    fn both_branch_assignment_is_definite() {
        let src = minimal(
            "",
            "def a(pkt, pt) { if pt == 1 { x = 1; } else { x = 2; } x = x + 1; drop; } \
             def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        assert!(check_src(&src).is_ok());
    }

    #[test]
    fn bad_flip_probability_detected() {
        let src = minimal(
            "",
            "def a(pkt, pt) { if flip(3/2) { drop; } else { drop; } } def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs.iter().any(|e| e.message().contains("outside [0, 1]")));
    }

    #[test]
    fn undeclared_packet_field_detected() {
        let src = minimal(
            "",
            "def a(pkt, pt) { pkt.dst = 1; fwd(1); } def b(pkt, pt) { x = pkt.nope; drop; }",
            "query probability(1 == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("undeclared packet field")));
    }

    #[test]
    fn fwd_to_unlinked_port_warns() {
        let src = minimal(
            "",
            "def a(pkt, pt) { fwd(7); } def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        let report = check_src(&src).unwrap();
        assert!(report
            .warnings
            .iter()
            .any(|w| w.message.contains("no link on that port")));
    }

    #[test]
    fn at_in_handler_rejected() {
        let src = minimal(
            "",
            "def a(pkt, pt) state n(0) { n = n@A; drop; } def b(pkt, pt) { drop; }",
            "query probability(1 == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message().contains("only allowed in queries")));
    }

    #[test]
    fn random_query_rejected() {
        let src = minimal(
            "",
            "def a(pkt, pt) { drop; } def b(pkt, pt) { drop; }",
            "query probability(flip(1/2) == 1);",
        );
        let errs = check_src(&src).unwrap_err();
        assert!(errs.iter().any(|e| e.message().contains("deterministic")));
    }

    #[test]
    fn random_state_initializer_is_allowed() {
        // Paper §5.5: `state bad_hash(flip(1/10))`.
        let src = minimal(
            "",
            "def a(pkt, pt) state bad_hash(flip(1/10)) { drop; } def b(pkt, pt) { drop; }",
            "query probability(bad_hash@A == 1);",
        );
        assert!(check_src(&src).is_ok());
    }

    #[test]
    fn const_eval_folds() {
        use crate::parser::parse_expr;
        assert_eq!(
            const_eval(&parse_expr("1/2 + 1/3").unwrap()),
            Some(Rat::ratio(5, 6))
        );
        assert_eq!(const_eval(&parse_expr("2 < 3").unwrap()), Some(Rat::one()));
        assert_eq!(const_eval(&parse_expr("not 0").unwrap()), Some(Rat::one()));
        assert_eq!(const_eval(&parse_expr("x + 1").unwrap()), None);
        assert_eq!(const_eval(&parse_expr("1/0").unwrap()), None);
    }
}
