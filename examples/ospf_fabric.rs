//! OSPF/ECMP control plane in action: describe a small leaf–spine fabric by
//! its link costs and let the control plane generate the Bayonet data plane
//! (least-cost forwarding + uniform ECMP splits), then quantify congestion
//! and the effect of taking a spine down (cost inflation).
//!
//! Run with: `cargo run --release --example ospf_fabric`

use bayonet::ospf::OspfBuilder;
use bayonet::ApproxOptions;

/// A 2-spine, 2-leaf fabric with one host per leaf. `spine1_cost` inflates
/// the costs through the second spine (10 = drained, 1 = active).
fn fabric(spine1_cost: u64, packets: u32) -> OspfBuilder {
    OspfBuilder::new()
        .switch("L0")
        .switch("L1")
        .switch("SP0")
        .switch("SP1")
        .host("A", "L0")
        .host("B", "L1")
        .link("L0", "SP0", 1)
        .link("L1", "SP0", 1)
        .link("L0", "SP1", spine1_cost)
        .link("L1", "SP1", spine1_cost)
        .flow("A", "B", packets)
        .queue_capacity(2)
}

fn main() -> Result<(), bayonet::Error> {
    println!("leaf–spine fabric, host A sends 3 packets to host B\n");

    // Both spines active: equal-cost paths, ECMP at the leaf.
    let balanced = fabric(1, 3).build()?;
    let report = balanced.exact()?;
    println!(
        "both spines active (ECMP):   P(loss) = {:.4}, E[delivered] = {:.4}",
        report.results[0].to_f64(),
        report.results[1].to_f64()
    );

    // Spine 1 drained: all traffic squeezes through spine 0.
    let drained = fabric(10, 3).build()?;
    let report = drained.exact()?;
    println!(
        "spine 1 drained (single):    P(loss) = {:.4}, E[delivered] = {:.4}",
        report.results[0].to_f64(),
        report.results[1].to_f64()
    );

    // The generated data plane is ordinary Bayonet source — inspect it:
    println!("\ngenerated program for leaf L0 (both spines active):");
    for line in balanced
        .source()
        .lines()
        .skip_while(|l| !l.starts_with("def sw_L0"))
        .take(3)
    {
        println!("  {line}");
    }

    // Cross-check the exact values with SMC.
    let est = balanced.smc(0, &ApproxOptions::default())?;
    println!("\nSMC cross-check on P(loss), both spines: {est}");
    Ok(())
}
