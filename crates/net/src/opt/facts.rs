//! Cost-model facts, gathered once per optimized model.
//!
//! The exact crate's planner needs per-model signals (random-choice sites,
//! handler branching, program sharing) to estimate inference cost. It used
//! to re-walk the model on every plan; the pass pipeline now collects these
//! facts in one traversal and caches them in [`super::OptInfo`], and the
//! planner falls back to [`model_facts`] — the same implementation — for
//! unoptimized models, so the two paths cannot diverge.

use std::sync::Arc;

use crate::compile::{CExpr, CStmt, CompiledProgram, Model};

/// Cap on any single branching product, so pathological programs cannot
/// overflow the f64 arithmetic downstream.
const BRANCH_CAP: f64 = 1e12;

/// Model-shape signals consumed by the cost-model planner.
#[derive(Debug, Clone)]
pub struct ModelFacts {
    /// `flip` sites across all distinct programs.
    pub flip_sites: usize,
    /// `uniform` sites across all distinct programs.
    pub uniform_sites: usize,
    /// `dup` sites across all distinct programs.
    pub dup_sites: usize,
    /// Mean complete-execution count of one handler run (flip ×2,
    /// uniform ×span, averaged over nodes).
    pub handler_branching: f64,
    /// Size of the largest group of nodes sharing one program `Arc`
    /// (0 when every node has a private program).
    pub shared_program_nodes: usize,
}

#[derive(Default)]
struct SiteTally {
    uniforms: usize,
    flips: usize,
    dups: usize,
}

/// Number of complete executions of an expression's random choices.
fn expr_branches(e: &CExpr, t: &mut SiteTally) -> f64 {
    match e {
        CExpr::Const(_)
        | CExpr::Param(_)
        | CExpr::State(_)
        | CExpr::Local(_)
        | CExpr::Field(_)
        | CExpr::Port => 1.0,
        CExpr::Flip(inner) => {
            t.flips += 1;
            2.0 * expr_branches(inner, t)
        }
        CExpr::UniformInt(lo, hi) => {
            t.uniforms += 1;
            let span = match (lo.as_ref(), hi.as_ref()) {
                (CExpr::Const(a), CExpr::Const(b)) => {
                    (b.to_f64() - a.to_f64() + 1.0).clamp(1.0, BRANCH_CAP)
                }
                // Non-constant bounds: assume a small span.
                _ => 3.0,
            };
            span * expr_branches(lo, t) * expr_branches(hi, t)
        }
        CExpr::Binary(_, a, b) => expr_branches(a, t) * expr_branches(b, t),
        CExpr::Not(inner) | CExpr::Neg(inner) => expr_branches(inner, t),
    }
    .min(BRANCH_CAP)
}

/// Approximate number of complete executions of a statement sequence. The
/// enumeration engine explores every one of them per handler run.
fn stmts_branches(stmts: &[CStmt], t: &mut SiteTally) -> f64 {
    let mut product = 1.0f64;
    for s in stmts {
        let b = match s {
            CStmt::New | CStmt::Drop | CStmt::Skip => 1.0,
            CStmt::Dup => {
                t.dups += 1;
                1.0
            }
            CStmt::Fwd(e)
            | CStmt::AssignState(_, e)
            | CStmt::AssignLocal(_, e)
            | CStmt::FieldAssign(_, e)
            | CStmt::Assert(e)
            | CStmt::Observe(e) => expr_branches(e, t),
            CStmt::If(cond, then_b, else_b) => {
                let c = expr_branches(cond, t);
                // A probabilistic condition sends mass down both arms; a
                // deterministic one takes the worse arm in the worst case.
                let tb = stmts_branches(then_b, t);
                let eb = stmts_branches(else_b, t);
                if c > 1.0 {
                    c * tb.max(eb)
                } else {
                    tb.max(eb)
                }
            }
            CStmt::While(cond, body) => {
                // Loops are bounded by the local step limit; assume a few
                // iterations of the body's branching.
                let c = expr_branches(cond, t);
                (c * stmts_branches(body, t)).powf(2.0)
            }
        };
        product = (product * b).min(BRANCH_CAP);
    }
    product
}

/// Size of the largest group of nodes sharing one `CompiledProgram` `Arc`.
fn shared_program_nodes(model: &Model) -> usize {
    let mut best = 0usize;
    for (i, p) in model.programs.iter().enumerate() {
        let group = model.programs[i..]
            .iter()
            .filter(|q| Arc::ptr_eq(p, q))
            .count();
        if group > 1 {
            best = best.max(group);
        }
    }
    best
}

/// Gathers the cost-model facts for a model in a single traversal.
///
/// Sites are counted once per *distinct* program but branching is weighted
/// per node: the engine runs a shared handler at every node holding it.
pub fn model_facts(model: &Model) -> ModelFacts {
    let mut tally = SiteTally::default();
    let mut total = 0.0f64;
    let mut counted: Vec<*const CompiledProgram> = Vec::new();
    for prog in &model.programs {
        let ptr = Arc::as_ptr(prog);
        if counted.contains(&ptr) {
            // Re-measure branching without double-counting the site tallies.
            let mut scratch = SiteTally::default();
            total += stmts_branches(&prog.body, &mut scratch);
        } else {
            counted.push(ptr);
            total += stmts_branches(&prog.body, &mut tally);
        }
    }
    let handler_branching = if model.programs.is_empty() {
        1.0
    } else {
        (total / model.programs.len() as f64).max(1.0)
    };
    ModelFacts {
        flip_sites: tally.flips,
        uniform_sites: tally.uniforms,
        dup_sites: tally.dups,
        handler_branching,
        shared_program_nodes: shared_program_nodes(model),
    }
}
