//! Tests of the posterior-distribution API (`Network::distribution`).

use bayonet_repro::scenarios::{self, Sched};
use bayonet_repro::{Network, Rat};

#[test]
fn gossip_k4_distribution_matches_analysis() {
    // Hand computation (§5.3): after the seed infects one neighbor, that
    // neighbor's two packets determine the spread:
    //   P(2 infected) = 1/9, P(3) = 8/27, P(4) = 16/27; E = 94/27.
    let n = scenarios::gossip(4, Sched::Uniform).unwrap();
    let dist = n.distribution(0).unwrap();
    assert_eq!(
        dist,
        vec![
            (Rat::int(2), Rat::ratio(1, 9)),
            (Rat::int(3), Rat::ratio(8, 27)),
            (Rat::int(4), Rat::ratio(16, 27)),
        ]
    );
    // Consistency: Σ p = 1 and Σ v·p equals the expectation query.
    let total: Rat = dist.iter().fold(Rat::zero(), |acc, (_, p)| acc + p);
    assert_eq!(total, Rat::one());
    let mean: Rat = dist.iter().fold(Rat::zero(), |acc, (v, p)| acc + &(v * p));
    assert_eq!(mean, Rat::ratio(94, 27));
}

#[test]
fn congestion_packet_count_distribution() {
    let n = scenarios::congestion_example(Sched::Uniform).unwrap();
    // Query 0 is the congestion condition; the expectation query (index 1)
    // carries the packet-count expression whose distribution we want.
    let dist = n.distribution(1).unwrap();
    // H1 receives between 0 and 3 packets; P(=3) must equal 1 - 0.4487...
    let p3 = dist
        .iter()
        .find(|(v, _)| *v == Rat::int(3))
        .map(|(_, p)| p.clone())
        .unwrap();
    let expected = Rat::one() - "30378810105265/67706637778944".parse::<Rat>().unwrap();
    assert_eq!(p3, expected);
    let total: Rat = dist.iter().fold(Rat::zero(), |acc, (_, p)| acc + p);
    assert_eq!(total, Rat::one());
}

#[test]
fn distribution_is_conditioned_by_observations() {
    let n = Network::from_source(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query expectation(x@A);
        def a(pkt, pt) state x(0) {
            x = uniformInt(1, 4);
            observe(x != 2);
            drop;
        }
        def b(pkt, pt) { drop; }
        "#,
    )
    .unwrap();
    let dist = n.distribution(0).unwrap();
    assert_eq!(
        dist,
        vec![
            (Rat::int(1), Rat::ratio(1, 3)),
            (Rat::int(3), Rat::ratio(1, 3)),
            (Rat::int(4), Rat::ratio(1, 3)),
        ]
    );
}

#[test]
fn distribution_rejects_symbolic_parameters() {
    let n = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    assert!(n.distribution(0).is_err());
}
