//! Local and global network configurations (paper §3.1–3.2).

use std::fmt;

use bayonet_symbolic::ParamTable;

use crate::compile::Model;
use crate::queue::PktQueue;
use crate::value::Val;

/// The configuration of one network node: its state variables, input and
/// output queues, and whether it is in the error state ⊥ (failed `assert`).
///
/// The paper's ⟨σ, Q_IN, Q_OUT, s⟩ tuple — the statement component `s` is
/// always fully evaluated between global steps because `(Run, i)` executes
/// handlers to completion.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeConfig {
    /// State variable values (slot-indexed).
    pub state: Vec<Val>,
    /// Input queue.
    pub q_in: PktQueue,
    /// Output queue.
    pub q_out: PktQueue,
    /// `true` once an `assert` failed (the node is in ⊥).
    pub error: bool,
}

impl NodeConfig {
    /// A node with no state and empty queues of the given capacity.
    pub fn empty(queue_capacity: usize) -> NodeConfig {
        NodeConfig {
            state: Vec::new(),
            q_in: PktQueue::new(queue_capacity),
            q_out: PktQueue::new(queue_capacity),
            error: false,
        }
    }
}

/// A global network configuration: the scheduler state plus every node's
/// local configuration.
///
/// The derived ordering is structural — a canonical state key. The exact
/// engine sorts merged frontiers and terminals by it so that exploration
/// order (and therefore every downstream result) is independent of the
/// parallel schedule that produced them.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalConfig {
    /// Scheduler state (0 for the stateless built-in schedulers; the rotor
    /// scheduler keeps its cursor here).
    pub sched_state: u32,
    /// Per-node configurations.
    pub nodes: Vec<NodeConfig>,
}

/// A schedulable action (paper §3.2): run a node's program, or forward the
/// head of a node's output queue across its link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Action {
    /// `(Run, i)` — execute node `i`'s handler on its head packet.
    Run(usize),
    /// `(Fwd, i)` — deliver the head of node `i`'s output queue.
    Fwd(usize),
}

impl Action {
    /// The node the action concerns.
    pub fn node(self) -> usize {
        match self {
            Action::Run(i) | Action::Fwd(i) => i,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Run(i) => write!(f, "(Run, {i})"),
            Action::Fwd(i) => write!(f, "(Fwd, {i})"),
        }
    }
}

impl GlobalConfig {
    /// Returns `true` if some node is in the error state ⊥.
    pub fn has_error(&self) -> bool {
        self.nodes.iter().any(|n| n.error)
    }

    /// The enabled actions in canonical order: `Run(0..k)` for nodes with
    /// nonempty input queues, then `Fwd(0..k)` for nodes with nonempty
    /// output queues (matching the scheduler of paper Figure 6).
    pub fn enabled_actions(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.q_in.is_empty() {
                out.push(Action::Run(i));
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.q_out.is_empty() {
                out.push(Action::Fwd(i));
            }
        }
        out
    }

    /// A configuration is terminal when all queues are empty (nothing can
    /// step) or some node is in the error state (paper §3.2).
    pub fn is_terminal(&self) -> bool {
        self.has_error() || self.enabled_actions().is_empty()
    }

    /// Total packets across all queues (useful for invariants/tests).
    pub fn total_packets(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.q_in.len() + n.q_out.len())
            .sum()
    }

    /// A compact human-readable rendering for debugging.
    pub fn describe(&self, model: &Model, params: &ParamTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "{}[in:{} out:{}{}",
                model.node_names[i],
                n.q_in.len(),
                n.q_out.len(),
                if n.error { " ⊥" } else { "" }
            );
            if !n.state.is_empty() {
                let _ = write!(out, " state:");
                for (s, v) in n.state.iter().enumerate() {
                    let _ = write!(
                        out,
                        " {}={}",
                        model.programs[i].state_names[s],
                        v.display(params)
                    );
                }
            }
            let _ = write!(out, "] ");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Packet;

    fn two_nodes() -> GlobalConfig {
        GlobalConfig {
            sched_state: 0,
            nodes: vec![NodeConfig::empty(2), NodeConfig::empty(2)],
        }
    }

    #[test]
    fn empty_network_is_terminal() {
        let cfg = two_nodes();
        assert!(cfg.is_terminal());
        assert!(cfg.enabled_actions().is_empty());
        assert!(!cfg.has_error());
    }

    #[test]
    fn enabled_actions_canonical_order() {
        let mut cfg = two_nodes();
        cfg.nodes[1].q_in.push_back((Packet::fresh(0), 1));
        cfg.nodes[0].q_out.push_back((Packet::fresh(0), 1));
        cfg.nodes[1].q_out.push_back((Packet::fresh(0), 1));
        assert_eq!(
            cfg.enabled_actions(),
            vec![Action::Run(1), Action::Fwd(0), Action::Fwd(1)]
        );
        assert!(!cfg.is_terminal());
    }

    #[test]
    fn error_makes_terminal() {
        let mut cfg = two_nodes();
        cfg.nodes[0].q_in.push_back((Packet::fresh(0), 1));
        assert!(!cfg.is_terminal());
        cfg.nodes[1].error = true;
        assert!(cfg.is_terminal());
        assert!(cfg.has_error());
    }

    #[test]
    fn total_packets_counts_both_queues() {
        let mut cfg = two_nodes();
        cfg.nodes[0].q_in.push_back((Packet::fresh(0), 1));
        cfg.nodes[0].q_out.push_back((Packet::fresh(0), 1));
        cfg.nodes[1].q_in.push_back((Packet::fresh(0), 1));
        assert_eq!(cfg.total_packets(), 3);
    }
}
