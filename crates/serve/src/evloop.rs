//! The nonblocking event loop at the core of the server.
//!
//! One thread owns every socket: an edge-triggered [`Poller`]
//! (`bayonet_net::Poller`, a thin epoll wrapper) watches the listener, a
//! wakeup pipe, and every connection fd. Each connection is a small state
//! machine — accumulate bytes through [`RequestParser`], dispatch the
//! parsed request, flush the response — so ten thousand idle or slow
//! clients cost ten thousand fds and one parked thread, not ten thousand
//! threads.
//!
//! Inference never runs on the loop. In **serve** mode a parsed request is
//! pushed onto a bounded job queue consumed by worker threads (the same
//! shed-with-`503` contract as before: a full queue answers `503 Service
//! Unavailable` in microseconds); workers write response bytes into the
//! connection's [`OutBuf`] and wake the loop to flush them. Chunked batch
//! streaming works unchanged: the worker's `ChunkedWriter` writes into an
//! [`OutHandle`], each chunk waking the loop, with a high-water mark
//! providing backpressure against clients that stop reading.
//!
//! In **router** mode (`--replicas N`) the same loop speaks both sides of
//! a proxy: downstream client connections parse one request, a consistent
//! hash on the canonical program picks a replica, and an upstream
//! connection relays the bytes back, injecting an `X-Bayonet-Replica`
//! header so routing stays observable.
//!
//! Hostile-client defenses are enforced here, per connection: a fixed
//! read deadline from accept (a trickling slow-loris cannot reset it), a
//! write deadline that only advances while the client drains, and hard
//! head/body size limits in the parser. Every outcome is visible on
//! `/metrics` as the `bayonet_http_*` series.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bayonet_net::{Interest, PollEvent, Poller};
use crossbeam::channel::{Sender, TrySendError};

use crate::http::{ParseStatus, Request, RequestError, RequestParser, Response, MAX_HEAD_BYTES};
use crate::metrics::Metrics;
use crate::router::RouterCore;

/// Token of the accept listener.
const TOKEN_LISTENER: u64 = 0;
/// Token of the wakeup pipe's read end.
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection; tokens are never reused, so a
/// stale event for a closed connection simply misses the map.
const TOKEN_FIRST_CONN: u64 = 2;

/// Outbound buffer high-water mark: a producer (worker thread) pushing
/// response bytes blocks once this much is queued and unread, so a client
/// that stops draining cannot balloon server memory.
const OUT_HIGH_WATER: usize = 1 << 20;
/// Resume mark for paused upstream reads in router mode.
const OUT_LOW_WATER: usize = OUT_HIGH_WATER / 4;
/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// Grace period for in-flight requests when a shutdown is requested:
/// connections still waiting on a worker get this long before being torn
/// down mid-flight.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Shared handle through which producer threads reach into the loop: a
/// byte down the wakeup pipe plus a dirty-token list telling the loop
/// which connections have fresh outbound bytes.
pub(crate) struct LoopShared {
    waker: UnixStream,
    dirty: Mutex<Vec<u64>>,
}

impl LoopShared {
    /// Marks `token` as having new outbound bytes and wakes the loop.
    pub(crate) fn mark_dirty(&self, token: u64) {
        self.dirty.lock().expect("dirty mutex").push(token);
        self.wake();
    }

    /// Wakes the loop without marking anything dirty (shutdown, etc.).
    pub(crate) fn wake(&self) {
        // A full pipe already guarantees a pending wakeup.
        let _ = (&self.waker).write(&[1]);
    }
}

/// Creates the wakeup pipe shared between the loop and producers.
pub(crate) fn loop_shared() -> io::Result<(Arc<LoopShared>, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Arc::new(LoopShared {
            waker: tx,
            dirty: Mutex::new(Vec::new()),
        }),
        rx,
    ))
}

/// The shared half of one connection's outbound stream. The loop drains
/// it into the socket; a worker (or the router's upstream relay) fills it.
pub(crate) struct OutBuf {
    state: Mutex<OutState>,
    drained: Condvar,
}

struct OutState {
    buf: VecDeque<u8>,
    /// Producer finished: once `buf` drains, the connection closes.
    complete: bool,
    /// Connection torn down: producer writes fail from now on.
    closed: bool,
}

impl OutBuf {
    fn new() -> Arc<OutBuf> {
        Arc::new(OutBuf {
            state: Mutex::new(OutState {
                buf: VecDeque::new(),
                complete: false,
                closed: false,
            }),
            drained: Condvar::new(),
        })
    }

    /// Queues bytes from the loop thread itself (shed responses, proxy
    /// relays). Never blocks; loop-side producers bound memory by pausing
    /// their source instead.
    fn push_from_loop(&self, bytes: &[u8], complete: bool) {
        let mut state = self.state.lock().expect("out mutex");
        state.buf.extend(bytes);
        state.complete |= complete;
    }

    fn mark_complete(&self) {
        self.state.lock().expect("out mutex").complete = true;
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("out mutex");
        state.closed = true;
        self.drained.notify_all();
    }

    fn queued(&self) -> usize {
        self.state.lock().expect("out mutex").buf.len()
    }
}

/// The producer-side handle a worker writes response bytes through.
/// Implements [`Write`]; each write appends to the connection's [`OutBuf`]
/// and wakes the loop, blocking (backpressure) while the client is more
/// than a high-water mark behind. Writes fail with `BrokenPipe` once the
/// connection is gone — which is exactly what cancels a streaming batch
/// whose client disconnected.
pub(crate) struct OutHandle {
    token: u64,
    out: Arc<OutBuf>,
    shared: Arc<LoopShared>,
}

impl OutHandle {
    /// Signals that the response is complete; the loop closes the
    /// connection once the bytes are flushed.
    pub(crate) fn finish(&self) {
        self.out.mark_complete();
        self.shared.mark_dirty(self.token);
    }
}

impl Write for OutHandle {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self.out.state.lock().expect("out mutex");
        loop {
            if state.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection closed",
                ));
            }
            if state.buf.len() < OUT_HIGH_WATER {
                break;
            }
            // Client far behind: wait for the loop to drain (or close) the
            // buffer. The timeout guards against a lost wakeup, not logic.
            let (next, _) = self
                .out
                .drained
                .wait_timeout(state, Duration::from_millis(100))
                .expect("out mutex");
            state = next;
        }
        state.buf.extend(bytes);
        drop(state);
        self.shared.mark_dirty(self.token);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.shared.mark_dirty(self.token);
        Ok(())
    }
}

/// One inference job handed to the worker pool.
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) out: OutHandle,
}

/// What a connection is for.
enum Role {
    /// A client connection in serve mode: parse → dispatch → flush.
    Serve,
    /// A client connection in router mode; `upstream` is the token of the
    /// paired replica connection once one exists.
    Downstream { upstream: Option<u64> },
    /// A router→replica connection relaying a response to `downstream`.
    Upstream {
        downstream: u64,
        /// Response head accumulated until the blank line, so the
        /// `X-Bayonet-Replica` header can be injected.
        head: Vec<u8>,
        head_done: bool,
        replica: usize,
        /// Reading is paused because the downstream buffer is over the
        /// high-water mark.
        paused: bool,
    },
}

/// What the per-connection timer means right now.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Full request must arrive by the deadline (fixed at accept: a
    /// trickle of header bytes must not reset it).
    Read,
    /// Pending outbound bytes must make progress by the deadline
    /// (refreshed whenever the socket accepts bytes).
    Write,
    /// No deadline: request dispatched, waiting on the producer. Inference
    /// time is governed by per-request `timeout_ms`, not socket deadlines.
    None,
}

struct Conn {
    stream: TcpStream,
    role: Role,
    parser: Option<RequestParser>,
    out: Arc<OutBuf>,
    /// A request was dispatched (worker running or proxy leg in flight).
    dispatched: bool,
    timer: TimerKind,
    deadline: Instant,
}

/// Everything the loop needs, assembled by `server::start`.
pub(crate) struct LoopConfig {
    pub(crate) listener: TcpListener,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) io_timeout: Duration,
    pub(crate) max_connections: usize,
    /// Serve mode: the bounded job queue. `None` in router mode.
    pub(crate) jobs: Option<Sender<Job>>,
    /// Router mode: replica table and shard ring. `None` in serve mode.
    pub(crate) router: Option<RouterCore>,
    /// Shutdown flag; flip and wake to begin a graceful drain.
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// Whether a read pass over a connection should continue.
enum ReadOutcome {
    /// Keep reading this connection.
    More,
    /// Stop (connection gone, backpressured, or handled elsewhere).
    Stop,
}

pub(crate) struct EventLoop {
    cfg: LoopConfig,
    shared: Arc<LoopShared>,
    waker_rx: UnixStream,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    /// Deadline index: `(deadline, token)` for every armed timer.
    timers: BTreeSet<(Instant, u64)>,
    next_token: u64,
    shutting_down: Option<Instant>,
}

impl EventLoop {
    pub(crate) fn new(
        cfg: LoopConfig,
        shared: Arc<LoopShared>,
        waker_rx: UnixStream,
    ) -> io::Result<EventLoop> {
        let poller = Poller::new()?;
        cfg.listener.set_nonblocking(true)?;
        poller.add(cfg.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;
        Ok(EventLoop {
            cfg,
            shared,
            waker_rx,
            poller,
            conns: HashMap::new(),
            timers: BTreeSet::new(),
            next_token: TOKEN_FIRST_CONN,
            shutting_down: None,
        })
    }

    /// Runs until shutdown is signalled and in-flight work has drained.
    pub(crate) fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::with_capacity(1024);
        loop {
            let timeout = self.next_timeout();
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.cfg.metrics.record_wakeups(1);

            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => self.conn_ready(token, ev),
                }
            }

            // Connections whose producers queued new outbound bytes.
            let dirty: Vec<u64> =
                std::mem::take(&mut *self.shared.dirty.lock().expect("dirty mutex"));
            for token in dirty {
                self.flush_conn(token);
            }

            self.fire_timers();

            if self.cfg.shutdown.load(Ordering::SeqCst) {
                if self.shutting_down.is_none() {
                    self.begin_shutdown();
                }
                let grace_over = self
                    .shutting_down
                    .is_some_and(|since| since.elapsed() > SHUTDOWN_GRACE);
                if self.conns.is_empty() || grace_over {
                    break;
                }
            }
        }
        // Tear down whatever is left so gauges return to zero.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.teardown(token);
        }
    }

    /// Poll timeout: until the next armed deadline, or forever.
    fn next_timeout(&self) -> Option<Duration> {
        // During a shutdown drain, poll in short beats so the exit
        // condition is re-checked even with no socket activity.
        let drain_beat = self.shutting_down.map(|_| Duration::from_millis(50));
        let next = self
            .timers
            .iter()
            .next()
            .map(|(deadline, _)| deadline.saturating_duration_since(Instant::now()));
        match (next, drain_beat) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutting_down = Some(Instant::now());
        self.poller.remove(self.cfg.listener.as_raw_fd());
        // Idle connections (no request dispatched, nothing to flush) are
        // torn down at once; dispatched ones get the grace period.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dispatched && c.out.queued() == 0)
            .map(|(token, _)| *token)
            .collect();
        for token in idle {
            self.teardown(token);
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        while matches!((&self.waker_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    fn accept_ready(&mut self) {
        loop {
            match self.cfg.listener.accept() {
                Ok((stream, _addr)) => self.accept_one(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (ECONNABORTED, EMFILE under
                // pressure): stop for this readiness edge and retry on the
                // next one.
                Err(_) => break,
            }
        }
    }

    fn accept_one(&mut self, stream: TcpStream) {
        if self.shutting_down.is_some() {
            return; // listener already deregistered; drop stragglers
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        self.cfg.metrics.conn_opened();

        let role = if self.cfg.router.is_some() {
            Role::Downstream { upstream: None }
        } else {
            Role::Serve
        };
        let mut conn = Conn {
            stream,
            role,
            parser: Some(RequestParser::new()),
            out: OutBuf::new(),
            dispatched: false,
            timer: TimerKind::Read,
            deadline: Instant::now() + self.cfg.io_timeout,
        };

        // Over the connection cap: answer 503 immediately, same framing as
        // queue shed, and close once flushed.
        if self.conns.len() >= self.cfg.max_connections {
            self.cfg.metrics.record_conn_shed();
            self.cfg
                .metrics
                .record_request("_conn_cap", 503, Duration::ZERO);
            conn.out.push_from_loop(&overloaded_response(), true);
            conn.parser = None;
            conn.dispatched = true;
            conn.timer = TimerKind::Write;
        }

        if self
            .poller
            .add(conn.stream.as_raw_fd(), token, Interest::BOTH)
            .is_err()
        {
            self.cfg.metrics.conn_closed();
            return;
        }
        self.timers.insert((conn.deadline, token));
        self.conns.insert(token, conn);
        // The socket may already hold the whole request; edge triggering
        // means we must not wait for another readable event.
        self.read_conn(token);
        self.flush_conn(token);
    }

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        if !self.conns.contains_key(&token) {
            return; // stale event for an already-closed connection
        }
        if ev.readable || ev.hangup {
            self.read_conn(token);
        }
        if ev.writable || ev.hangup {
            self.flush_conn(token);
        }
    }

    /// Reads until `WouldBlock`, feeding the connection's state machine.
    fn read_conn(&mut self, token: u64) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let read = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if matches!(conn.role, Role::Upstream { paused: true, .. }) {
                    return; // backpressured; resumed by flush_conn
                }
                conn.stream.read(&mut chunk)
            };
            match read {
                Ok(0) => {
                    self.read_eof(token);
                    return;
                }
                Ok(n) => match self.read_bytes(token, &chunk[..n]) {
                    ReadOutcome::More => {}
                    ReadOutcome::Stop => return,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.conn_failed(token);
                    return;
                }
            }
        }
    }

    /// Handles fresh bytes on `token`.
    fn read_bytes(&mut self, token: u64, bytes: &[u8]) -> ReadOutcome {
        if matches!(
            self.conns.get(&token).map(|c| &c.role),
            Some(Role::Upstream { .. })
        ) {
            return self.relay_upstream(token, bytes);
        }

        enum Parsed {
            More,
            Done(Request),
            Failed(RequestError),
        }
        let parsed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return ReadOutcome::Stop;
            };
            match conn.parser.as_mut() {
                // Already dispatched: pipelined extra bytes are read and
                // discarded (the connection closes after one exchange).
                None => Parsed::More,
                Some(parser) => match parser.feed(bytes) {
                    Ok(ParseStatus::NeedMore) => Parsed::More,
                    Ok(ParseStatus::Complete(request)) => {
                        conn.parser = None;
                        Parsed::Done(request)
                    }
                    Err(e) => {
                        conn.parser = None;
                        Parsed::Failed(e)
                    }
                },
            }
        };
        match parsed {
            Parsed::More => ReadOutcome::More,
            Parsed::Done(request) => {
                self.dispatch(token, request);
                ReadOutcome::More
            }
            Parsed::Failed(e) => {
                self.answer_parse_error(token, &e);
                ReadOutcome::More
            }
        }
    }

    fn read_eof(&mut self, token: u64) {
        enum Eof {
            /// Replica finished its response: complete the downstream
            /// stream, retire the upstream leg.
            UpstreamDone(u64),
            /// Clean pre-request EOF: a probe, not worth answering.
            Probe,
            /// Head or body cut off mid-transfer: a torn request.
            Torn,
            /// Request already dispatched; the client half-closed. Keep
            /// the connection: the response may still be deliverable, and
            /// a full disconnect surfaces as a write error.
            Ignore,
        }
        let eof = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            match &conn.role {
                Role::Upstream { downstream, .. } => Eof::UpstreamDone(*downstream),
                Role::Serve | Role::Downstream { .. } => match &conn.parser {
                    Some(p) if p.is_empty() => Eof::Probe,
                    Some(_) => Eof::Torn,
                    None => Eof::Ignore,
                },
            }
        };
        match eof {
            Eof::UpstreamDone(downstream) => {
                if let Some(down) = self.conns.get_mut(&downstream) {
                    down.out.mark_complete();
                }
                self.teardown(token);
                self.flush_conn(downstream);
            }
            Eof::Probe => self.teardown(token),
            Eof::Torn => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.parser = None;
                }
                self.answer_parse_error(token, &RequestError::Malformed("truncated request head"));
            }
            Eof::Ignore => {}
        }
    }

    fn answer_parse_error(&mut self, token: u64, err: &RequestError) {
        let response = match err {
            RequestError::Io(_) => {
                self.conn_failed(token);
                return;
            }
            RequestError::TooLarge => Response::json(
                413,
                r#"{"ok":false,"error":{"kind":"too_large","message":"request exceeds size limits"}}"#,
            ),
            RequestError::Malformed(_) => Response::json(
                400,
                format!(r#"{{"ok":false,"error":{{"kind":"bad_request","message":"{err}"}}}}"#),
            ),
        };
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.dispatched = true;
            conn.out.push_from_loop(&response_bytes(&response), true);
        }
        self.retime(token, TimerKind::Write);
        self.flush_conn(token);
    }

    fn dispatch(&mut self, token: u64, request: Request) {
        // Request fully received: the read deadline has served its
        // purpose. A write deadline arms once response bytes are pending.
        self.retime(token, TimerKind::None);
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.dispatched = true;
        }

        if self.cfg.router.is_some() {
            self.route(token, request);
            return;
        }

        let out = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            OutHandle {
                token,
                out: Arc::clone(&conn.out),
                shared: Arc::clone(&self.shared),
            }
        };
        let jobs = self.cfg.jobs.as_ref().expect("serve mode has a job queue");
        match jobs.try_send(Job { request, out }) {
            Ok(()) => {
                self.cfg.metrics.queue_depth_add(1);
            }
            Err(TrySendError::Full(job)) => {
                // Same shed contract as before: an immediate, fully framed
                // 503 with Retry-After, never queued latency.
                self.cfg.metrics.record_conn_shed();
                self.cfg
                    .metrics
                    .record_request("_queue", 503, Duration::ZERO);
                job.out.out.push_from_loop(&overloaded_response(), true);
                self.retime(token, TimerKind::Write);
                self.flush_conn(token);
            }
            Err(TrySendError::Disconnected(_)) => self.teardown(token),
        }
    }

    /// Router mode: answer locally or open an upstream leg to a replica.
    fn route(&mut self, token: u64, request: Request) {
        let local = {
            let router = self.cfg.router.as_ref().expect("router mode");
            router.respond_locally(&request, &self.cfg.metrics)
        };
        if let Some(response) = local {
            self.respond_now(token, &response);
            return;
        }

        let (replica, addr) = {
            let router = self.cfg.router.as_ref().expect("router mode");
            router.pick(&request)
        };
        self.cfg.metrics.record_routed(replica);
        let upstream = match connect_upstream(addr) {
            Ok(stream) => stream,
            Err(_) => {
                let resp = Response::json(
                    503,
                    format!(
                        r#"{{"ok":false,"error":{{"kind":"replica_unavailable","message":"replica {replica} is not reachable"}}}}"#
                    ),
                )
                .with_header("Retry-After", "1");
                self.respond_now(token, &resp);
                return;
            }
        };

        let up_token = self.next_token;
        self.next_token += 1;
        let up_out = OutBuf::new();
        up_out.push_from_loop(&request_bytes(&request), false);
        let up_conn = Conn {
            stream: upstream,
            role: Role::Upstream {
                downstream: token,
                head: Vec::new(),
                head_done: false,
                replica,
                paused: false,
            },
            parser: None,
            out: up_out,
            dispatched: true,
            timer: TimerKind::None,
            deadline: Instant::now(),
        };
        if self
            .poller
            .add(up_conn.stream.as_raw_fd(), up_token, Interest::BOTH)
            .is_err()
        {
            self.teardown(token);
            return;
        }
        self.conns.insert(up_token, up_conn);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.role = Role::Downstream {
                upstream: Some(up_token),
            };
        }
        self.flush_conn(up_token);
        self.read_conn(up_token);
    }

    /// Queues a loop-generated response and starts flushing it.
    fn respond_now(&mut self, token: u64, response: &Response) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.out.push_from_loop(&response_bytes(response), true);
        }
        self.retime(token, TimerKind::Write);
        self.flush_conn(token);
    }

    /// Feeds replica response bytes into the paired downstream buffer,
    /// injecting the `X-Bayonet-Replica` header at the end of the head.
    fn relay_upstream(&mut self, token: u64, bytes: &[u8]) -> ReadOutcome {
        enum Relay {
            Forward(u64, Vec<u8>),
            Buffering,
            Broken(u64),
        }
        let relay = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return ReadOutcome::Stop;
            };
            let Role::Upstream {
                downstream,
                head,
                head_done,
                replica,
                ..
            } = &mut conn.role
            else {
                return ReadOutcome::Stop;
            };
            if *head_done {
                Relay::Forward(*downstream, bytes.to_vec())
            } else {
                head.extend_from_slice(bytes);
                if let Some(end) = find_subslice(head, b"\r\n\r\n") {
                    let mut injected = Vec::with_capacity(head.len() + 32);
                    injected.extend_from_slice(&head[..end + 2]);
                    injected.extend_from_slice(
                        format!("X-Bayonet-Replica: {replica}\r\n\r\n").as_bytes(),
                    );
                    injected.extend_from_slice(&head[end + 4..]);
                    *head_done = true;
                    let downstream = *downstream;
                    head.clear();
                    head.shrink_to_fit();
                    Relay::Forward(downstream, injected)
                } else if head.len() > MAX_HEAD_BYTES {
                    // A replica never sends an oversized head; treat it as
                    // a protocol failure and drop both legs.
                    Relay::Broken(*downstream)
                } else {
                    Relay::Buffering
                }
            }
        };
        match relay {
            Relay::Buffering => ReadOutcome::More,
            Relay::Broken(downstream) => {
                self.teardown(token);
                self.teardown(downstream);
                ReadOutcome::Stop
            }
            Relay::Forward(downstream, payload) => {
                let pushed = {
                    match self.conns.get_mut(&downstream) {
                        Some(down) => {
                            down.out.push_from_loop(&payload, false);
                            Some(down.out.queued() >= OUT_HIGH_WATER)
                        }
                        None => None,
                    }
                };
                let Some(backlogged) = pushed else {
                    // Client went away: drop the upstream leg too.
                    self.teardown(token);
                    return ReadOutcome::Stop;
                };
                self.flush_conn(downstream);
                if backlogged {
                    if let Some(up) = self.conns.get_mut(&token) {
                        if let Role::Upstream { paused, .. } = &mut up.role {
                            *paused = true;
                        }
                    }
                    return ReadOutcome::Stop;
                }
                // flush_conn may have torn down both legs on a write error.
                if self.conns.contains_key(&token) {
                    ReadOutcome::More
                } else {
                    ReadOutcome::Stop
                }
            }
        }
    }

    /// Drains the outbound buffer into the socket until `WouldBlock`,
    /// closing the connection when its response is complete and flushed.
    fn flush_conn(&mut self, token: u64) {
        let (progress, empty, complete, failed) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut state = conn.out.state.lock().expect("out mutex");
            let mut progress = false;
            let mut failed = false;
            while !state.buf.is_empty() {
                let (front, _) = state.buf.as_slices();
                match conn.stream.write(front) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        state.buf.drain(..n);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if progress {
                conn.out.drained.notify_all();
            }
            (progress, state.buf.is_empty(), state.complete, failed)
        };

        if failed {
            self.conn_failed(token);
            return;
        }
        if empty && complete {
            self.finish_conn(token);
            return;
        }

        // Timer upkeep: pending bytes arm (or refresh, on progress) the
        // write deadline; an empty buffer on a dispatched connection waits
        // on its producer with no socket deadline.
        let timer = self.conns.get(&token).map(|c| (c.timer, c.dispatched));
        if let Some((timer, dispatched)) = timer {
            if !empty {
                if progress || timer != TimerKind::Write {
                    self.retime(token, TimerKind::Write);
                }
            } else if dispatched && timer == TimerKind::Write {
                self.retime(token, TimerKind::None);
            }
        }

        // Downstream drained below the low-water mark: resume a paused
        // upstream leg.
        let resumable = self.conns.get(&token).and_then(|c| match &c.role {
            Role::Downstream { upstream: Some(up) } if c.out.queued() < OUT_LOW_WATER => Some(*up),
            _ => None,
        });
        if let Some(up_token) = resumable {
            let mut resumed = false;
            if let Some(up) = self.conns.get_mut(&up_token) {
                if let Role::Upstream { paused, .. } = &mut up.role {
                    if *paused {
                        *paused = false;
                        resumed = true;
                    }
                }
            }
            if resumed {
                self.read_conn(up_token);
            }
        }
    }

    /// A transport failure: the peer is gone. Tears down the connection
    /// and its proxy twin (a response with no client, or a client whose
    /// replica died, has nowhere to go).
    fn conn_failed(&mut self, token: u64) {
        let peer = self.linked_peer(token);
        self.teardown(token);
        if let Some(peer) = peer {
            self.teardown(peer);
        }
    }

    /// Graceful end of exchange: response flushed and complete.
    fn finish_conn(&mut self, token: u64) {
        self.teardown(token);
    }

    fn linked_peer(&self, token: u64) -> Option<u64> {
        match &self.conns.get(&token)?.role {
            Role::Downstream { upstream } => *upstream,
            Role::Upstream { downstream, .. } => Some(*downstream),
            Role::Serve => None,
        }
    }

    /// Rearms (or disarms) the connection's deadline.
    fn retime(&mut self, token: u64, kind: TimerKind) {
        let io_timeout = self.cfg.io_timeout;
        let stale = self
            .conns
            .get(&token)
            .and_then(|conn| (conn.timer != TimerKind::None).then_some((conn.deadline, token)));
        if let Some(stale) = stale {
            self.timers.remove(&stale);
        }
        let armed = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.timer = kind;
            if kind != TimerKind::None {
                conn.deadline = Instant::now() + io_timeout;
                Some((conn.deadline, token))
            } else {
                None
            }
        };
        if let Some(armed) = armed {
            self.timers.insert(armed);
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        loop {
            let Some(&(deadline, token)) = self.timers.iter().next() else {
                return;
            };
            if deadline > now {
                return;
            }
            self.timers.remove(&(deadline, token));
            let kind = match self.conns.get(&token) {
                Some(conn) if conn.deadline == deadline => conn.timer,
                _ => continue, // re-armed or gone; stale index entry
            };
            match kind {
                TimerKind::None => {}
                TimerKind::Read => {
                    // Slow loris: the request never completed. Answer 408
                    // and close; the response write gets one io_timeout of
                    // its own.
                    self.cfg.metrics.record_read_timeout();
                    self.cfg.metrics.record_request("_io", 408, Duration::ZERO);
                    {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            continue;
                        };
                        conn.parser = None;
                        conn.dispatched = true;
                        conn.out.push_from_loop(
                            &response_bytes(&Response::json(
                                408,
                                r#"{"ok":false,"error":{"kind":"timeout","message":"request did not arrive within the read deadline"}}"#,
                            )),
                            true,
                        );
                    }
                    self.retime(token, TimerKind::Write);
                    self.flush_conn(token);
                }
                TimerKind::Write => {
                    self.cfg.metrics.record_write_timeout();
                    self.conn_failed(token);
                }
            }
        }
    }

    fn teardown(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.timer != TimerKind::None {
            self.timers.remove(&(conn.deadline, token));
        }
        self.poller.remove(conn.stream.as_raw_fd());
        // Unblock and fail any producer still writing to this connection;
        // for a streaming batch this is what propagates cancellation.
        conn.out.close();
        // Upstream legs are internal: only client-facing connections count
        // in the open-connections gauge.
        if !matches!(conn.role, Role::Upstream { .. }) {
            self.cfg.metrics.conn_closed();
        }
        match conn.role {
            // Client gone: the replica leg serves nobody.
            Role::Downstream { upstream: Some(up) } => self.teardown(up),
            // Replica leg gone: detach the client so it does not dangle.
            Role::Upstream { downstream, .. } => {
                if let Some(down) = self.conns.get_mut(&downstream) {
                    if let Role::Downstream { upstream } = &mut down.role {
                        if *upstream == Some(token) {
                            *upstream = None;
                        }
                    }
                }
            }
            _ => {}
        }
        // `conn.stream` drops here, closing the fd.
    }
}

/// The serialized bytes of a buffered [`Response`].
fn response_bytes(response: &Response) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(response.body.len() + 256);
    response
        .write_to(&mut bytes)
        .expect("serializing to a Vec cannot fail");
    bytes
}

/// The canonical overload response (same framing the old accept loop
/// wrote): a complete buffered `503` with `Retry-After`.
fn overloaded_response() -> Vec<u8> {
    response_bytes(
        &Response::json(
            503,
            r#"{"ok":false,"error":{"kind":"overloaded","message":"job queue is full"}}"#,
        )
        .with_header("Retry-After", "1"),
    )
}

/// Re-serializes a parsed request for proxying to a replica. The parse is
/// lossless for the header subset this server accepts, so replicas see an
/// equivalent request; `Connection: close` framing holds by construction.
fn request_bytes(request: &Request) -> Vec<u8> {
    let mut head = format!("{} {} HTTP/1.1\r\n", request.method, request.path);
    let mut has_length = false;
    for (name, value) in &request.headers {
        if name == "content-length" {
            has_length = true;
        }
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !has_length && !request.body.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", request.body.len()));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&request.body);
    bytes
}

/// Opens a connection to a replica. Replicas are local processes with an
/// event-loop accept path, so the blocking connect completes immediately
/// in practice; the socket switches to nonblocking before registration.
fn connect_upstream(addr: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nonblocking(true)?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}
