//! The Bayonet network substrate: executable semantics of probabilistic
//! networks (PLDI'18, §3).
//!
//! This crate turns a parsed Bayonet program into an executable [`Model`]
//! and implements the paper's operational semantics:
//!
//! * **Local semantics** (Figure 5) — [`run_handler`] executes one node's
//!   packet-processing program to completion, parameterized by a
//!   [`ChoiceDriver`] so the same interpreter serves exact enumeration and
//!   sampling.
//! * **Global semantics** (Figure 7) — [`deliver`] implements `(Fwd, i)`;
//!   enabledness and termination live on [`GlobalConfig`].
//! * **Schedulers** (Figure 6) — [`UniformScheduler`],
//!   [`DeterministicScheduler`], [`WeightedScheduler`], [`RotorScheduler`].
//!
//! The inference engines live in `bayonet-exact` and `bayonet-approx`; the
//! user-facing API in the `bayonet` crate.
//!
//! # Examples
//!
//! ```
//! use bayonet_lang::parse;
//! use bayonet_net::compile;
//!
//! let program = parse(r#"
//!     packet_fields { dst }
//!     topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
//!     programs { A -> fwd_all, B -> count }
//!     init { packet -> (A, pt1); }
//!     query expectation(n@B);
//!     def fwd_all(pkt, pt) { fwd(1); }
//!     def count(pkt, pt) state n(0) { n = n + 1; drop; }
//! "#)?;
//! let model = compile(&program)?;
//! assert_eq!(model.num_nodes(), 2);
//! assert_eq!(model.link_dest(0, 1), Some((1, 1)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the `poll` module is the one sanctioned
// exception — raw epoll/rlimit syscalls for the serve layer's event loop,
// each unsafe block a single documented FFI call. Everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod config;
mod deadline;
mod error;
mod fsio;
mod global;
mod handler;
pub mod opt;
mod poll;
mod queue;
mod scheduler;
mod value;

pub use compile::{
    compile, CExpr, CStmt, CompileError, CompiledProgram, CompiledQuery, InitPacketSpec, Model,
    ParamWatch, QExpr, QueryKind, SchedKind, DEFAULT_LOCAL_STEP_LIMIT, DEFAULT_QUEUE_CAPACITY,
};
pub use config::{Action, GlobalConfig, NodeConfig};
pub use deadline::{CancelHandle, Deadline};
pub use error::SemanticsError;
pub use fsio::{atomic_write, fsync_dir};
pub use global::{deliver, initial_config};
pub use handler::{
    apply_binop, build_init_packet, compare, eval_query_expr, eval_state_init, run_handler,
    truth_of, ChoiceDriver, HandlerOutcome, NoChoiceDriver,
};
pub use poll::{nofile_limit, open_fd_count, raise_nofile_limit, Interest, PollEvent, Poller};
pub use queue::{Packet, PktQueue, QueueEntry};
pub use scheduler::{
    scheduler_for, DeterministicScheduler, RotorScheduler, Scheduler, UniformScheduler,
    WeightedScheduler,
};
pub use value::{DisplayVal, Val};
