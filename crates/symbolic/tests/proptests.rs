//! Property tests for the symbolic guard machinery: Fourier–Motzkin
//! soundness/completeness on random linear systems and canonical-form laws.

use bayonet_num::{Rat, Sign};
use bayonet_symbolic::{
    check_witness, enumerate_cells, feasibility, Feasibility, Guard, LinExpr, ParamTable,
};
use proptest::prelude::*;

const NVARS: usize = 3;

fn make_params() -> (ParamTable, Vec<LinExpr>) {
    let mut t = ParamTable::new();
    let vars = (0..NVARS)
        .map(|i| LinExpr::param(t.intern(&format!("p{i}"))))
        .collect();
    (t, vars)
}

prop_compose! {
    /// A random small-coefficient linear expression over NVARS parameters.
    fn arb_linexpr()(coeffs in proptest::collection::vec(-3i64..=3, NVARS),
                     konst in -4i64..=4) -> Vec<i64> {
        let mut v = coeffs;
        v.push(konst);
        v
    }
}

fn build_expr(spec: &[i64], vars: &[LinExpr]) -> LinExpr {
    let mut e = LinExpr::constant(Rat::int(spec[NVARS]));
    for (i, &c) in spec[..NVARS].iter().enumerate() {
        e = e.add(&vars[i].scale(&Rat::int(c)));
    }
    e
}

fn build_guard(specs: &[(Vec<i64>, i8)], vars: &[LinExpr]) -> Option<Guard> {
    let mut g = Guard::top();
    for (spec, s) in specs {
        let sign = match s {
            -1 => Sign::Minus,
            0 => Sign::Zero,
            _ => Sign::Plus,
        };
        g = g.assume_sign(&build_expr(spec, vars), sign)?;
    }
    Some(g)
}

proptest! {
    /// If FM says SAT, the returned witness really satisfies the guard.
    #[test]
    fn fm_witnesses_are_valid(
        specs in proptest::collection::vec((arb_linexpr(), -1i8..=1), 1..6)
    ) {
        let (_, vars) = make_params();
        if let Some(g) = build_guard(&specs, &vars) {
            if let Feasibility::Sat(w) = feasibility(&g) {
                prop_assert!(check_witness(&g, &w), "invalid witness for {:?}", g);
            }
        }
    }

    /// If a random rational point satisfies the guard, FM must say SAT
    /// (completeness direction against a concrete witness).
    #[test]
    fn fm_never_rejects_satisfiable(
        specs in proptest::collection::vec((arb_linexpr(), 0usize..1), 1..5),
        point in proptest::collection::vec(-5i64..=5, NVARS)
    ) {
        let (_, vars) = make_params();
        // Derive each atom's sign from the point itself, so the guard is
        // satisfied by construction.
        let mut g = Guard::top();
        for (spec, _) in &specs {
            let e = build_expr(spec, &vars);
            let v = e.eval(&|p| Rat::int(point[p.index()]));
            match g.assume_sign(&e, v.sign()) {
                Some(next) => g = next,
                None => return Ok(()), // cannot happen: signs are consistent
            }
        }
        prop_assert!(feasibility(&g).is_sat());
    }

    /// Canonicalization is idempotent and scale-invariant.
    #[test]
    fn canonicalize_laws(spec in arb_linexpr(), k in 1i64..5) {
        let (_, vars) = make_params();
        let e = build_expr(&spec, &vars);
        if e.is_constant() { return Ok(()); }
        let (c1, _) = e.canonicalize();
        let (c2, _) = c1.canonicalize();
        prop_assert_eq!(&c1, &c2);
        let (c3, f3) = e.scale(&Rat::int(k)).canonicalize();
        prop_assert_eq!(&c1, &c3);
        let (c4, f4) = e.scale(&Rat::int(-k)).canonicalize();
        prop_assert_eq!(&c1, &c4);
        prop_assert_ne!(f3, f4);
    }

    /// Every point lies in exactly one cell of any cell decomposition.
    #[test]
    fn cells_partition_points(
        specs in proptest::collection::vec(arb_linexpr(), 1..4),
        point in proptest::collection::vec(-5i64..=5, NVARS)
    ) {
        let (_, vars) = make_params();
        let exprs: Vec<_> = specs
            .iter()
            .map(|s| build_expr(s, &vars))
            .filter(|e| !e.is_constant())
            .collect();
        let cells = enumerate_cells(&exprs);
        let containing = cells
            .iter()
            .filter(|c| {
                c.guard().atoms().all(|(e, s)| {
                    e.eval(&|p| Rat::int(point[p.index()])).sign() == s
                })
            })
            .count();
        prop_assert_eq!(containing, 1);
    }
}
