//! Exhaustive enumeration of probabilistic computations by replay.
//!
//! Running a handler is deterministic given the outcomes of its draws and
//! symbolic sign decisions. The [`ReplayDriver`] records the outcome
//! sequence (the *script*); when execution reaches a fresh choice point it
//! takes one outcome, registers the sibling prefixes for later exploration,
//! and keeps going. Driving the computation once per leaf enumerates the
//! entire choice tree with exact probabilities and symbolic guards — this is
//! the exact engine's counterpart of PSI's symbolic path enumeration.

use bayonet_num::{Rat, Sign};
use bayonet_symbolic::{feasibility, FeasibilityCache, Guard, LinExpr};

use bayonet_net::{ChoiceDriver, SemanticsError};

/// One recorded choice outcome.
#[derive(Clone, Debug)]
enum Choice {
    Flip(bool),
    Uniform(i64),
    Sign(Sign),
}

/// A [`ChoiceDriver`] that replays a script of choice outcomes, extending it
/// at the frontier and registering unexplored siblings.
#[derive(Debug)]
pub struct ReplayDriver<'a> {
    script: Vec<Choice>,
    pos: usize,
    /// Product of the probabilities of the replayed/extended choices.
    weight: Rat,
    /// Accumulated symbolic guard (base guard + sign assumptions made).
    guard: Guard,
    /// Sibling prefixes discovered at fresh choice points during this run.
    pending: Vec<Vec<Choice>>,
    /// Prune symbolically infeasible sign branches with Fourier–Motzkin.
    fm_pruning: bool,
    /// Memoized feasibility verdicts shared across the run, if any.
    cache: Option<&'a FeasibilityCache>,
}

impl<'a> ReplayDriver<'a> {
    fn new(
        script: Vec<Choice>,
        base_guard: Guard,
        fm_pruning: bool,
        cache: Option<&'a FeasibilityCache>,
    ) -> Self {
        ReplayDriver {
            script,
            pos: 0,
            weight: Rat::one(),
            guard: base_guard,
            pending: Vec::new(),
            fm_pruning,
            cache,
        }
    }

    fn next_scripted(&mut self) -> Option<Choice> {
        let c = self.script.get(self.pos).cloned();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn prefix_with(&self, alt: Choice) -> Vec<Choice> {
        let mut prefix = self.script[..self.pos].to_vec();
        prefix.pop(); // this run already appended/replayed the chosen branch
        prefix.push(alt);
        prefix
    }
}

impl ChoiceDriver for ReplayDriver<'_> {
    fn flip(&mut self, p: &Rat) -> Result<bool, SemanticsError> {
        match self.next_scripted() {
            Some(Choice::Flip(b)) => {
                if b {
                    self.weight *= p;
                } else {
                    self.weight *= &p.complement();
                }
                Ok(b)
            }
            Some(_) => unreachable!("replay mismatch: expected a flip"),
            None => {
                // Fresh point: take `true`, register `false`.
                self.script.push(Choice::Flip(true));
                self.pos += 1;
                self.pending.push(self.prefix_with(Choice::Flip(false)));
                self.weight *= p;
                Ok(true)
            }
        }
    }

    fn uniform_int(&mut self, lo: i64, hi: i64) -> Result<i64, SemanticsError> {
        let n = hi - lo + 1;
        match self.next_scripted() {
            Some(Choice::Uniform(v)) => {
                self.weight *= &Rat::ratio(1, n);
                Ok(v)
            }
            Some(_) => unreachable!("replay mismatch: expected a uniform draw"),
            None => {
                self.script.push(Choice::Uniform(lo));
                self.pos += 1;
                for v in lo + 1..=hi {
                    self.pending.push(self.prefix_with(Choice::Uniform(v)));
                }
                self.weight *= &Rat::ratio(1, n);
                Ok(lo)
            }
        }
    }

    fn decide_sign(&mut self, expr: &LinExpr) -> Result<Sign, SemanticsError> {
        // A sign already implied by the guard costs nothing and must not
        // consume script (execution is deterministic given the guard).
        if let Some(s) = self.guard.known_sign(expr) {
            return Ok(s);
        }
        match self.next_scripted() {
            Some(Choice::Sign(s)) => {
                self.guard = self
                    .guard
                    .assume_sign(expr, s)
                    .expect("replayed sign was consistent on first exploration");
                Ok(s)
            }
            Some(_) => unreachable!("replay mismatch: expected a sign decision"),
            None => {
                // Fresh trichotomy split: keep the first feasible sign,
                // register the other feasible signs as siblings.
                let guard = &self.guard;
                let fm_pruning = self.fm_pruning;
                let cache = self.cache;
                let mut feasible = [Sign::Minus, Sign::Zero, Sign::Plus]
                    .into_iter()
                    .filter_map(move |s| {
                        let g = guard.assume_sign(expr, s)?;
                        let sat = !fm_pruning
                            || match cache {
                                Some(c) => c.is_sat(&g),
                                None => feasibility(&g).is_sat(),
                            };
                        if !sat {
                            return None;
                        }
                        Some((s, g))
                    });
                let (first, first_guard) = feasible
                    .next()
                    .expect("at least one sign of any expression is feasible");
                self.script.push(Choice::Sign(first));
                self.pos += 1;
                for (s, _) in feasible {
                    self.pending.push(self.prefix_with(Choice::Sign(s)));
                }
                self.guard = first_guard;
                Ok(first)
            }
        }
    }
}

/// One enumerated execution branch.
#[derive(Clone, Debug)]
pub struct Branch<T> {
    /// The computation's result on this branch.
    pub result: T,
    /// Probability of the branch (product of draw probabilities), relative
    /// to the computation's entry point.
    pub weight: Rat,
    /// Symbolic guard under which the branch is taken (extends the base
    /// guard).
    pub guard: Guard,
}

/// Enumerates every branch of a probabilistic computation.
///
/// `f` must be *deterministic given the driver's answers* (true for handler
/// execution and query evaluation). The sum of branch weights is 1 for each
/// consistent region of parameter space.
///
/// # Errors
///
/// Propagates the first [`SemanticsError`] any branch raises.
///
/// # Examples
///
/// ```
/// use bayonet_exact::enumerate_eval;
/// use bayonet_net::ChoiceDriver;
/// use bayonet_num::Rat;
/// use bayonet_symbolic::Guard;
///
/// // Two coin flips -> four branches of weight 1/4 each.
/// let branches = enumerate_eval(&Guard::top(), true, |d| {
///     let a = d.flip(&Rat::ratio(1, 2))?;
///     let b = d.flip(&Rat::ratio(1, 2))?;
///     Ok((a, b))
/// })?;
/// assert_eq!(branches.len(), 4);
/// assert!(branches.iter().all(|b| b.weight == Rat::ratio(1, 4)));
/// # Ok::<(), bayonet_net::SemanticsError>(())
/// ```
pub fn enumerate_eval<T>(
    base_guard: &Guard,
    fm_pruning: bool,
    f: impl FnMut(&mut ReplayDriver) -> Result<T, SemanticsError>,
) -> Result<Vec<Branch<T>>, SemanticsError> {
    enumerate_eval_cached(base_guard, fm_pruning, None, f)
}

/// [`enumerate_eval`] with the Fourier–Motzkin pruning checks routed
/// through a shared [`FeasibilityCache`].
///
/// The exact engine replays sibling branches from the root, so the same
/// guard prefixes are re-checked many times per enumeration; memoizing the
/// verdicts turns those repeats into hash lookups. Pass `None` to check
/// feasibility directly (identical behavior, no memoization).
pub fn enumerate_eval_cached<T>(
    base_guard: &Guard,
    fm_pruning: bool,
    cache: Option<&FeasibilityCache>,
    mut f: impl FnMut(&mut ReplayDriver) -> Result<T, SemanticsError>,
) -> Result<Vec<Branch<T>>, SemanticsError> {
    let mut out = Vec::new();
    let mut stack = vec![Vec::new()];
    while let Some(script) = stack.pop() {
        let mut driver = ReplayDriver::new(script, base_guard.clone(), fm_pruning, cache);
        let result = f(&mut driver)?;
        stack.append(&mut driver.pending);
        out.push(Branch {
            result,
            weight: driver.weight,
            guard: driver.guard,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flip_two_branches() {
        let branches = enumerate_eval(&Guard::top(), true, |d| d.flip(&Rat::ratio(1, 3))).unwrap();
        assert_eq!(branches.len(), 2);
        let total: Rat = branches.iter().fold(Rat::zero(), |acc, b| acc + &b.weight);
        assert_eq!(total, Rat::one());
        // true branch has weight 1/3, false 2/3.
        let t = branches.iter().find(|b| b.result).unwrap();
        assert_eq!(t.weight, Rat::ratio(1, 3));
    }

    #[test]
    fn uniform_enumerates_range() {
        let branches = enumerate_eval(&Guard::top(), true, |d| d.uniform_int(2, 5)).unwrap();
        let mut values: Vec<i64> = branches.iter().map(|b| b.result).collect();
        values.sort_unstable();
        assert_eq!(values, vec![2, 3, 4, 5]);
        assert!(branches.iter().all(|b| b.weight == Rat::ratio(1, 4)));
    }

    #[test]
    fn dependent_draws_form_a_tree() {
        // flip(1/2); if true then uniform(1..3) else nothing.
        let branches = enumerate_eval(&Guard::top(), true, |d| {
            if d.flip(&Rat::ratio(1, 2))? {
                d.uniform_int(1, 3)
            } else {
                Ok(0)
            }
        })
        .unwrap();
        assert_eq!(branches.len(), 4);
        let total: Rat = branches.iter().fold(Rat::zero(), |acc, b| acc + &b.weight);
        assert_eq!(total, Rat::one());
        let zero = branches.iter().find(|b| b.result == 0).unwrap();
        assert_eq!(zero.weight, Rat::ratio(1, 2));
    }

    #[test]
    fn sign_split_three_branches_with_guards() {
        use bayonet_symbolic::ParamTable;
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let branches = enumerate_eval(&Guard::top(), true, |d| d.decide_sign(&x)).unwrap();
        assert_eq!(branches.len(), 3);
        for b in &branches {
            assert_eq!(b.weight, Rat::one());
            assert_eq!(b.guard.known_sign(&x), Some(b.result));
        }
    }

    #[test]
    fn guard_implied_sign_does_not_split() {
        use bayonet_symbolic::ParamTable;
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let base = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
        // Asking twice for the same expression splits only the first time —
        // and here not at all, since the base guard already pins it.
        let branches = enumerate_eval(&base, true, |d| {
            let s1 = d.decide_sign(&x)?;
            let s2 = d.decide_sign(&x.scale(&Rat::int(2)))?;
            Ok((s1, s2))
        })
        .unwrap();
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].result, (Sign::Plus, Sign::Plus));
    }

    #[test]
    fn fm_pruning_removes_contradictory_combinations() {
        use bayonet_symbolic::ParamTable;
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let y = LinExpr::param(t.intern("y"));
        let z = LinExpr::param(t.intern("z"));
        // sign(x-y), sign(y-z), sign(x-z): 27 syntactic combinations, but
        // only 13 are order-consistent.
        let branches = enumerate_eval(&Guard::top(), true, |d| {
            let a = d.decide_sign(&x.sub(&y))?;
            let b = d.decide_sign(&y.sub(&z))?;
            let c = d.decide_sign(&x.sub(&z))?;
            Ok((a, b, c))
        })
        .unwrap();
        assert_eq!(branches.len(), 13);
        // Without pruning, all 27 would be explored (3 are then
        // syntactically consistent but semantically empty).
        let unpruned = enumerate_eval(&Guard::top(), false, |d| {
            let a = d.decide_sign(&x.sub(&y))?;
            let b = d.decide_sign(&y.sub(&z))?;
            let c = d.decide_sign(&x.sub(&z))?;
            Ok((a, b, c))
        })
        .unwrap();
        assert_eq!(unpruned.len(), 27);
    }

    #[test]
    fn cached_enumeration_matches_uncached() {
        use bayonet_symbolic::ParamTable;
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let y = LinExpr::param(t.intern("y"));
        let z = LinExpr::param(t.intern("z"));
        let run = |cache: Option<&FeasibilityCache>| {
            enumerate_eval_cached(&Guard::top(), true, cache, |d| {
                let a = d.decide_sign(&x.sub(&y))?;
                let b = d.decide_sign(&y.sub(&z))?;
                let c = d.decide_sign(&x.sub(&z))?;
                Ok((a, b, c))
            })
            .unwrap()
        };
        let plain = run(None);
        let cache = FeasibilityCache::new();
        let cached = run(Some(&cache));
        assert_eq!(plain.len(), cached.len());
        for (p, c) in plain.iter().zip(&cached) {
            assert_eq!(p.result, c.result);
            assert_eq!(p.weight, c.weight);
            assert_eq!(p.guard, c.guard);
        }
        let (_, misses) = cache.counts();
        assert!(misses > 0);
        // A second enumeration sharing the cache (as the engine does across
        // configs) answers every check from the memo table.
        let again = run(Some(&cache));
        assert_eq!(again.len(), cached.len());
        let (hits2, misses2) = cache.counts();
        assert_eq!(misses2, misses, "second run must not miss");
        assert!(hits2 >= misses, "expected cache hits, got {hits2}");
    }
}
