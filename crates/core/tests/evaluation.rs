//! End-to-end evaluation tests through the public API: every scenario of
//! the paper's §5 with its expected (or analytically forced) value.

use bayonet::scenarios::{
    self, bad_hash_posterior, load_balancing, reliability_strategy, strategy_posterior, LB_OBS_BAD,
    LB_OBS_GOOD,
};
use bayonet::{synthesize, ApproxOptions, Network, Objective, Rat, Sched};

fn rat(s: &str) -> Rat {
    s.parse().unwrap()
}

// ---- Table 1: congestion ----

#[test]
fn congestion_5_uniform_exact_matches_paper() {
    let n = scenarios::congestion_example(Sched::Uniform).unwrap();
    let report = n.exact().unwrap();
    // Paper §2.2 / Table 1 row 1: 0.4487 exactly.
    assert_eq!(
        *report.results[0].rat(),
        rat("30378810105265/67706637778944")
    );
}

#[test]
fn congestion_5_deterministic_is_one() {
    let n = scenarios::congestion_example(Sched::Deterministic).unwrap();
    let report = n.exact().unwrap();
    assert_eq!(*report.results[0].rat(), Rat::one()); // Table 1 row 2
                                                      // Expected packets received is deterministic under det. scheduling.
    assert_eq!(*report.results[1].rat(), Rat::int(2));
}

#[test]
fn congestion_6_uniform_exact_strictly_inside() {
    // Table 1 row 3 reports 0.4441 for the 6-node Figure 11(a) topology;
    // its exact construction is not fully pinned down in the paper, so we
    // assert the qualitative region and record the measured value in
    // EXPERIMENTS.md.
    let n = scenarios::congestion_chain(1, Sched::Uniform).unwrap();
    let report = n.exact().unwrap();
    let p = report.results[0].rat().clone();
    assert!(p > Rat::zero() && p < Rat::one(), "p = {p}");
    assert!((p.to_f64() - 0.4441).abs() < 0.15, "p = {}", p.to_f64());
}

#[test]
fn congestion_6_deterministic_is_one() {
    let n = scenarios::congestion_chain(1, Sched::Deterministic).unwrap();
    let report = n.exact().unwrap();
    assert_eq!(*report.results[0].rat(), Rat::one()); // Table 1 row 4
}

#[test]
fn congestion_30_deterministic_is_one() {
    // Table 1 row 5: 30 nodes (7 chained diamonds), deterministic.
    let n = scenarios::congestion_chain(7, Sched::Deterministic).unwrap();
    let report = n.exact().unwrap();
    assert_eq!(*report.results[0].rat(), Rat::one());
}

// ---- Table 1: reliability ----

#[test]
fn reliability_6_exact_is_9995() {
    // Table 1 rows 6–7: 0.9995 = 1 - (1/2)(1/1000).
    let n = scenarios::reliability_chain(1, &Rat::ratio(1, 1000), Sched::Uniform).unwrap();
    let report = n.exact().unwrap();
    assert_eq!(*report.results[0].rat(), Rat::ratio(1999, 2000));
}

#[test]
fn reliability_30_exact_is_9965() {
    // Table 1 rows 8–9: (1999/2000)^7 ≈ 0.9965 on the 30-node chain.
    let n = scenarios::reliability_chain(7, &Rat::ratio(1, 1000), Sched::Uniform).unwrap();
    let report = n.exact().unwrap();
    let expected = Rat::ratio(1999, 2000).pow(7);
    assert_eq!(*report.results[0].rat(), expected);
    assert!((report.results[0].to_f64() - 0.9965).abs() < 1e-4);
}

#[test]
fn reliability_6_smc_close() {
    let n = scenarios::reliability_chain(1, &Rat::ratio(1, 10), Sched::Uniform).unwrap();
    let est = n
        .smc(
            0,
            &ApproxOptions {
                particles: 2000,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
    assert!((est.value - 0.95).abs() < 0.02, "{est}");
}

// ---- Table 1: gossip ----

#[test]
fn gossip_4_exact_is_94_27_under_both_schedulers() {
    for sched in [Sched::Uniform, Sched::Deterministic] {
        let n = scenarios::gossip(4, sched).unwrap();
        let report = n.exact().unwrap();
        assert_eq!(*report.results[0].rat(), Rat::ratio(94, 27), "{sched:?}");
    }
}

#[test]
fn gossip_8_smc_runs() {
    // Scaled gossip goes through SMC (Table 1 rows 12–13 use K20/K30; the
    // bench harness runs those sizes — here a quick K8).
    let n = scenarios::gossip(8, Sched::Uniform).unwrap();
    let est = n
        .smc(
            0,
            &ApproxOptions {
                particles: 500,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
    // All nodes reachable; between 1 and 8 infected, mean well inside.
    assert!(est.value > 2.0 && est.value < 8.0, "{est}");
}

// ---- Figure 3: parameter synthesis ----

#[test]
fn figure3_synthesis_minimizes_on_the_balanced_cell() {
    let n = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    let synthesis = synthesize(&n, 0, Objective::Minimize).unwrap();
    assert_eq!(synthesis.result.cells.len(), 3);
    // Minimum congestion on COST_01 == COST_02 + COST_21 (ECMP balanced).
    assert_eq!(synthesis.value, rat("30378810105265/67706637778944"));
    assert!(
        synthesis.constraint.contains("== 0"),
        "{}",
        synthesis.constraint
    );
    // The witness satisfies the constraint: COST_01 - COST_02 - COST_21 = 0.
    let params = &n.model().params;
    let get = |name: &str| {
        synthesis
            .assignment
            .get(&params.lookup(name).unwrap())
            .cloned()
            .unwrap_or_else(Rat::zero)
    };
    assert_eq!(get("COST_01"), get("COST_02") + get("COST_21"));

    // And the other two Figure 3 cells carry the paper's exact fractions.
    let values: Vec<Rat> = synthesis
        .result
        .cells
        .iter()
        .map(|c| c.value.as_ref().unwrap().as_rat().unwrap().clone())
        .collect();
    assert_eq!(values[0], rat("491806403/1088391168"));
    assert_eq!(values[2], rat("2025575442161/4231664861184"));
}

// ---- §5.5: Bayesian reasoning with observations ----

#[test]
fn strategy_inference_obs_1_3_pins_rand() {
    let n = reliability_strategy(&[1, 3]).unwrap();
    let post = strategy_posterior(&n).unwrap();
    assert_eq!(post, [Rat::one(), Rat::zero(), Rat::zero()]);
}

#[test]
fn strategy_inference_obs_1_2_3_matches_paper_exactly() {
    let n = reliability_strategy(&[1, 2, 3]).unwrap();
    let post = strategy_posterior(&n).unwrap();
    // The paper's §5.5 exact posterior fractions, digit for digit.
    assert_eq!(post[0], rat("41922792469/95643630613"));
    assert_eq!(post[1], rat("26873856000/95643630613"));
    assert_eq!(post[2], rat("26846982144/95643630613"));
}

#[test]
fn load_balancing_bad_evidence_raises_posterior() {
    let n = load_balancing(LB_OBS_BAD).unwrap();
    let post = bad_hash_posterior(&n).unwrap();
    // Paper: 0.152. We measure 0.1522 with sub-sampling probability 1/2.
    assert!((post.to_f64() - 0.152).abs() < 0.001, "posterior {post}");
    assert!(post > Rat::ratio(1, 10)); // prior was 1/10: evidence raises it
}

#[test]
fn load_balancing_good_evidence_lowers_posterior() {
    let n = load_balancing(LB_OBS_GOOD).unwrap();
    let post = bad_hash_posterior(&n).unwrap();
    // The paper reports 0.004 but does not specify its sub-sampling
    // constant; with 1/2 we measure 0.0661. The direction (posterior drops
    // below the 1/10 prior) is the reproduced claim.
    assert!(post < Rat::ratio(1, 10), "posterior {post}");
    assert!((post.to_f64() - 0.0661).abs() < 0.001, "posterior {post}");
}

// ---- cross-checks ----

#[test]
fn psi_backend_agrees_on_congestion_example() {
    let n = scenarios::congestion_example(Sched::Deterministic).unwrap();
    let direct = n.exact().unwrap().results[0].rat().clone();
    let via_psi = n.infer_via_psi(0).unwrap();
    assert_eq!(direct, via_psi);
}

#[test]
fn generated_code_is_larger_than_bayonet_source() {
    // §5: Bayonet sources are ~2× smaller than generated PSI and ~10×
    // smaller than generated WebPPL.
    let n = scenarios::congestion_example(Sched::Uniform).unwrap();
    let bayonet_len = n.source().len();
    assert!(n.to_psi().len() > bayonet_len / 2);
    assert!(n.to_webppl().len() > bayonet_len / 2);
}

#[test]
fn warnings_surface_through_the_api() {
    let n = Network::from_source(
        r#"
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> a }
        query probability(1 == 1);
        def a(pkt, pt) { drop; }
        def unused(pkt, pt) { drop; }
        "#,
    )
    .unwrap();
    assert!(n
        .warnings()
        .iter()
        .any(|w| w.message.contains("never assigned")));
}

#[test]
fn integrity_errors_surface_through_the_api() {
    let err = Network::from_source(
        r#"
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a }
        query probability(1 == 1);
        def a(pkt, pt) { drop; }
        "#,
    )
    .unwrap_err();
    assert!(matches!(err, bayonet::Error::Check(_)));
}
