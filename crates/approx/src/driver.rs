//! Sampling choice driver and single-trace simulation.

use rand::rngs::StdRng;
use rand::Rng;

use bayonet_net::{
    deliver, run_handler, Action, ChoiceDriver, GlobalConfig, HandlerOutcome, Model, Scheduler,
    SemanticsError,
};
use bayonet_num::{Rat, Sign};
use bayonet_symbolic::LinExpr;

/// A [`ChoiceDriver`] that samples every draw with an RNG. Symbolic sign
/// decisions are errors: sampling requires all parameters to be bound.
#[derive(Debug)]
pub struct SampleDriver<'a> {
    rng: &'a mut StdRng,
}

impl<'a> SampleDriver<'a> {
    /// Wraps an RNG.
    pub fn new(rng: &'a mut StdRng) -> Self {
        SampleDriver { rng }
    }
}

impl ChoiceDriver for SampleDriver<'_> {
    fn flip(&mut self, p: &Rat) -> Result<bool, SemanticsError> {
        Ok(self.rng.gen::<f64>() < p.to_f64())
    }

    fn uniform_int(&mut self, lo: i64, hi: i64) -> Result<i64, SemanticsError> {
        Ok(self.rng.gen_range(lo..=hi))
    }

    fn decide_sign(&mut self, expr: &LinExpr) -> Result<Sign, SemanticsError> {
        Err(SemanticsError::SymbolicValueInConcreteContext(format!(
            "sampling cannot branch on the sign of a symbolic expression ({expr:?}); \
             bind all parameters before using approximate inference"
        )))
    }
}

/// Result of advancing one particle by one global step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// A step was taken (the config may now be terminal).
    Stepped,
    /// The configuration was already terminal; nothing happened.
    AlreadyTerminal,
    /// An `observe` failed during the step: the trace must be discarded.
    ObserveFailed,
}

/// Samples one global step (scheduler choice + action) of `cfg`.
///
/// # Errors
///
/// Propagates semantic errors from handler execution or delivery.
pub fn sample_step(
    model: &Model,
    scheduler: &dyn Scheduler,
    cfg: &mut GlobalConfig,
    rng: &mut StdRng,
) -> Result<StepOutcome, SemanticsError> {
    if cfg.is_terminal() {
        return Ok(StepOutcome::AlreadyTerminal);
    }
    let enabled = cfg.enabled_actions();
    let dist = scheduler.distribution(cfg.sched_state, &enabled, model.num_nodes());
    // Sample the action by its exact weights.
    let mut u = rng.gen::<f64>();
    let mut chosen = &dist[dist.len() - 1];
    for entry in &dist {
        let p = entry.1.to_f64();
        if u < p {
            chosen = entry;
            break;
        }
        u -= p;
    }
    let (action, _, sched_next) = chosen;
    cfg.sched_state = *sched_next;
    match *action {
        Action::Fwd(i) => {
            deliver(model, cfg, i)?;
        }
        Action::Run(i) => {
            let mut driver = SampleDriver::new(rng);
            let outcome = run_handler(model, i, &mut cfg.nodes[i], &mut driver)?;
            match outcome {
                HandlerOutcome::Completed => {}
                HandlerOutcome::AssertFailed => cfg.nodes[i].error = true,
                HandlerOutcome::ObserveFailed => return Ok(StepOutcome::ObserveFailed),
            }
        }
    }
    Ok(StepOutcome::Stepped)
}

/// Samples the initial configuration (state initializers + init packets).
///
/// # Errors
///
/// Propagates semantic errors from initializer evaluation.
pub fn sample_initial(model: &Model, rng: &mut StdRng) -> Result<GlobalConfig, SemanticsError> {
    let mut states = Vec::with_capacity(model.num_nodes());
    for node in 0..model.num_nodes() {
        let mut driver = SampleDriver::new(rng);
        states.push(bayonet_net::eval_state_init(
            model,
            &model.programs[node],
            &mut driver,
        )?);
    }
    bayonet_net::initial_config(model, states)
}
