//! The paper's §2 story end to end: compute the probability of congestion
//! for the running example, then leave the OSPF link costs symbolic and
//! *synthesize* cost assignments minimizing congestion (Figure 3, §2.3).
//!
//! Run with: `cargo run --release --example congestion_synthesis`

use bayonet::{scenarios, synthesize, Objective, Rat, Sched};

fn main() -> Result<(), bayonet::Error> {
    // --- Analysis with concrete costs (2, 1, 1): equal-cost paths, ECMP.
    let network = scenarios::congestion_example(Sched::Uniform)?;
    let report = network.exact()?;
    let p = report.results[0].rat();
    println!(
        "§2.2  probability(pkt_cnt@H1 < 3) = {p} ≈ {:.4}",
        p.to_f64()
    );
    println!(
        "      expected packets received    = {} ≈ {:.4}",
        report.results[1].rat(),
        report.results[1].to_f64()
    );

    // Check mode: is congestion below an operator threshold?
    let threshold = Rat::ratio(1, 2);
    println!(
        "      P(congestion) < 1/2?         {}",
        if *p < threshold { "yes" } else { "no" }
    );

    // Under the deterministic scheduler congestion is certain (Table 1).
    let det = scenarios::congestion_example(Sched::Deterministic)?;
    println!(
        "      deterministic scheduler      = {}",
        det.exact()?.results[0].rat()
    );

    // --- Synthesis: leave COST_01, COST_02, COST_21 symbolic (Figure 3).
    let symbolic = scenarios::congestion_example_symbolic(Sched::Uniform)?;
    let synthesis = synthesize(&symbolic, 0, Objective::Minimize)?;
    println!("\n§2.3  piecewise congestion probability (Figure 3):");
    for cell in &synthesis.result.cells {
        let value = cell.value.as_ref().unwrap().as_rat().unwrap();
        println!(
            "      {:<40}  {} ≈ {:.4}",
            cell.guard.display(&symbolic.model().params).to_string(),
            value,
            value.to_f64()
        );
    }
    println!(
        "\n      minimal congestion {:.4} when {}",
        synthesis.value.to_f64(),
        synthesis.constraint
    );
    print!("      synthesized concrete costs:");
    for (pid, v) in &synthesis.assignment {
        print!(" {} = {v}", symbolic.model().params.name(*pid));
    }
    println!();
    Ok(())
}
