//! Topology symmetry detection and frontier canonicalization.
//!
//! A *symmetry* of a compiled model is a node permutation `π` together with
//! a per-node port relabeling `σ_i` (one bijection per node, derived
//! uniquely from the link structure) such that relabeling every
//! configuration through `(π, σ)` commutes with the global step relation:
//!
//! * `π` maps each node to one running an equal program (`Arc` identity or
//!   structural equality), so handler behavior is literally the same code;
//! * links are preserved: `(i, p) ↔ (j, q)` implies
//!   `(π(i), σ_i(p)) ↔ (π(j), σ_j(q))`, and a port is linked at `i` iff its
//!   image is linked at `π(i)` (unlinked forwards error identically);
//! * port constants inside a program pin `σ`: a program that reads the
//!   arrival port anywhere is *rigid* (`σ_i` must be the identity), a
//!   `fwd(c)` pins `σ_i(c) = c`, and a `fwd(uniformInt(lo, hi))` requires
//!   `σ_i` to map `{lo..hi}` onto itself (each draw's error/success and
//!   destination correspond 1:1 across the pair);
//! * every declared query is invariant under `π` modulo commutativity and
//!   associativity of `+`, `*`, `and`, `or` and operand order of `==`/`!=`
//!   (exact rational arithmetic makes those reorderings value- and
//!   error-identical).
//!
//! Under a uniform scheduler (the enabled-action *set* permutes, and each
//! action keeps probability `1/|enabled|`) the step kernel then satisfies
//! `K(g·c, g·d) = K(c, d)`, so collapsing each frontier configuration to
//! the lexicographic minimum of its orbit and merging weights preserves
//! every query posterior, `Z`, and error mass bit-for-bit — for **any**
//! initial packet placement, because configurations are canonicalized from
//! the initial state onward and orbit masses evolve exactly.
//!
//! The engines additionally gate canonicalization at analysis time on the
//! runtime scheduler being permutation-invariant
//! ([`crate::Scheduler::permutation_invariant`], which a
//! [`crate::Network::set_scheduler`] override can break) and on the model
//! having no unbound parameters (symbolic state values would make query
//! case-split order depend on the chosen orbit representative).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use crate::compile::{CExpr, CStmt, CompiledProgram, Model, QExpr, SchedKind};
use crate::config::{GlobalConfig, NodeConfig};
use crate::queue::PktQueue;

/// Abort the backtracking search after this many extension steps; models
/// hitting it get a trivial group (sound, just unoptimized).
const SEARCH_BUDGET: usize = 200_000;

/// Largest group we keep. Canonicalization applies every element per
/// frontier push, so huge groups would cost more than they save.
const MAX_ORDER: usize = 720;

/// One non-identity symmetry: a node permutation plus per-node port
/// relabelings (sparse: identity entries are omitted, so an empty map is
/// the identity relabeling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupElem {
    /// `node_perm[i]` is the image of node `i`.
    pub node_perm: Vec<usize>,
    /// `port_maps[i]` maps ports of node `i` to ports of its image,
    /// as sorted `(from, to)` pairs with `from != to`.
    pub port_maps: Vec<Vec<(u32, u32)>>,
}

impl GroupElem {
    fn map_port(&self, node: usize, port: u32) -> u32 {
        match self.port_maps[node].binary_search_by_key(&port, |&(f, _)| f) {
            Ok(idx) => self.port_maps[node][idx].1,
            Err(_) => port,
        }
    }
}

/// The automorphism group of a model's topology (always excludes models
/// where it would be trivial — [`find_symmetry`] returns `None` there).
#[derive(Debug, Clone)]
pub struct SymmetryGroup {
    elems: Vec<GroupElem>,
}

impl SymmetryGroup {
    /// Group order (non-identity elements plus the identity).
    pub fn order(&self) -> usize {
        self.elems.len() + 1
    }

    /// The non-identity elements.
    pub fn elems(&self) -> &[GroupElem] {
        &self.elems
    }

    /// Node orbits (every node appears in exactly one; singletons included).
    pub fn orbits(&self) -> Vec<Vec<usize>> {
        let n = match self.elems.first() {
            Some(e) => e.node_perm.len(),
            None => return Vec::new(),
        };
        let mut rep: Vec<usize> = (0..n).collect();
        fn find(rep: &mut Vec<usize>, i: usize) -> usize {
            if rep[i] != i {
                let r = find(rep, rep[i]);
                rep[i] = r;
            }
            rep[i]
        }
        for e in &self.elems {
            for i in 0..n {
                let (a, b) = (find(&mut rep, i), find(&mut rep, e.node_perm[i]));
                if a != b {
                    rep[a.max(b)] = a.min(b);
                }
            }
        }
        let mut orbits: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let r = find(&mut rep, i);
            orbits.entry(r).or_default().push(i);
        }
        orbits.into_values().collect()
    }

    /// Size of the largest node orbit (the planner's symmetry signal).
    pub fn largest_orbit(&self) -> usize {
        self.orbits()
            .into_iter()
            .map(|o| o.len())
            .max()
            .unwrap_or(1)
    }

    /// Replaces `cfg` with the lexicographically smallest configuration in
    /// its orbit. Returns whether `cfg` changed (i.e. it was not already
    /// the orbit representative) — the engines' `orbit_merges` counter.
    pub fn canonicalize(&self, cfg: &mut GlobalConfig) -> bool {
        // Hot path: this runs once per frontier insertion. Losing
        // candidates (the common case) are compared lazily against the
        // running minimum without materializing the permuted
        // configuration; only a new minimum pays for `apply`.
        let mut best: Option<GlobalConfig> = None;
        for e in &self.elems {
            let current = best.as_ref().unwrap_or(cfg);
            if cmp_applied(e, cfg, current) == Ordering::Less {
                best = Some(apply(e, cfg));
            }
        }
        match best {
            Some(b) => {
                *cfg = b;
                true
            }
            None => false,
        }
    }
}

/// Compares `apply(e, cfg)` against `other` in the derived lexicographic
/// order of [`GlobalConfig`] — `(sched_state, nodes)`, each node
/// `(state, q_in, q_out, error)`, each queue `(entries, capacity)` — but
/// element by element, without building the permuted configuration.
fn cmp_applied(e: &GroupElem, cfg: &GlobalConfig, other: &GlobalConfig) -> Ordering {
    // `apply` leaves scheduler state untouched; `other` is always a
    // member of the same orbit, so `sched_state` ties by construction.
    debug_assert_eq!(cfg.sched_state, other.sched_state);
    let n = cfg.nodes.len();
    // Position `j` of the permuted configuration holds node `π⁻¹(j)`.
    let mut inv = vec![0usize; n];
    for (i, &pi) in e.node_perm.iter().enumerate() {
        inv[pi] = i;
    }
    for (&i, other_node) in inv.iter().zip(&other.nodes) {
        let ord = cmp_remapped_node(&cfg.nodes[i], e, i, other_node);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn cmp_remapped_node(nc: &NodeConfig, e: &GroupElem, node: usize, other: &NodeConfig) -> Ordering {
    nc.state
        .cmp(&other.state)
        .then_with(|| cmp_remapped_queue(&nc.q_in, e, node, &other.q_in))
        .then_with(|| cmp_remapped_queue(&nc.q_out, e, node, &other.q_out))
        .then_with(|| nc.error.cmp(&other.error))
}

fn cmp_remapped_queue(q: &PktQueue, e: &GroupElem, node: usize, other: &PktQueue) -> Ordering {
    q.iter()
        .map(|(pkt, port)| (pkt, e.map_port(node, *port)))
        .cmp(other.iter().map(|(pkt, port)| (pkt, *port)))
        .then_with(|| q.capacity().cmp(&other.capacity()))
}

/// Applies a group element to a configuration: node `i`'s local state moves
/// to position `π(i)` with its queue entry ports relabeled through `σ_i`.
/// Scheduler state is untouched (the uniform scheduler is stateless).
fn apply(e: &GroupElem, cfg: &GlobalConfig) -> GlobalConfig {
    let mut nodes: Vec<Option<NodeConfig>> = vec![None; cfg.nodes.len()];
    for (i, nc) in cfg.nodes.iter().enumerate() {
        nodes[e.node_perm[i]] = Some(remap_node(nc, e, i));
    }
    GlobalConfig {
        sched_state: cfg.sched_state,
        nodes: nodes
            .into_iter()
            .map(|n| n.expect("permutation is total"))
            .collect(),
    }
}

fn remap_node(nc: &NodeConfig, e: &GroupElem, node: usize) -> NodeConfig {
    if e.port_maps[node].is_empty() {
        return nc.clone();
    }
    let mut q_in = PktQueue::new(nc.q_in.capacity());
    for (pkt, port) in nc.q_in.iter() {
        q_in.push_back((pkt.clone(), e.map_port(node, *port)));
    }
    let mut q_out = PktQueue::new(nc.q_out.capacity());
    for (pkt, port) in nc.q_out.iter() {
        q_out.push_back((pkt.clone(), e.map_port(node, *port)));
    }
    NodeConfig {
        state: nc.state.clone(),
        q_in,
        q_out,
        error: nc.error,
    }
}

/// Port constraints a program imposes on the relabelings of nodes running
/// it.
#[derive(Debug, Clone, Default, PartialEq)]
struct PortProfile {
    /// Program reads the arrival port or forwards to a data-dependent
    /// target: `σ` must be the identity.
    rigid: bool,
    /// `fwd(c)` constants: `σ(c) = c`.
    fixed: BTreeSet<u32>,
    /// `fwd(uniformInt(lo, hi))` ranges (clamped to `1..`): `σ` must map
    /// each range onto itself.
    ranges: BTreeSet<(u32, u32)>,
}

fn profile_of(p: &CompiledProgram) -> PortProfile {
    let mut prof = PortProfile::default();
    for s in &p.body {
        profile_stmt(s, &mut prof);
    }
    prof
}

fn profile_stmt(s: &CStmt, prof: &mut PortProfile) {
    match s {
        CStmt::Fwd(e) => {
            profile_expr(e, prof);
            match e {
                CExpr::Const(c) => match c.to_i64() {
                    // A constant that is not a valid port always errors at
                    // this site — no constraint on σ.
                    Some(v) if v >= 1 && v <= u32::MAX as i64 => {
                        prof.fixed.insert(v as u32);
                    }
                    _ => {}
                },
                CExpr::UniformInt(lo, hi) => match (lo.as_ref(), hi.as_ref()) {
                    (CExpr::Const(a), CExpr::Const(b)) => {
                        match (a.to_i64(), b.to_i64()) {
                            (Some(ia), Some(ib)) if ia <= ib => {
                                // Draws below 1 error identically at every
                                // node; only valid ports constrain σ.
                                let lo = ia.max(1);
                                if lo <= ib && ib <= u32::MAX as i64 {
                                    if ib - lo > 64 {
                                        // Don't chase huge ranges.
                                        prof.rigid = true;
                                    } else {
                                        prof.ranges.insert((lo as u32, ib as u32));
                                    }
                                }
                            }
                            // Invalid bounds error before drawing.
                            _ => {}
                        }
                    }
                    _ => prof.rigid = true,
                },
                _ => prof.rigid = true,
            }
        }
        CStmt::AssignState(_, e)
        | CStmt::AssignLocal(_, e)
        | CStmt::FieldAssign(_, e)
        | CStmt::Assert(e)
        | CStmt::Observe(e) => profile_expr(e, prof),
        CStmt::If(c, t, f) => {
            profile_expr(c, prof);
            for s in t.iter().chain(f) {
                profile_stmt(s, prof);
            }
        }
        CStmt::While(c, b) => {
            profile_expr(c, prof);
            for s in b {
                profile_stmt(s, prof);
            }
        }
        CStmt::New | CStmt::Drop | CStmt::Dup | CStmt::Skip => {}
    }
}

fn profile_expr(e: &CExpr, prof: &mut PortProfile) {
    match e {
        CExpr::Port => prof.rigid = true,
        CExpr::Flip(a) | CExpr::Not(a) | CExpr::Neg(a) => profile_expr(a, prof),
        CExpr::UniformInt(a, b) | CExpr::Binary(_, a, b) => {
            profile_expr(a, prof);
            profile_expr(b, prof);
        }
        CExpr::Const(_) | CExpr::Param(_) | CExpr::State(_) | CExpr::Local(_) | CExpr::Field(_) => {
        }
    }
}

fn progs_equal(a: &std::sync::Arc<CompiledProgram>, b: &std::sync::Arc<CompiledProgram>) -> bool {
    std::sync::Arc::ptr_eq(a, b) || **a == **b
}

/// Finds the model's automorphism group. Returns `(None, why)` when the
/// group is trivial or detection was abandoned.
pub(super) fn find_symmetry(model: &Model) -> (Option<SymmetryGroup>, String) {
    if model.scheduler != SchedKind::Uniform {
        return (None, "scheduler is not uniform".into());
    }
    let n = model.num_nodes();
    if n < 2 {
        return (None, "fewer than two nodes".into());
    }

    // Program equivalence classes (index of first equal program).
    let class: Vec<usize> = (0..n)
        .map(|i| {
            (0..i)
                .find(|&j| progs_equal(&model.programs[j], &model.programs[i]))
                .unwrap_or(i)
        })
        .collect();

    // Adjacency: node -> neighbor -> sorted local ports. Parallel links and
    // self-loops make σ derivation ambiguous; bail conservatively.
    let mut adj: Vec<BTreeMap<usize, Vec<u32>>> = vec![BTreeMap::new(); n];
    for ((i, p), (j, _)) in model.links() {
        if i == j {
            return (None, "self-loop link".into());
        }
        adj[i].entry(j).or_default().push(p);
    }
    for row in &mut adj {
        for ports in row.values_mut() {
            ports.sort_unstable();
            if ports.len() > 1 {
                return (None, "parallel links between a node pair".into());
            }
        }
    }

    // Pruning signature: own class, plus the sorted multiset of neighbor
    // classes. Candidate images must match.
    let sig: Vec<(usize, Vec<usize>)> = (0..n)
        .map(|i| {
            let mut neigh: Vec<usize> = adj[i].keys().map(|&j| class[j]).collect();
            neigh.sort_unstable();
            (class[i], neigh)
        })
        .collect();
    let candidates: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| sig[j] == sig[i]).collect())
        .collect();

    let profiles: Vec<PortProfile> = model.programs.iter().map(|p| profile_of(p)).collect();

    let mut search = Search {
        model,
        adj: &adj,
        profiles: &profiles,
        candidates: &candidates,
        perm: vec![usize::MAX; n],
        used: vec![false; n],
        budget: SEARCH_BUDGET,
        elems: Vec::new(),
        overflow: false,
    };
    search.extend(0);
    if search.budget == 0 {
        return (None, "search budget exhausted".into());
    }
    if search.overflow {
        return (None, format!("group order exceeds cap of {MAX_ORDER}"));
    }
    if search.elems.is_empty() {
        return (None, "no non-trivial automorphism".into());
    }
    let order = search.elems.len() + 1;
    (
        Some(SymmetryGroup {
            elems: search.elems,
        }),
        format!("found automorphism group of order {order}"),
    )
}

struct Search<'a> {
    model: &'a Model,
    adj: &'a [BTreeMap<usize, Vec<u32>>],
    profiles: &'a [PortProfile],
    candidates: &'a [Vec<usize>],
    perm: Vec<usize>,
    used: Vec<bool>,
    budget: usize,
    elems: Vec<GroupElem>,
    overflow: bool,
}

impl Search<'_> {
    fn extend(&mut self, i: usize) {
        if self.budget == 0 || self.overflow {
            return;
        }
        let n = self.perm.len();
        if i == n {
            if self.perm.iter().enumerate().all(|(a, &b)| a == b) {
                return; // identity
            }
            if let Some(elem) = self.finish() {
                if self.elems.len() + 1 >= MAX_ORDER {
                    self.overflow = true;
                    return;
                }
                self.elems.push(elem);
            }
            return;
        }
        for idx in 0..self.candidates[i].len() {
            let j = self.candidates[i][idx];
            if self.used[j] {
                continue;
            }
            self.budget = self.budget.saturating_sub(1);
            if self.budget == 0 {
                return;
            }
            // Local consistency: every already-mapped neighbor of i must map
            // to a neighbor of j with the same link count.
            let ok = self.adj[i].iter().all(|(&nb, ports)| {
                let img = self.perm[nb];
                img == usize::MAX || self.adj[j].get(&img).map(|v| v.len()) == Some(ports.len())
            });
            if !ok {
                continue;
            }
            self.perm[i] = j;
            self.used[j] = true;
            self.extend(i + 1);
            self.perm[i] = usize::MAX;
            self.used[j] = false;
            if self.budget == 0 || self.overflow {
                return;
            }
        }
    }

    /// Validates a complete node permutation: derives σ from the link
    /// structure, then checks the link bijection, the port profiles, and
    /// query invariance.
    fn finish(&self) -> Option<GroupElem> {
        let n = self.perm.len();
        let mut port_maps: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        // σ_i: the k-th port of i toward neighbor j maps to the k-th port
        // of π(i) toward π(j); with parallel links excluded each list has
        // exactly one entry.
        for (i, row) in self.adj.iter().enumerate() {
            let ii = self.perm[i];
            for (&j, ports) in row {
                let jj = self.perm[j];
                let theirs = self.adj[ii].get(&jj)?;
                if theirs.len() != ports.len() {
                    return None;
                }
                for (&p, &p2) in ports.iter().zip(theirs) {
                    if p != p2 {
                        port_maps[i].push((p, p2));
                    }
                }
            }
            port_maps[i].sort_unstable();
        }
        let elem = GroupElem {
            node_perm: self.perm.clone(),
            port_maps,
        };
        // Link bijection: (i, p) <-> (j, q) implies images linked the same
        // way. (σ is injective per node by construction: distinct neighbors
        // have distinct images.)
        for ((i, p), (j, q)) in self.model.links() {
            let (pi, pj) = (elem.node_perm[i], elem.node_perm[j]);
            let (p2, q2) = (elem.map_port(i, p), elem.map_port(j, q));
            if self.model.link_dest(pi, p2) != Some((pj, q2)) {
                return None;
            }
        }
        // Port profiles.
        for i in 0..n {
            let prof = &self.profiles[i];
            let ii = elem.node_perm[i];
            if prof.rigid && !elem.port_maps[i].is_empty() {
                return None;
            }
            for &c in &prof.fixed {
                if elem.map_port(i, c) != c {
                    return None;
                }
                // A fixed forward must find the same linkedness at the
                // image node (unlinked forwards error).
                let here = self.model.link_dest(i, c).is_some();
                let there = self.model.link_dest(ii, c).is_some();
                if here != there {
                    return None;
                }
            }
            for &(lo, hi) in &prof.ranges {
                let mut image: BTreeSet<u32> = BTreeSet::new();
                for p in lo..=hi {
                    let img = elem.map_port(i, p);
                    // Linkedness of each draw must be preserved so the
                    // error/success split of the uniform choice matches.
                    let here = self.model.link_dest(i, p).is_some();
                    let there = self.model.link_dest(ii, img).is_some();
                    if here != there {
                        return None;
                    }
                    image.insert(img);
                }
                if image != (lo..=hi).collect() {
                    return None;
                }
            }
        }
        // Query invariance.
        for q in &self.model.queries {
            let permuted = permute_query(&q.expr, &elem.node_perm);
            if qcanon(&q.expr) != qcanon(&permuted) {
                return None;
            }
        }
        Some(elem)
    }
}

fn permute_query(e: &QExpr, perm: &[usize]) -> QExpr {
    match e {
        QExpr::At { node, slot } => QExpr::At {
            node: perm[*node],
            slot: *slot,
        },
        QExpr::Binary(op, a, b) => QExpr::Binary(
            *op,
            Box::new(permute_query(a, perm)),
            Box::new(permute_query(b, perm)),
        ),
        QExpr::Not(x) => QExpr::Not(Box::new(permute_query(x, perm))),
        QExpr::Neg(x) => QExpr::Neg(Box::new(permute_query(x, perm))),
        QExpr::Const(_) | QExpr::Param(_) => e.clone(),
    }
}

/// Canonical form modulo commutativity/associativity of `+`, `*`, `and`,
/// `or` and operand order of `==`/`!=`. Exact rational arithmetic makes
/// these reorderings value-identical, and their error behavior depends only
/// on the operand multiset, so canon-equality implies evaluation equality.
fn qcanon(e: &QExpr) -> QExpr {
    use bayonet_lang::BinOp;
    match e {
        QExpr::Binary(op @ (BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or), _, _) => {
            let mut operands = Vec::new();
            flatten(e, *op, &mut operands);
            let mut canon: Vec<QExpr> = operands.iter().map(qcanon).collect();
            canon.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            let mut it = canon.into_iter();
            let first = it.next().expect("binary op has operands");
            it.fold(first, |acc, x| {
                QExpr::Binary(*op, Box::new(acc), Box::new(x))
            })
        }
        QExpr::Binary(op @ (BinOp::Eq | BinOp::Ne), a, b) => {
            let (ca, cb) = (qcanon(a), qcanon(b));
            if format!("{ca:?}") <= format!("{cb:?}") {
                QExpr::Binary(*op, Box::new(ca), Box::new(cb))
            } else {
                QExpr::Binary(*op, Box::new(cb), Box::new(ca))
            }
        }
        QExpr::Binary(op, a, b) => QExpr::Binary(*op, Box::new(qcanon(a)), Box::new(qcanon(b))),
        QExpr::Not(x) => QExpr::Not(Box::new(qcanon(x))),
        QExpr::Neg(x) => QExpr::Neg(Box::new(qcanon(x))),
        QExpr::Const(_) | QExpr::Param(_) | QExpr::At { .. } => e.clone(),
    }
}

fn flatten(e: &QExpr, op: bayonet_lang::BinOp, out: &mut Vec<QExpr>) {
    match e {
        QExpr::Binary(o, a, b) if *o == op => {
            flatten(a, op, out);
            flatten(b, op, out);
        }
        other => out.push(other.clone()),
    }
}
