//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen::<f64>()`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256** seeded via
//! SplitMix64 — high quality and deterministic, but **not** the same stream
//! as upstream `StdRng` (ChaCha12); seeded runs produce different (equally
//! valid) samples than they would under the real crate.

#![forbid(unsafe_code)]

/// A source of random 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from the "standard" distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` (`span > 0`), by widening multiply.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // 64 bits of randomness scaled into the span; span values here are far
    // below 2^64 so the bias is negligible for test/simulation purposes.
    (rng.next_u64() as u128 * span) >> 64
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman/Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
            let u = rng.gen_range(0..10usize);
            assert!(u < 10);
            let s = rng.gen_range(-4i64..5);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
