//! Serve-core benchmark: sustained RPS and tail latency of the event-loop
//! server, single-replica and sharded.
//!
//! Matrix: replicas ∈ {1, 4} × parked connections ∈ {0, 10 000}. The
//! parked set models a fleet of long-lived idle clients hanging off the
//! loop — real fd pressure, a real 10k-entry epoll interest table —
//! while one measuring client drives request after request. The measured
//! workload is a cached `/v1/run`: the engines' wall-clock is someone
//! else's benchmark; this one times the serve path end to end — accept,
//! parse, dispatch, LRU hit, respond, teardown.
//!
//! The server runs out of process (the `bayonet-served` binary, found
//! next to this one), so client and server fd budgets never share a
//! process. Build everything first:
//!
//! ```text
//! cargo build --release
//! cargo run --release -p bayonet-bench --bin servebench -- --out BENCH_7.json
//! ```
//!
//! Flags:
//!   --quick          parked set 100 and a 1 s window per cell (CI smoke)
//!   --duration-ms N  measure window per cell (default 4000)
//!   --server-exe P   path to bayonet-served (default: sibling of this binary)
//!   --out PATH       write the report to PATH (always printed to stdout)
//!   --check PATH     CI regression gate: exit 1 when any matched cell's
//!                    p99 latency regresses more than 25% (plus a 50 µs
//!                    absolute slack) vs. the committed baseline at PATH.
//!                    Cells are matched on (replicas, parked_connections);
//!                    tune with BAYONET_BENCH_TOLERANCE /
//!                    BAYONET_BENCH_STRICT (see `bayonet_bench::gate`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bayonet_bench::gate;
use bayonet_serve::{parse_json, Json};

/// The measured program: small enough that its exact answer is an LRU
/// hit after the warm-up request, so every timed exchange is pure serve
/// path.
const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    fn spawn(exe: &str, replicas: usize) -> Server {
        let mut child = Command::new(exe)
            .args([
                "--replicas",
                &replicas.to_string(),
                "--threads",
                "2",
                "--queue",
                "1024",
                // Parked connections are idle by design; don't let the
                // read deadline reap them mid-measurement.
                "--io-timeout-ms",
                "600000",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                panic!("cannot spawn {exe}: {e}\n(run `cargo build --release` first)")
            });
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        lines.read_line(&mut line).expect("read announcement");
        let addr = line
            .trim()
            .strip_prefix("BAYONET_SERVE_ADDR ")
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("bad announcement: {line:?}"));
        std::thread::spawn(move || {
            let mut sink = [0u8; 4096];
            while matches!(lines.read(&mut sink), Ok(n) if n > 0) {}
        });
        Server { child, addr }
    }

    fn stop(mut self) {
        drop(self.child.stdin.take());
        for _ in 0..100 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One full `/v1/run` exchange; returns the wall-clock latency.
fn exchange(addr: SocketAddr, body: &str) -> Duration {
    let started = Instant::now();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!(
        "POST /v1/run HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "bench request failed: {raw}"
    );
    started.elapsed()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Cell {
    replicas: usize,
    parked: usize,
    requests: u64,
    rps: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn measure(addr: SocketAddr, body: &str, window: Duration) -> (u64, f64, Vec<u64>) {
    // Warm: populate the result cache (and, sharded, the home replica's).
    for _ in 0..3 {
        exchange(addr, body);
    }
    let mut latencies_us = Vec::new();
    let started = Instant::now();
    while started.elapsed() < window {
        latencies_us.push(exchange(addr, body).as_micros() as u64);
    }
    let elapsed = started.elapsed();
    let requests = latencies_us.len() as u64;
    let rps = requests as f64 / elapsed.as_secs_f64();
    latencies_us.sort_unstable();
    (requests, rps, latencies_us)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let window = Duration::from_millis(
        flag("--duration-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 1000 } else { 4000 }),
    );
    let exe = flag("--server-exe").unwrap_or_else(|| {
        let mut path = std::env::current_exe().expect("current exe");
        path.set_file_name("bayonet-served");
        path.to_string_lossy().into_owned()
    });
    let parked_high = if quick { 100 } else { 10_000 };

    // The parked set lives in this process: lift the client fd ceiling.
    let _ = bayonet_net::raise_nofile_limit();

    let body = bayonet_serve::Json::obj(vec![("source", bayonet_serve::Json::Str(TINY.into()))])
        .to_string();

    let mut cells: Vec<Cell> = Vec::new();
    for replicas in [1usize, 4] {
        let server = Server::spawn(&exe, replicas);
        for parked in [0usize, parked_high] {
            // Park the idle fleet, then give the loop a beat to accept it.
            let held: Vec<TcpStream> = (0..parked)
                .map(|i| {
                    TcpStream::connect(server.addr)
                        .unwrap_or_else(|e| panic!("parked connect {i}: {e}"))
                })
                .collect();
            if parked > 0 {
                std::thread::sleep(Duration::from_millis(500));
            }
            let (requests, rps, lat) = measure(server.addr, &body, window);
            eprintln!(
                "replicas={replicas} parked={parked}: {requests} requests, {rps:.0} rps, p99 {} us",
                percentile(&lat, 0.99)
            );
            cells.push(Cell {
                replicas,
                parked,
                requests,
                rps,
                p50_us: percentile(&lat, 0.50),
                p90_us: percentile(&lat, 0.90),
                p99_us: percentile(&lat, 0.99),
                max_us: lat.last().copied().unwrap_or(0),
            });
            drop(held);
        }
        server.stop();
    }

    let cells_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"{{"replicas":{},"parked_connections":{},"requests":{},"rps":{:.1},"latency_us":{{"p50":{},"p90":{},"p99":{},"max":{}}}}}"#,
                c.replicas, c.parked, c.requests, c.rps, c.p50_us, c.p90_us, c.p99_us, c.max_us
            )
        })
        .collect();
    let report = format!(
        r#"{{"schema":"bayonet-servebench-v1","quick":{quick},"window_ms":{},"machine":{{"os":"{}","arch":"{}","cpus":{},"profile":"{}"}},"cells":[{}]}}"#,
        window.as_millis(),
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        cells_json.join(",")
    );
    // Self-validation: the report must round-trip through the same JSON
    // parser the service uses.
    let parsed = parse_json(&report).expect("report is well-formed JSON");
    println!("{report}");
    if let Some(path) = flag("--out") {
        std::fs::write(&path, format!("{report}\n")).expect("write report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = flag("--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read check baseline {path}: {e}"));
        let baseline = parse_json(&text).expect("check baseline is not valid JSON");
        if !check_against(&parsed, &baseline) {
            std::process::exit(1);
        }
    }
}

/// The CI gate: p99 latency per cell, matched on `(replicas,
/// parked_connections)`, against a committed baseline. A `--quick` run
/// parks 100 connections instead of 10 000, so only the parked=0 cells
/// match a full baseline — the intersection is what gets gated. Besides
/// the relative tolerance, a cell only fails when the regression exceeds
/// an absolute 50 µs slack: micro-scale tails jitter on shared runners.
fn check_against(current: &Json, baseline: &Json) -> bool {
    if let Some(pass) = gate::host_class_gate(current, baseline) {
        return pass;
    }
    let p99_of = |report: &Json, replicas: f64, parked: f64| -> Option<f64> {
        report.get("cells")?.as_arr()?.iter().find_map(|c| {
            if c.get("replicas")?.as_f64()? == replicas
                && c.get("parked_connections")?.as_f64()? == parked
            {
                c.get("latency_us")?.get("p99")?.as_f64()
            } else {
                None
            }
        })
    };
    let tol = gate::tolerance();
    let mut rows = Vec::new();
    if let Some(cells) = current.get("cells").and_then(Json::as_arr) {
        for c in cells {
            let replicas = c.get("replicas").and_then(Json::as_f64).unwrap_or(0.0);
            let parked = c
                .get("parked_connections")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let (Some(now), Some(before)) = (
                p99_of(current, replicas, parked),
                p99_of(baseline, replicas, parked),
            ) else {
                continue;
            };
            rows.push(gate::Check {
                label: format!("replicas={replicas}/parked={parked}/p99"),
                baseline: before,
                current: now,
                // Relative tolerance alone would gate on single-digit
                // microseconds; require the absolute slack too.
                gated: now - before > gate::MIN_GATED_SLACK_US,
            });
        }
    }
    assert!(
        !rows.is_empty(),
        "check: no comparable cells between current run and baseline"
    );
    gate::verdict(&rows, tol, "us")
}
