//! Randomized differential testing across inference backends: on generated
//! networks, the direct exact engine (with and without merging / FM
//! pruning) and the translated mini-PSI trace enumerator must agree
//! exactly, and SMC must agree statistically.

use bayonet_repro::testgen::{random_network_source, GenOptions};
use bayonet_repro::{ApproxOptions, ExactOptions, Network, Rat};

fn build(seed: u64, opts: &GenOptions) -> Network {
    let src = random_network_source(seed, opts);
    Network::from_source(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"))
}

#[test]
fn exact_engine_conserves_mass_on_random_networks() {
    let opts = GenOptions::default();
    for seed in 0..40 {
        let network = build(seed, &opts);
        let analysis = network.analyze_with(&ExactOptions::default()).unwrap();
        let total = analysis.total_terminal_mass() + analysis.total_discarded_mass();
        assert_eq!(total, Rat::one(), "seed {seed}: mass leaked");
        // Without observes, nothing is discarded.
        assert_eq!(analysis.total_discarded_mass(), Rat::zero(), "seed {seed}");
    }
}

#[test]
fn exact_engine_conserves_mass_with_observes() {
    let opts = GenOptions {
        observes: true,
        ..Default::default()
    };
    for seed in 0..25 {
        let network = build(seed, &opts);
        let analysis = network.analyze_with(&ExactOptions::default()).unwrap();
        let total = analysis.total_terminal_mass() + analysis.total_discarded_mass();
        assert_eq!(total, Rat::one(), "seed {seed}: mass leaked");
    }
}

#[test]
fn merging_does_not_change_answers() {
    let opts = GenOptions::default();
    for seed in 0..15 {
        let network = build(seed, &opts);
        let merged = network
            .exact_with(&ExactOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let unmerged = network
            .exact_with(&ExactOptions {
                merge_configs: false,
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (a, b) in merged.results.iter().zip(&unmerged.results) {
            assert_eq!(a.rat(), b.rat(), "seed {seed}: merging changed a result");
        }
    }
}

#[test]
fn psi_backend_agrees_on_random_networks() {
    let opts = GenOptions {
        fuel: 1, // keep trace enumeration cheap
        ..Default::default()
    };
    for seed in 0..25 {
        let network = build(seed, &opts);
        let report = network
            .exact()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (idx, result) in report.results.iter().enumerate() {
            let via_psi = network
                .infer_via_psi(idx)
                .unwrap_or_else(|e| panic!("seed {seed} query {idx}: {e}"));
            assert_eq!(
                *result.rat(),
                via_psi,
                "seed {seed} query {idx}: direct vs PSI mismatch\n{}",
                network.source()
            );
        }
    }
}

#[test]
fn psi_backend_agrees_with_observations() {
    let opts = GenOptions {
        fuel: 1,
        observes: true,
        ..Default::default()
    };
    for seed in 0..15 {
        let network = build(seed, &opts);
        let report = match network.exact() {
            Ok(r) => r,
            Err(bayonet_repro::Error::Exact(bayonet_exact::ExactError::AllMassObservedOut)) => {
                continue
            }
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let via_psi = network
            .infer_via_psi(0)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(*report.results[0].rat(), via_psi, "seed {seed}");
    }
}

#[test]
fn smc_agrees_statistically_on_random_networks() {
    let opts = GenOptions::default();
    for seed in 0..8 {
        let network = build(seed, &opts);
        let exact = network.exact().unwrap().results[0].rat().to_f64();
        let est = network
            .smc(
                0,
                &ApproxOptions {
                    particles: 4000,
                    seed: seed * 31 + 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let tolerance = (5.0 * est.std_error).max(0.03);
        assert!(
            (est.value - exact).abs() <= tolerance,
            "seed {seed}: exact {exact} vs SMC {est} (tolerance {tolerance})"
        );
    }
}

#[test]
fn rejection_and_smc_agree() {
    let opts = GenOptions {
        observes: true,
        ..Default::default()
    };
    let network = build(3, &opts);
    let approx = ApproxOptions {
        particles: 3000,
        seed: 9,
        ..Default::default()
    };
    let smc = network.smc(0, &approx);
    let rej = network.rejection(0, &approx);
    if let (Ok(smc), Ok(rej)) = (smc, rej) {
        assert!(
            (smc.value - rej.value).abs() < 0.06,
            "smc {smc} vs rejection {rej}"
        );
    }
}
