//! Feasibility checking and witness extraction for symbolic guards.
//!
//! A [`Guard`](crate::Guard) is a conjunction of sign atoms over linear
//! expressions. Feasibility over the rationals is decided by
//! Gaussian elimination of the equalities followed by Fourier–Motzkin
//! elimination of the strict inequalities. A satisfying rational assignment
//! (the *witness*) is recovered by back-substitution — this is the
//! "Mathematica / Z3" step of the paper's synthesis workflow (§2.3): turning
//! the symbolic constraint under which congestion is minimal into concrete
//! link costs.

use std::collections::BTreeMap;

use bayonet_num::{Rat, Sign};

use crate::guard::Guard;
use crate::linexpr::LinExpr;
use crate::param::ParamId;

/// A rational assignment to parameters.
pub type Assignment = BTreeMap<ParamId, Rat>;

/// Outcome of a feasibility query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// The guard is satisfiable; a witness assignment is provided for every
    /// parameter that occurs in the guard.
    Sat(Assignment),
    /// The guard is unsatisfiable over the rationals.
    Unsat,
}

impl Feasibility {
    /// Returns `true` for [`Feasibility::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Feasibility::Sat(_))
    }
}

/// Decides feasibility of `guard` over the rationals and, when satisfiable,
/// produces a witness.
///
/// # Examples
///
/// ```
/// use bayonet_symbolic::{feasibility, Feasibility, Guard, LinExpr, ParamTable};
/// use bayonet_num::{Rat, Sign};
///
/// let mut t = ParamTable::new();
/// let x = LinExpr::param(t.intern("x"));
/// let y = LinExpr::param(t.intern("y"));
/// // x - y > 0 and y - x > 0 is contradictory.
/// let g = Guard::top()
///     .assume_sign(&x.sub(&y), Sign::Plus).unwrap()
///     .assume_sign(&y.sub(&x), Sign::Plus);
/// assert!(g.is_none()); // caught syntactically already
///
/// // x - y > 0 and y > 0 is satisfiable.
/// let g = Guard::top()
///     .assume_sign(&x.sub(&y), Sign::Plus).unwrap()
///     .assume_sign(&y, Sign::Plus).unwrap();
/// assert!(feasibility(&g).is_sat());
/// ```
pub fn feasibility(guard: &Guard) -> Feasibility {
    // Split into equalities and strict inequalities normalized to `e > 0`.
    let mut equalities: Vec<LinExpr> = Vec::new();
    let mut strict: Vec<LinExpr> = Vec::new();
    for (e, s) in guard.atoms() {
        match s {
            Sign::Zero => equalities.push(e.clone()),
            Sign::Plus => strict.push(e.clone()),
            Sign::Minus => strict.push(e.neg()),
        }
    }

    // Phase 1: Gaussian elimination of equalities. Each round solves one
    // equality for one of its parameters and substitutes everywhere.
    // `defined` records `p = expr` bindings for back-substitution.
    let mut defined: Vec<(ParamId, LinExpr)> = Vec::new();
    while let Some(eq) = equalities.pop() {
        match eq.params().next() {
            None => {
                if !eq.constant_part().is_zero() {
                    return Feasibility::Unsat;
                }
            }
            Some(p) => {
                // p = -(eq - coeff*p) / coeff
                let coeff = eq.coeff(p);
                let mut rest = eq.clone();
                rest.add_term(p, &-&coeff);
                let solution = rest.scale(&(-coeff.recip()));
                for e in equalities.iter_mut().chain(strict.iter_mut()) {
                    *e = e.substitute(p, &solution);
                }
                for (_, d) in defined.iter_mut() {
                    *d = d.substitute(p, &solution);
                }
                defined.push((p, solution));
            }
        }
    }

    // Phase 2: Fourier–Motzkin elimination of strict inequalities `e > 0`.
    // `eliminated` records, per eliminated parameter, the lower/upper bound
    // expressions (in later-eliminated parameters) for back-substitution.
    struct Eliminated {
        param: ParamId,
        /// Expressions `L` with constraint `p > L`.
        lowers: Vec<LinExpr>,
        /// Expressions `U` with constraint `p < U`.
        uppers: Vec<LinExpr>,
    }
    let mut eliminated: Vec<Eliminated> = Vec::new();

    loop {
        // Constant constraints must hold outright; pick the next parameter
        // to eliminate from the first non-constant constraint.
        let mut next_param = None;
        for e in &strict {
            if let Some(c) = e.as_constant() {
                if !c.is_positive() {
                    return Feasibility::Unsat;
                }
            } else if next_param.is_none() {
                next_param = e.params().next();
            }
        }
        let Some(p) = next_param else { break };

        let mut lowers = Vec::new(); // p > L
        let mut uppers = Vec::new(); // p < U
        let mut rest = Vec::new();
        for e in strict.drain(..) {
            let c = e.coeff(p);
            if c.is_zero() {
                rest.push(e);
            } else {
                // e = c*p + r > 0  =>  p > -r/c (c > 0) or p < -r/c (c < 0).
                let mut r = e.clone();
                r.add_term(p, &-&c);
                let bound = r.scale(&(-c.recip()));
                if c.is_positive() {
                    lowers.push(bound);
                } else {
                    uppers.push(bound);
                }
            }
        }
        // Every (lower, upper) pair must be strictly ordered: U - L > 0.
        for l in &lowers {
            for u in &uppers {
                rest.push(u.sub(l));
            }
        }
        strict = rest;
        eliminated.push(Eliminated {
            param: p,
            lowers,
            uppers,
        });
    }

    // Any surviving constraints are constants; recheck (loop exits only when
    // all are constants, which were validated, but a final pass is cheap).
    for e in &strict {
        if let Some(c) = e.as_constant() {
            if !c.is_positive() {
                return Feasibility::Unsat;
            }
        }
    }

    // Phase 3: back-substitution to build a witness. Parameters are assigned
    // in reverse elimination order; each one's bounds evaluate to constants
    // under the assignments made so far.
    let mut witness: Assignment = BTreeMap::new();
    for elim in eliminated.iter().rev() {
        let eval = |e: &LinExpr, w: &Assignment| -> Rat {
            e.eval(&|p| w.get(&p).cloned().unwrap_or_else(Rat::zero))
        };
        let lo = elim.lowers.iter().map(|e| eval(e, &witness)).max();
        let hi = elim.uppers.iter().map(|e| eval(e, &witness)).min();
        let value = match (lo, hi) {
            (Some(l), Some(h)) => {
                debug_assert!(l < h, "FM guaranteed an open interval");
                (&l + &h) * Rat::ratio(1, 2)
            }
            (Some(l), None) => l + Rat::one(),
            (None, Some(h)) => h - Rat::one(),
            (None, None) => Rat::zero(),
        };
        witness.insert(elim.param, value);
    }
    // Defined (equality-eliminated) parameters, in reverse definition order.
    for (p, def) in defined.iter().rev() {
        let v = def.eval(&|q| witness.get(&q).cloned().unwrap_or_else(Rat::zero));
        witness.insert(*p, v);
    }
    // Parameters mentioned only in already-satisfied constraints get 0.
    for (e, _) in guard.atoms() {
        for p in e.params() {
            witness.entry(p).or_insert_with(Rat::zero);
        }
    }

    debug_assert!(check_witness(guard, &witness), "witness must satisfy guard");
    Feasibility::Sat(witness)
}

/// Checks that `assignment` satisfies every atom of `guard`.
pub fn check_witness(guard: &Guard, assignment: &Assignment) -> bool {
    guard.atoms().all(|(e, s)| {
        let v = e.eval(&|p| assignment.get(&p).cloned().unwrap_or_else(Rat::zero));
        v.sign() == s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamTable;

    fn vars(n: usize) -> (ParamTable, Vec<LinExpr>) {
        let mut t = ParamTable::new();
        let names = ["x", "y", "z", "w"];
        let exprs = names[..n]
            .iter()
            .map(|s| LinExpr::param(t.intern(s)))
            .collect();
        (t, exprs)
    }

    fn con(v: i64) -> LinExpr {
        LinExpr::constant(Rat::int(v))
    }

    #[test]
    fn empty_guard_is_feasible() {
        assert!(feasibility(&Guard::top()).is_sat());
    }

    #[test]
    fn single_inequality_with_witness() {
        let (_, v) = vars(1);
        let g = Guard::top().assume_sign(&v[0], Sign::Plus).unwrap();
        let Feasibility::Sat(w) = feasibility(&g) else {
            panic!("expected SAT")
        };
        assert!(check_witness(&g, &w));
    }

    #[test]
    fn transitive_contradiction_found_by_fm() {
        // x < y, y < z, z < x: pairwise distinct atoms, only FM sees the cycle.
        let (_, v) = vars(3);
        let g = Guard::top()
            .assume_sign(&v[0].sub(&v[1]), Sign::Minus)
            .unwrap()
            .assume_sign(&v[1].sub(&v[2]), Sign::Minus)
            .unwrap()
            .assume_sign(&v[2].sub(&v[0]), Sign::Minus)
            .unwrap();
        assert_eq!(feasibility(&g), Feasibility::Unsat);
    }

    #[test]
    fn bounded_interval_witness() {
        // 0 < x and x < 1: witness must be strictly inside.
        let (_, v) = vars(1);
        let g = Guard::top()
            .assume_sign(&v[0], Sign::Plus)
            .unwrap()
            .assume_sign(&v[0].sub(&con(1)), Sign::Minus)
            .unwrap();
        let Feasibility::Sat(w) = feasibility(&g) else {
            panic!("expected SAT")
        };
        let x = w.values().next().unwrap();
        assert!(x > &Rat::zero() && x < &Rat::one());
    }

    #[test]
    fn equalities_substitute() {
        // x - y == 0 and x + y - 4 == 0 forces x = y = 2; with x > 1 feasible.
        let (_, v) = vars(2);
        let g = Guard::top()
            .assume_sign(&v[0].sub(&v[1]), Sign::Zero)
            .unwrap()
            .assume_sign(&v[0].add(&v[1]).sub(&con(4)), Sign::Zero)
            .unwrap()
            .assume_sign(&v[0].sub(&con(1)), Sign::Plus)
            .unwrap();
        let Feasibility::Sat(w) = feasibility(&g) else {
            panic!("expected SAT")
        };
        let vals: Vec<_> = w.values().cloned().collect();
        assert_eq!(vals, vec![Rat::int(2), Rat::int(2)]);
    }

    #[test]
    fn equalities_contradict_inequality() {
        // x == 0 and x > 0.
        let (_, v) = vars(1);
        // Trick: use 2x to avoid the syntactic same-atom check.
        let g1 = Guard::top().assume_sign(&v[0], Sign::Zero).unwrap();
        // Same canonical atom -> None syntactically:
        assert!(g1
            .assume_sign(&v[0].scale(&Rat::int(2)), Sign::Plus)
            .is_none());
        // x == y and x - y + 1 == 0 is a deep contradiction (1 == 0).
        let (_, v) = vars(2);
        let g = Guard::top()
            .assume_sign(&v[0].sub(&v[1]), Sign::Zero)
            .unwrap()
            .assume_sign(&v[0].sub(&v[1]).add(&con(1)), Sign::Zero)
            .unwrap();
        assert_eq!(feasibility(&g), Feasibility::Unsat);
    }

    #[test]
    fn ospf_cost_cells_are_feasible() {
        // The three Figure 3 regions over COST_01 - (COST_02 + COST_21).
        let mut t = ParamTable::new();
        let c01 = LinExpr::param(t.intern("COST_01"));
        let c02 = LinExpr::param(t.intern("COST_02"));
        let c21 = LinExpr::param(t.intern("COST_21"));
        let diff = c01.sub(&c02.add(&c21));
        for s in [Sign::Minus, Sign::Zero, Sign::Plus] {
            let g = Guard::top().assume_sign(&diff, s).unwrap();
            let f = feasibility(&g);
            assert!(f.is_sat(), "cell {s:?} should be feasible");
            if let Feasibility::Sat(w) = f {
                assert!(check_witness(&g, &w));
            }
        }
    }

    #[test]
    fn chained_bounds_witness_in_order() {
        // x < y, y < z all satisfiable with a strictly increasing witness.
        let (_, v) = vars(3);
        let g = Guard::top()
            .assume_sign(&v[0].sub(&v[1]), Sign::Minus)
            .unwrap()
            .assume_sign(&v[1].sub(&v[2]), Sign::Minus)
            .unwrap();
        let Feasibility::Sat(w) = feasibility(&g) else {
            panic!("expected SAT")
        };
        assert!(check_witness(&g, &w));
    }
}
