//! Linear expressions over symbolic parameters with rational coefficients.
//!
//! The Bayonet grammar restricts arithmetic on symbolic values to linear
//! forms (`e + e`, `v · e`, Figure 4), so every symbolic value that can
//! arise is a [`LinExpr`]: `c₀ + Σ cᵢ·pᵢ`.

use std::collections::BTreeMap;
use std::fmt;

use bayonet_num::{BigInt, BigUint, Rat, Sign};

use crate::param::{ParamId, ParamTable};

/// A linear expression `constant + Σ coeff·param` with exact rational
/// coefficients. Zero coefficients are never stored.
///
/// # Examples
///
/// ```
/// use bayonet_symbolic::{LinExpr, ParamTable};
/// use bayonet_num::Rat;
///
/// let mut t = ParamTable::new();
/// let x = t.intern("x");
/// let e = LinExpr::param(x) + LinExpr::constant(Rat::int(3));
/// assert!(!e.is_constant());
/// assert_eq!(e.coeff(x), Rat::one());
/// ```
/// The derived ordering is purely structural (used for canonical map keys);
/// it has no numeric meaning.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinExpr {
    constant: Rat,
    terms: BTreeMap<ParamId, Rat>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> Self {
        LinExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// The expression consisting of a single parameter.
    pub fn param(p: ParamId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(p, Rat::one());
        LinExpr {
            constant: Rat::zero(),
            terms,
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> &Rat {
        &self.constant
    }

    /// The coefficient of `p` (zero if absent).
    pub fn coeff(&self, p: ParamId) -> Rat {
        self.terms.get(&p).cloned().unwrap_or_else(Rat::zero)
    }

    /// Iterates over `(param, coefficient)` pairs with nonzero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (ParamId, &Rat)> + '_ {
        self.terms.iter().map(|(&p, c)| (p, c))
    }

    /// Returns `true` if no parameter occurs.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// If constant, the constant value.
    pub fn as_constant(&self) -> Option<&Rat> {
        if self.is_constant() {
            Some(&self.constant)
        } else {
            None
        }
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// The parameters occurring in the expression.
    pub fn params(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.terms.keys().copied()
    }

    /// Adds `coeff * p` to the expression.
    pub fn add_term(&mut self, p: ParamId, coeff: &Rat) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(p).or_insert_with(Rat::zero);
        *entry += coeff;
        if entry.is_zero() {
            self.terms.remove(&p);
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant += &other.constant;
        for (p, c) in other.terms() {
            out.add_term(p, c);
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&Rat::int(-1)))
    }

    /// `k * self`.
    pub fn scale(&self, k: &Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            constant: &self.constant * k,
            terms: self.terms.iter().map(|(&p, c)| (p, c * k)).collect(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> LinExpr {
        self.scale(&Rat::int(-1))
    }

    /// Product of two linear expressions, if at least one is constant.
    /// Returns `None` for a nonlinear product.
    pub fn checked_mul(&self, other: &LinExpr) -> Option<LinExpr> {
        if let Some(c) = self.as_constant() {
            Some(other.scale(c))
        } else {
            other.as_constant().map(|c| self.scale(c))
        }
    }

    /// Quotient `self / other`, if `other` is a nonzero constant.
    pub fn checked_div(&self, other: &LinExpr) -> Option<LinExpr> {
        let c = other.as_constant()?;
        if c.is_zero() {
            None
        } else {
            Some(self.scale(&c.recip()))
        }
    }

    /// Evaluates under a full parameter assignment.
    ///
    /// # Panics
    ///
    /// Panics if some occurring parameter has no assignment.
    pub fn eval(&self, assignment: &dyn Fn(ParamId) -> Rat) -> Rat {
        let mut out = self.constant.clone();
        for (p, c) in self.terms() {
            out += &(c * &assignment(p));
        }
        out
    }

    /// Substitutes `p := e` and returns the result.
    pub fn substitute(&self, p: ParamId, e: &LinExpr) -> LinExpr {
        let c = self.coeff(p);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(&p);
        out.add(&e.scale(&c))
    }

    /// Canonical *primitive* form used as a guard-atom key: coefficients are
    /// scaled to coprime integers with the leading (smallest-`ParamId`)
    /// coefficient positive. Returns `(canonical, flipped)` where `flipped`
    /// indicates the expression was negated to normalize (so the sign of the
    /// original is the negated sign of the canonical form).
    ///
    /// Constant expressions are returned unchanged with `flipped = false`.
    pub fn canonicalize(&self) -> (LinExpr, bool) {
        if self.is_constant() {
            return (self.clone(), false);
        }
        // L = lcm of denominators, G = gcd of numerators over all coefficients.
        let mut lcm = BigUint::one();
        let mut gcd = BigUint::zero();
        let mut consider = |r: &Rat| {
            if !r.is_zero() {
                lcm = lcm.lcm(r.denom());
                gcd = gcd.gcd(r.numer().magnitude());
            }
        };
        consider(&self.constant);
        for (_, c) in self.terms() {
            consider(c);
        }
        debug_assert!(!gcd.is_zero());
        // scale = L / G makes all coefficients coprime integers.
        let scale = Rat::new(BigInt::from(lcm.clone()), BigInt::from(gcd.clone()));
        let leading_sign = self.terms.values().next().expect("nonconstant").sign();
        let flipped = leading_sign == Sign::Minus;
        let scale = if flipped { -scale } else { scale };
        (self.scale(&scale), flipped)
    }

    /// Renders with parameter names from `table`.
    pub fn display<'a>(&'a self, table: &'a ParamTable) -> DisplayLinExpr<'a> {
        DisplayLinExpr { expr: self, table }
    }
}

impl std::ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        LinExpr::add(&self, &rhs)
    }
}

impl std::ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        LinExpr::sub(&self, &rhs)
    }
}

impl std::ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::neg(&self)
    }
}

impl From<Rat> for LinExpr {
    fn from(c: Rat) -> Self {
        LinExpr::constant(c)
    }
}

/// Helper rendering a [`LinExpr`] with its parameter names.
pub struct DisplayLinExpr<'a> {
    expr: &'a LinExpr,
    table: &'a ParamTable,
}

impl fmt::Display for DisplayLinExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (p, c) in self.expr.terms() {
            let name = self.table.name(p);
            if first {
                if c.is_one() {
                    write!(f, "{name}")?;
                } else if *c == Rat::int(-1) {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}*{name}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a.is_one() {
                    write!(f, " - {name}")?;
                } else {
                    write!(f, " - {a}*{name}")?;
                }
            } else if c.is_one() {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {c}*{name}")?;
            }
        }
        let k = self.expr.constant_part();
        if first {
            write!(f, "{k}")?;
        } else if !k.is_zero() {
            if k.is_negative() {
                write!(f, " - {}", k.abs())?;
            } else {
                write!(f, " + {k}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ParamTable, ParamId, ParamId, ParamId) {
        let mut t = ParamTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        (t, a, b, c)
    }

    #[test]
    fn add_cancels_terms() {
        let (_, a, b, _) = setup();
        let e1 = LinExpr::param(a).add(&LinExpr::param(b));
        let e2 = LinExpr::param(a).neg();
        let sum = e1.add(&e2);
        assert_eq!(sum, LinExpr::param(b));
        assert_eq!(sum.coeff(a), Rat::zero());
    }

    #[test]
    fn mul_requires_a_constant_side() {
        let (_, a, b, _) = setup();
        let x = LinExpr::param(a);
        let k = LinExpr::constant(Rat::int(3));
        assert_eq!(x.checked_mul(&k), Some(x.scale(&Rat::int(3))));
        assert_eq!(k.checked_mul(&x), Some(x.scale(&Rat::int(3))));
        assert_eq!(x.checked_mul(&LinExpr::param(b)), None);
    }

    #[test]
    fn div_by_constant() {
        let (_, a, _, _) = setup();
        let x = LinExpr::param(a).scale(&Rat::int(6));
        let half = LinExpr::constant(Rat::int(2));
        assert_eq!(
            x.checked_div(&half),
            Some(LinExpr::param(a).scale(&Rat::int(3)))
        );
        assert_eq!(x.checked_div(&LinExpr::zero()), None);
        assert_eq!(x.checked_div(&LinExpr::param(a)), None);
    }

    #[test]
    fn eval_full_assignment() {
        let (_, a, b, _) = setup();
        // 2a - 3b + 1
        let e = LinExpr::param(a)
            .scale(&Rat::int(2))
            .add(&LinExpr::param(b).scale(&Rat::int(-3)))
            .add(&LinExpr::constant(Rat::one()));
        let v = e.eval(&|p| if p == a { Rat::int(5) } else { Rat::int(2) });
        assert_eq!(v, Rat::int(5));
    }

    #[test]
    fn substitute_eliminates_param() {
        let (_, a, b, c) = setup();
        // a + 2b, with b := c - 1 gives a + 2c - 2.
        let e = LinExpr::param(a).add(&LinExpr::param(b).scale(&Rat::int(2)));
        let sub = LinExpr::param(c).add(&LinExpr::constant(Rat::int(-1)));
        let out = e.substitute(b, &sub);
        assert_eq!(out.coeff(a), Rat::one());
        assert_eq!(out.coeff(b), Rat::zero());
        assert_eq!(out.coeff(c), Rat::int(2));
        assert_eq!(*out.constant_part(), Rat::int(-2));
    }

    #[test]
    fn canonicalize_scales_to_coprime_integers() {
        let (_, a, b, _) = setup();
        // (1/2)a - (1/3)b  canonicalizes to 3a - 2b (scaled by 6).
        let e = LinExpr::param(a)
            .scale(&Rat::ratio(1, 2))
            .add(&LinExpr::param(b).scale(&Rat::ratio(-1, 3)));
        let (canon, flipped) = e.canonicalize();
        assert!(!flipped);
        assert_eq!(canon.coeff(a), Rat::int(3));
        assert_eq!(canon.coeff(b), Rat::int(-2));
    }

    #[test]
    fn canonicalize_flips_negative_leading() {
        let (_, a, b, _) = setup();
        let e = LinExpr::param(a).neg().add(&LinExpr::param(b));
        let (canon, flipped) = e.canonicalize();
        assert!(flipped);
        assert_eq!(canon.coeff(a), Rat::one());
        assert_eq!(canon.coeff(b), Rat::int(-1));
        // Canonical form of e and -e is identical up to the flip flag.
        let (canon2, flipped2) = e.neg().canonicalize();
        assert_eq!(canon, canon2);
        assert!(!flipped2);
    }

    #[test]
    fn canonicalize_divides_common_factor() {
        let (_, a, b, _) = setup();
        let e = LinExpr::param(a)
            .scale(&Rat::int(4))
            .add(&LinExpr::param(b).scale(&Rat::int(6)))
            .add(&LinExpr::constant(Rat::int(10)));
        let (canon, _) = e.canonicalize();
        assert_eq!(canon.coeff(a), Rat::int(2));
        assert_eq!(canon.coeff(b), Rat::int(3));
        assert_eq!(*canon.constant_part(), Rat::int(5));
    }

    #[test]
    fn display_formats() {
        let (t, a, b, _) = setup();
        let e = LinExpr::param(a)
            .add(&LinExpr::param(b).scale(&Rat::int(-2)))
            .add(&LinExpr::constant(Rat::int(7)));
        assert_eq!(e.display(&t).to_string(), "a - 2*b + 7");
        assert_eq!(LinExpr::zero().display(&t).to_string(), "0");
        assert_eq!(LinExpr::param(a).neg().display(&t).to_string(), "-a");
    }
}
