//! Umbrella crate for the Bayonet reproduction: re-exports the public API
//! and hosts the random-network generator used by the cross-crate
//! integration and property tests in `tests/`.

pub use bayonet::*;

pub mod testgen {
    //! Deterministic random generation of small, well-formed, *terminating*
    //! Bayonet networks, for differential and property testing.
    //!
    //! Generated networks are guaranteed to
    //!
    //! * pass the §4 integrity checks,
    //! * terminate under every scheduler (each handler spends one unit of a
    //!   finite per-node `fuel` budget per forward, and otherwise drops), and
    //! * keep all randomness within `flip`/`uniformInt` (no observes unless
    //!   requested, so `Z = 1` by default).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::fmt::Write as _;

    /// Tuning knobs for [`random_network_source`].
    #[derive(Clone, Debug)]
    pub struct GenOptions {
        /// Number of nodes in the ring (at least 3, so every node has both
        /// ring ports linked).
        pub nodes: usize,
        /// Per-node forward budget (bounds total work).
        pub fuel: u64,
        /// Number of packets injected at time zero.
        pub init_packets: usize,
        /// Allow `observe` statements (conditioning).
        pub observes: bool,
        /// Queue capacity.
        pub queue_capacity: u64,
    }

    impl Default for GenOptions {
        fn default() -> Self {
            GenOptions {
                nodes: 3,
                fuel: 2,
                init_packets: 1,
                observes: false,
                queue_capacity: 2,
            }
        }
    }

    /// Generates the source of a random small network on a bidirectional
    /// ring. Deterministic in `seed`.
    pub fn random_network_source(seed: u64, opts: &GenOptions) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = opts.nodes.max(3);
        let mut out = String::new();
        let _ = writeln!(out, "packet_fields {{ tag }}");
        let _ = writeln!(out, "topology {{");
        let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let _ = writeln!(out, "  nodes {{ {} }}", names.join(", "));
        // Ring: port 1 = clockwise (to next), port 2 = counter-clockwise.
        let mut links = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            links.push(format!("(N{i}, pt1) <-> (N{j}, pt2)"));
        }
        let _ = writeln!(out, "  links {{ {} }}", links.join(", "));
        let _ = writeln!(out, "}}");
        let programs: Vec<String> = (0..n).map(|i| format!("N{i} -> prog{i}")).collect();
        let _ = writeln!(out, "programs {{ {} }}", programs.join(", "));
        let _ = writeln!(out, "queue_capacity {};", opts.queue_capacity);
        let sched = if rng.gen_bool(0.5) {
            "uniform"
        } else {
            "roundrobin"
        };
        let _ = writeln!(out, "scheduler {sched};");
        let _ = writeln!(out, "init {{");
        for _ in 0..opts.init_packets {
            let node = rng.gen_range(0..n);
            let port = rng.gen_range(1..=2);
            let tag = rng.gen_range(0..3);
            let _ = writeln!(out, "  packet -> (N{node}, pt{port}) {{ tag = {tag} }};");
        }
        let _ = writeln!(out, "}}");

        // Queries over the counters every node keeps.
        let qa = rng.gen_range(0..n);
        let qb = rng.gen_range(0..n);
        let bound = rng.gen_range(0..4);
        let op = ["<", "<=", "==", ">="][rng.gen_range(0..4usize)];
        let _ = writeln!(out, "query probability(cnt@N{qa} {op} {bound});");
        let _ = writeln!(out, "query expectation(cnt@N{qa} + sum_pt@N{qb});");

        for i in 0..n {
            let _ = writeln!(
                out,
                "def prog{i}(pkt, pt) state fuel({}), cnt(0), sum_pt(0) {{",
                opts.fuel
            );
            let _ = writeln!(out, "  cnt = cnt + 1;");
            let _ = writeln!(out, "  sum_pt = sum_pt + pt;");
            // A couple of random, harmless statements.
            for _ in 0..rng.gen_range(0..3) {
                match rng.gen_range(0..4) {
                    0 => {
                        let _ = writeln!(out, "  pkt.tag = pkt.tag + {};", rng.gen_range(0..3));
                    }
                    1 => {
                        let _ = writeln!(
                            out,
                            "  if pkt.tag {} {} {{ sum_pt = sum_pt + 1; }}",
                            ["<", ">="][rng.gen_range(0..2usize)],
                            rng.gen_range(0..4)
                        );
                    }
                    2 => {
                        let _ = writeln!(out, "  x = uniformInt(0, 2); sum_pt = sum_pt + x;");
                    }
                    _ => {
                        if opts.observes {
                            // A mild observation that keeps some mass alive:
                            // cnt >= 1 always holds, the tag bound usually does.
                            let _ = writeln!(out, "  observe(cnt >= 1 and pkt.tag <= 12);");
                        } else {
                            let _ = writeln!(out, "  skip;");
                        }
                    }
                }
            }
            // Fuel-bounded probabilistic forwarding guarantees termination.
            let num = rng.gen_range(1..=3);
            let _ = writeln!(out, "  if fuel > 0 and flip({num}/4) {{");
            let _ = writeln!(out, "    fuel = fuel - 1;");
            if rng.gen_bool(0.3) {
                let _ = writeln!(out, "    dup;");
                let _ = writeln!(out, "    fwd(uniformInt(1, 2));");
                let _ = writeln!(out, "    drop;");
            } else {
                // Constant, echo-back (pt), and continue-direction (3 - pt)
                // targets: all valid ring ports.
                let target = match rng.gen_range(0..4) {
                    0 => "1".to_string(),
                    1 => "2".to_string(),
                    2 => "pt".to_string(),
                    _ => "3 - pt".to_string(),
                };
                let _ = writeln!(out, "    fwd({target});");
            }
            let _ = writeln!(out, "  }} else {{ drop; }}");
            let _ = writeln!(out, "}}");
        }
        out
    }
}
