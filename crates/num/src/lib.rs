//! Exact arbitrary-precision arithmetic for the Bayonet reproduction.
//!
//! The Bayonet semantics (PLDI'18, Figure 4) takes its value domain to be the
//! rationals, and the exact inference engine must track trace probabilities
//! whose denominators grow like `(#actions)^(#steps)` — far beyond machine
//! integers. This crate provides the three numeric types everything else is
//! built on:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers,
//! * [`BigInt`] — arbitrary-precision signed integers,
//! * [`Rat`] — exact rationals in lowest terms (values, probabilities,
//!   expectations).
//!
//! # Examples
//!
//! ```
//! use bayonet_num::Rat;
//!
//! // A probability computed over 40 uniform scheduler steps stays exact.
//! let p = Rat::ratio(1, 7).pow(40);
//! assert_eq!(p.numer().to_string(), "1");
//! assert!(p.is_positive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rat;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseNumError};
pub use rat::Rat;
