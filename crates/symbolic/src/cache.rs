//! Memoized Fourier–Motzkin feasibility.
//!
//! Exact enumeration re-proves the same guard prefixes along sibling
//! branches of the replay tree: every fresh trichotomy split asks for the
//! satisfiability of up to three extended guards, and the replay of each
//! pending sibling asks again from the root. Guards are canonical
//! ([`Guard`] is an ordered atom map with `Eq`/`Hash`), so a per-run table
//! keyed on the guard answers repeats in a hash lookup instead of a full
//! elimination.
//!
//! The cache stores only the boolean verdict — witnesses stay uncached
//! because callers that need one (cell witnesses, synthesis) want the full
//! [`feasibility`] result.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::feasible::feasibility;
use crate::guard::Guard;

/// A thread-safe memo table for [`feasibility`] verdicts, keyed on the
/// canonical guard.
///
/// Shared by the parallel expansion workers of a single run; the hit/miss
/// counters are therefore schedule-dependent (two workers can race to the
/// same fresh guard and both miss) and must never feed deterministic
/// output — report them through diagnostics channels only.
#[derive(Default)]
pub struct FeasibilityCache {
    map: Mutex<HashMap<Guard, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FeasibilityCache {
    /// Creates an empty cache.
    pub fn new() -> FeasibilityCache {
        FeasibilityCache::default()
    }

    /// Whether `guard` is satisfiable, answering from the memo table when
    /// possible.
    ///
    /// On a miss the elimination runs *outside* the table lock, so
    /// concurrent workers never serialize on each other's eliminations; two
    /// workers racing to the same fresh guard may both compute it (both
    /// count as misses), which is harmless because the verdict is a pure
    /// function of the guard.
    pub fn is_sat(&self, guard: &Guard) -> bool {
        if let Some(&sat) = self.map.lock().expect("feasibility cache").get(guard) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return sat;
        }
        let sat = feasibility(guard).is_sat();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .expect("feasibility cache")
            .insert(guard.clone(), sat);
        sat
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct guards memoized.
    pub fn len(&self) -> usize {
        self.map.lock().expect("feasibility cache").len()
    }

    /// Whether the memo table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for FeasibilityCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.counts();
        f.debug_struct("FeasibilityCache")
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::param::ParamTable;
    use bayonet_num::Sign;

    #[test]
    fn memoizes_verdicts_and_counts() {
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let y = LinExpr::param(t.intern("y"));
        let z = LinExpr::param(t.intern("z"));
        let sat = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
        // A cycle x > y > z > x: each atom is syntactically fine, only the
        // elimination detects the contradiction.
        let unsat = Guard::top()
            .assume_sign(&x.sub(&y), Sign::Plus)
            .unwrap()
            .assume_sign(&y.sub(&z), Sign::Plus)
            .unwrap()
            .assume_sign(&z.sub(&x), Sign::Plus)
            .unwrap();

        let cache = FeasibilityCache::new();
        assert!(cache.is_sat(&sat));
        assert!(!cache.is_sat(&unsat));
        assert_eq!(cache.counts(), (0, 2));
        assert!(cache.is_sat(&sat));
        assert!(!cache.is_sat(&unsat));
        assert_eq!(cache.counts(), (2, 2));
        assert_eq!(cache.len(), 2);
        // Memoized verdicts agree with direct elimination.
        assert!(feasibility(&sat).is_sat());
        assert!(!feasibility(&unsat).is_sat());
    }
}
