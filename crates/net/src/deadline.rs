//! Cooperative cancellation for long-running inference.
//!
//! Exact enumeration and particle inference can run for a long time on
//! large networks. A [`Deadline`] is a cheap, clonable handle combining an
//! optional wall-clock cutoff with an optional shared cancellation flag;
//! engines poll it every few hundred expansion steps / particles and bail
//! out with a typed `Interrupted` error instead of running to completion.
//! The service layer uses this to enforce per-request `timeout_ms` budgets
//! and to abandon work for disconnected clients.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A deadline and/or cancellation flag polled cooperatively by engines.
///
/// The default value never expires, so existing call sites that build
/// options with `..Default::default()` are unaffected.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use bayonet_net::Deadline;
///
/// let unlimited = Deadline::default();
/// assert!(!unlimited.expired());
///
/// let strict = Deadline::after(Duration::from_millis(0));
/// assert!(strict.expired());
///
/// let mut flagged = Deadline::default();
/// let handle = flagged.cancel_handle();
/// assert!(!flagged.expired());
/// handle.cancel();
/// assert!(flagged.expired());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    cutoff: Option<Instant>,
    cancelled: Option<Arc<AtomicBool>>,
}

/// A handle that cancels every [`Deadline`] cloned from the one that
/// produced it.
#[derive(Debug, Clone)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Signals cancellation; affected engines return `Interrupted` at their
    /// next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

impl Deadline {
    /// A deadline that never expires (same as `Default`).
    pub fn unlimited() -> Deadline {
        Deadline::default()
    }

    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            cutoff: Some(Instant::now() + budget),
            cancelled: None,
        }
    }

    /// A deadline expiring at `cutoff`.
    pub fn at(cutoff: Instant) -> Deadline {
        Deadline {
            cutoff: Some(cutoff),
            cancelled: None,
        }
    }

    /// Attaches a cancellation flag (created on first call) and returns a
    /// handle that trips it. Clones made **after** this call share the flag.
    pub fn cancel_handle(&mut self) -> CancelHandle {
        let flag = self
            .cancelled
            .get_or_insert_with(|| Arc::new(AtomicBool::new(false)));
        CancelHandle(Arc::clone(flag))
    }

    /// A copy of this deadline that also expires no later than `budget`
    /// from now, keeping any cancellation flag. The serve layer uses this
    /// to give each batch item its own `timeout_ms` while never letting it
    /// outlive the batch-level deadline.
    #[must_use]
    pub fn clamped(&self, budget: Duration) -> Deadline {
        let candidate = Instant::now() + budget;
        Deadline {
            cutoff: Some(match self.cutoff {
                Some(cutoff) => cutoff.min(candidate),
                None => candidate,
            }),
            cancelled: self.cancelled.clone(),
        }
    }

    /// Whether the budget is exhausted or cancellation was signalled.
    ///
    /// Cheap enough to poll every few hundred steps: one atomic load plus,
    /// when a cutoff is set, one monotonic-clock read.
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.cancelled {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.cutoff {
            Some(cutoff) => Instant::now() >= cutoff,
            None => false,
        }
    }

    /// Whether this deadline can ever expire.
    pub fn is_limited(&self) -> bool {
        self.cutoff.is_some() || self.cancelled.is_some()
    }

    /// Wall-clock budget left before the cutoff: `None` when no cutoff is
    /// set, `Some(ZERO)` once it has passed. The serve layer's planner uses
    /// this as the admission budget — a request whose estimated cost
    /// exceeds `remaining()` is rejected before any engine work.
    pub fn remaining(&self) -> Option<Duration> {
        self.cutoff
            .map(|cutoff| cutoff.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let d = Deadline::default();
        assert!(!d.is_limited());
        assert!(!d.expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::from_millis(0));
        assert!(d.is_limited());
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_does_not_expire_now() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
    }

    #[test]
    fn clamped_keeps_the_earlier_cutoff_and_the_flag() {
        let mut batch = Deadline::after(Duration::from_millis(0));
        let handle = batch.cancel_handle();
        // Batch cutoff already passed: a generous per-item budget cannot
        // resurrect it.
        assert!(batch.clamped(Duration::from_secs(3600)).expired());

        let mut roomy = Deadline::after(Duration::from_secs(3600));
        let handle2 = roomy.cancel_handle();
        let item = roomy.clamped(Duration::from_millis(0));
        assert!(item.expired());
        let live = roomy.clamped(Duration::from_secs(1800));
        assert!(!live.expired());
        handle2.cancel();
        assert!(live.expired());
        drop(handle);
    }

    #[test]
    fn cancellation_crosses_clones() {
        let mut d = Deadline::unlimited();
        let handle = d.cancel_handle();
        let clone = d.clone();
        assert!(!clone.expired());
        handle.cancel();
        assert!(clone.expired());
        assert!(d.expired());
    }
}
