//! Symbolic linear arithmetic for Bayonet parameter synthesis.
//!
//! Bayonet (PLDI'18, §2.3) lets operators leave configuration values such as
//! OSPF link costs *symbolic*. The exact inference engine then evaluates
//! queries to piecewise results: a probability per region of parameter
//! space, each region described by a conjunction of sign constraints on
//! linear expressions (paper Figure 3). This crate provides that machinery:
//!
//! * [`ParamTable`] / [`ParamId`] — interned symbolic parameters,
//! * [`LinExpr`] — linear expressions `c₀ + Σ cᵢ·pᵢ` with exact rational
//!   coefficients and canonical primitive forms,
//! * [`Guard`] — conjunctions of sign atoms with syntactic contradiction
//!   and redundancy detection,
//! * [`feasibility`] — Gaussian elimination + Fourier–Motzkin decision
//!   procedure with witness extraction (the "solver" step of synthesis),
//! * [`enumerate_cells`] — the feasible sign-assignment cells over which
//!   piecewise results are reported.
//!
//! # Examples
//!
//! ```
//! use bayonet_symbolic::{enumerate_cells, LinExpr, ParamTable};
//!
//! // The Figure 3 case split: sign of COST_01 - (COST_02 + COST_21).
//! let mut t = ParamTable::new();
//! let c01 = LinExpr::param(t.intern("COST_01"));
//! let c02 = LinExpr::param(t.intern("COST_02"));
//! let c21 = LinExpr::param(t.intern("COST_21"));
//! let diff = c01.sub(&c02.add(&c21));
//! let cells = enumerate_cells(&[diff]);
//! assert_eq!(cells.len(), 3);
//! for cell in &cells {
//!     let witness = cell.witness(); // concrete costs for this region
//!     assert!(!witness.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cells;
mod feasible;
mod guard;
mod linexpr;
mod param;

pub use cache::FeasibilityCache;
pub use cells::{atom_exprs, enumerate_cells, enumerate_cells_cached, Cell};
pub use feasible::{check_witness, feasibility, Assignment, Feasibility};
pub use guard::{DisplayGuard, Guard};
pub use linexpr::{DisplayLinExpr, LinExpr};
pub use param::{ParamId, ParamTable};
