//! Crash/restart harness for the persistent result cache, driven through
//! the real `bayonet serve` binary: populate the cache over HTTP, SIGKILL
//! the process (no graceful flush), restart on the same `--cache-dir`, and
//! require a byte-identical cache hit with zero recomputation. A second
//! case corrupts the segment (bit flip + torn tail) and requires the
//! damaged records to be skipped and counted, never fatal.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

/// A spawned `bayonet serve` child; killed on drop so a failing assertion
/// never leaks a listener.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns `bayonet serve --addr 127.0.0.1:0 --cache-dir <dir>` and
    /// parses the bound address from the startup line on stderr.
    fn spawn(dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_bayonet"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                dir.to_str().expect("utf8 dir"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn bayonet serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut line = String::new();
        BufReader::new(stderr)
            .read_line(&mut line)
            .expect("read startup line");
        let addr = line
            .trim()
            .rsplit("http://")
            .next()
            .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
            .parse()
            .unwrap_or_else(|e| panic!("bad address in {line:?}: {e}"));
        Server { child, addr }
    }

    /// SIGKILL — the whole point: no destructors, no flush, no fsync
    /// beyond what the write-behind thread already did per record.
    fn kill(mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
        std::mem::forget(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bayonet-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request(addr: SocketAddr, head: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!("{head}Content-Length: {}\r\n\r\n{body}", body.len());
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

fn post_run(addr: SocketAddr, source: &str) -> (u16, String) {
    let body = bayonet_serve::Json::obj(vec![("source", bayonet_serve::Json::Str(source.into()))])
        .to_string();
    request(addr, "POST /v1/run HTTP/1.1\r\nHost: test\r\n", &body)
}

fn metrics(addr: SocketAddr) -> String {
    let (status, body) = request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n", "");
    assert_eq!(status, 200, "{body}");
    body
}

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not an integer: {e}"))
}

/// Polls `/metrics` until the record is durably on disk (the writes
/// counter only moves after the per-record fsync), so SIGKILL immediately
/// afterwards cannot lose it.
fn await_durable_writes(addr: SocketAddr, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if metric(&metrics(addr), "bayonet_cache_persist_writes_total") >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "record never became durable (writes_total < {want})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_then_restart_serves_cached_bytes_without_recomputation() {
    let dir = unique_dir("warm");

    let server = Server::spawn(&dir);
    let (status, first) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{first}");
    await_durable_writes(server.addr, 1);
    server.kill();

    let server = Server::spawn(&dir);
    let text = metrics(server.addr);
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_corrupt_total"), 0);

    let (status, second) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{second}");
    assert_eq!(
        first, second,
        "result after crash+restart must be byte-identical"
    );

    // The hit came straight from the warm-loaded cache: no engine work.
    let text = metrics(server.addr);
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    server.kill();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_segment_is_skipped_counted_and_survivable() {
    let dir = unique_dir("corrupt");

    let server = Server::spawn(&dir);
    let (status, original) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{original}");
    await_durable_writes(server.addr, 1);
    server.kill();

    // Damage the segment two ways at once: flip a bit inside the first
    // record's payload (offset 24 = 8-byte header + 8-byte frame + start
    // of the keyed payload) and tear the tail as a mid-append crash would.
    let segment = dir.join(bayonet_serve::SEGMENT_FILE);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 32, "segment too small: {}", bytes.len());
    bytes[30] ^= 0x01;
    bytes.truncate(bytes.len() - 2);
    std::fs::write(&segment, &bytes).expect("rewrite segment");

    let server = Server::spawn(&dir);
    let text = metrics(server.addr);
    assert!(
        metric(&text, "bayonet_cache_persist_load_corrupt_total") > 0,
        "corruption must be counted:\n{text}"
    );
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);

    // The server stays healthy and recomputes the exact same answer.
    let (status, recomputed) = post_run(server.addr, TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(original, recomputed);
    let text = metrics(server.addr);
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 0);
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    server.kill();

    let _ = std::fs::remove_dir_all(&dir);
}
